//! Case study on the stock-state emulator: mine co-movement arrangements
//! from price state intervals (`stk3-up`, `stk5-down`, …) across trading
//! windows, comparing the sequential and parallel miners.
//!
//! ```text
//! cargo run --release --example stock_patterns
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ptpminer::prelude::*;
use ptpminer::tpminer::ParallelTpMiner;
use std::time::Instant;

fn main() {
    let db = ptpminer::datasets::StockEmulator::new(StockConfig {
        tickers: 6,
        windows: 800,
        days_per_window: 10,
        market_correlation: 0.7,
        ..Default::default()
    })
    .generate();
    println!(
        "stock emulator: {} trading windows, {} state intervals, {} symbols",
        db.len(),
        db.total_intervals(),
        db.symbols().len()
    );

    let config = MinerConfig::with_min_support(db.absolute_support(0.40)).max_arity(3);

    let started = Instant::now();
    let sequential = TpMiner::new(config).mine(&db);
    let seq_time = started.elapsed();

    let started = Instant::now();
    let parallel = ParallelTpMiner::new(config, 0).mine(&db);
    let par_time = started.elapsed();

    assert_eq!(
        sequential.patterns(),
        parallel.patterns(),
        "parallel mining must agree with sequential"
    );
    println!(
        "\n{} patterns; sequential {seq_time:?}, parallel {par_time:?} (identical output)",
        sequential.len()
    );

    // Co-movement: arrangements joining *different* tickers.
    let cross_ticker = |p: &ptpminer::tpminer::FrequentPattern| {
        let mut tickers: Vec<&str> = p
            .pattern
            .slot_infos()
            .iter()
            .map(|s| {
                db.symbols()
                    .name(s.symbol)
                    .split_once('-')
                    .map(|(t, _)| t)
                    .unwrap_or("?")
            })
            .collect();
        tickers.sort_unstable();
        tickers.dedup();
        tickers.len() >= 2
    };
    let mut movers: Vec<_> = sequential
        .patterns()
        .iter()
        .filter(|p| p.pattern.arity() >= 2 && cross_ticker(p))
        .collect();
    movers.sort_by_key(|p| std::cmp::Reverse(p.support));
    println!("\nstrongest cross-ticker co-movements:");
    for p in movers.iter().take(10) {
        println!(
            "  {:45}  in {:4} windows ({:.0}%)",
            p.pattern.display(db.symbols()).to_string(),
            p.support,
            100.0 * p.support as f64 / db.len() as f64
        );
    }
}
