//! Turn mined temporal patterns into actionable **temporal association
//! rules** — "patrons who borrow X also borrow Y while X is still out" —
//! and explore top-k and window-constrained mining along the way.
//!
//! ```text
//! cargo run --release --example association_rules
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ptpminer::prelude::*;

fn main() {
    let db = ptpminer::datasets::LibraryEmulator::new(LibraryConfig {
        patrons: 1_500,
        ..Default::default()
    })
    .generate();
    println!(
        "library emulator: {} patrons, {} loans",
        db.len(),
        db.total_intervals()
    );

    // Top-10 two-or-more-interval patterns — no support threshold guessing.
    let top = mine_top_k(&db, TopKConfig::new(10));
    println!("\ntop-10 borrowing arrangements:");
    for p in &top {
        println!(
            "  {:55} support {:4}",
            p.pattern.display(db.symbols()).to_string(),
            p.support
        );
    }

    // Rules at 60% confidence from a full mine at 10% support.
    let result =
        TpMiner::new(MinerConfig::with_min_support(db.absolute_support(0.10)).max_arity(3))
            .mine(&db);
    let rules = generate_rules(
        result.patterns(),
        &RuleConfig {
            min_confidence: 0.6,
            single_extension_only: true,
        },
    );
    println!(
        "\n{} rules at confidence >= 0.6 (from {} frequent patterns):",
        rules.len(),
        result.len()
    );
    for r in rules.iter().take(8) {
        println!("  {}", r.display(db.symbols()));
    }

    // Window-constrained mining: the same habits, but only when the two
    // loans happen within a quarter (91 days).
    let windowed = TpMiner::new(
        MinerConfig::with_min_support(db.absolute_support(0.10))
            .max_arity(3)
            .max_window(91),
    )
    .mine(&db);
    println!(
        "\nwithin a 91-day window, {} of the {} patterns remain frequent",
        windowed.len(),
        result.len()
    );

    // Inspect one pattern's semantics through the Allen algebra.
    if let Some(p) = top.first() {
        let m = p.pattern.relation_matrix();
        if p.pattern.arity() >= 2 {
            let r = m[0][1];
            println!(
                "\nthe top pattern's first two intervals relate by `{r}`; composing \
                 it with itself admits {}",
                compose(r, r)
            );
        }
    }
}
