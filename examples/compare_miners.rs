//! Run all four miners on the same synthetic workload, verify they agree,
//! and compare their work counters — a miniature of the paper's E1.
//!
//! ```text
//! cargo run --release --example compare_miners
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ptpminer::prelude::*;
use std::time::Instant;

fn main() {
    let config = QuestConfig::small().sequences(800).symbols(60).seed(2024);
    let db = QuestGenerator::new(config).generate();
    println!(
        "workload {}: {} sequences, {} intervals",
        config.name(),
        db.len(),
        db.total_intervals()
    );

    let min_sup = db.absolute_support(0.08);
    println!("mining at absolute min support {min_sup}\n");

    let started = Instant::now();
    let tp = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
    let tp_time = started.elapsed();

    let started = Instant::now();
    let tps = TPrefixSpan::new(min_sup).mine(&db);
    let tps_time = started.elapsed();

    let started = Instant::now();
    let ie = IeMiner::new(min_sup).mine(&db);
    let ie_time = started.elapsed();

    let started = Instant::now();
    let hdfs = HDfsMiner::new(min_sup).mine(&db);
    let hdfs_time = started.elapsed();

    assert_eq!(tp.patterns(), &tps.patterns[..], "TPrefixSpan disagrees");
    assert_eq!(tp.patterns(), &ie.patterns[..], "IEMiner disagrees");
    assert_eq!(tp.patterns(), &hdfs.patterns[..], "H-DFS disagrees");
    println!("all four miners agree on {} frequent patterns\n", tp.len());

    println!("{:<14} {:>10}  work profile", "miner", "time");
    println!("{}", "-".repeat(78));
    println!(
        "{:<14} {:>10.1?}  {} nodes explored, {} embedding states",
        "P-TPMiner",
        tp_time,
        tp.stats().nodes_explored,
        tp.stats().states_created
    );
    println!(
        "{:<14} {:>10.1?}  {} candidates, {} containment scans",
        "TPrefixSpan", tps_time, tps.stats.candidates_generated, tps.stats.containment_tests
    );
    println!(
        "{:<14} {:>10.1?}  {} candidates, {} containment scans",
        "IEMiner", ie_time, ie.stats.candidates_generated, ie.stats.containment_tests
    );
    println!(
        "{:<14} {:>10.1?}  {} candidates, {} occurrence tuples",
        "H-DFS", hdfs_time, hdfs.stats.candidates_generated, hdfs.stats.occurrences_materialized
    );

    println!("\nthe pruning techniques' contribution (same output, less work):");
    for (name, pruning) in [
        ("all pruning", PruningConfig::all()),
        ("no pruning", PruningConfig::none()),
    ] {
        let started = Instant::now();
        let r = TpMiner::new(MinerConfig::with_min_support(min_sup).pruning(pruning)).mine(&db);
        println!(
            "  {:<12} {:>10.1?}  {} nodes, {} candidate extensions",
            name,
            started.elapsed(),
            r.stats().nodes_explored,
            r.stats().candidates_counted
        );
    }
}
