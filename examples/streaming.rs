//! Streaming: feed timestamped interval events into a sliding window and
//! keep the frequent-pattern set continuously mined, refreshing only the
//! partitions the latest events actually touched.
//!
//! ```text
//! cargo run --example streaming
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::sync::Arc;

use ptpminer::interval_core::StreamEvent;
use ptpminer::stream::{IncrementalMiner, SlidingWindowDatabase, SnapshotCell};
use ptpminer::tpminer::MinerConfig;

fn main() {
    // A ward monitor: vitals-derived symptom intervals arrive as the shifts
    // progress, punctuated by watermarks ("everything before t has been
    // delivered"). The window keeps the trailing 48 time units.
    let mut window = SlidingWindowDatabase::new(48);
    let cell = Arc::new(SnapshotCell::new());
    let mut miner =
        IncrementalMiner::new(MinerConfig::with_min_support(2), 0).with_cell(Arc::clone(&cell));

    // Shift 1: two patients develop fever, then a rash while feverish.
    let shift1 = [
        "open 1 fever 0",
        "interval 1 rash 4 14",
        "close 1 fever 9",
        "open 2 fever 2",
        "interval 2 rash 6 16",
        "close 2 fever 11",
        "watermark 20",
    ];
    // Shift 2: patient 3 shows the same course much later; the watermark
    // slides the window far enough to evict shift 1 entirely.
    let shift2 = [
        "interval 3 fever 60 69",
        "interval 3 rash 64 74",
        "interval 4 fever 61 70",
        "interval 4 rash 66 76",
        "watermark 110",
    ];

    for (name, lines) in [("shift 1", &shift1[..]), ("shift 2", &shift2[..])] {
        for (i, line) in lines.iter().enumerate() {
            let event = StreamEvent::parse_line(line, i + 1)
                .expect("well-formed event")
                .expect("no blank lines here");
            window.ingest(event).expect("consistent stream");
        }
        let snapshot = miner.refresh(&mut window);
        println!(
            "after {name}: revision {}, window [{}, {}), {} sequences, \
             {} patterns ({} re-mined roots, {} patterns carried over)",
            snapshot.revision,
            snapshot.window_start.unwrap(),
            snapshot.watermark.unwrap(),
            snapshot.sequences,
            snapshot.result.len(),
            snapshot.refresh.dirty_roots,
            snapshot.refresh.carried_patterns,
        );
        println!("{}", snapshot.render());
    }

    // Any thread holding the cell sees the latest coherent snapshot.
    let latest = cell.load();
    println!(
        "cell holds revision {} with {} patterns; {} intervals were evicted \
         by the slide",
        latest.revision,
        latest.result.len(),
        window.stats().intervals_evicted,
    );
}
