//! Clinical course mining on the ICU emulator: find state arrangements that
//! distinguish the sepsis script from the post-operative script, with a
//! 48-hour window constraint.
//!
//! ```text
//! cargo run --release --example icu_monitoring
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ptpminer::datasets::{IcuConfig, IcuEmulator};
use ptpminer::prelude::*;

fn main() {
    let db = IcuEmulator::new(IcuConfig {
        patients: 2_000,
        ..Default::default()
    })
    .generate();
    println!(
        "ICU emulator: {} stays, {} state intervals, {} states",
        db.len(),
        db.total_intervals(),
        db.symbols().len()
    );

    // Clinical questions care about co-occurring states within a bounded
    // horizon: mine arrangements that fit inside 48 hours.
    let result = TpMiner::new(
        MinerConfig::with_min_support(db.absolute_support(0.15))
            .max_arity(3)
            .max_window(48),
    )
    .mine(&db);
    println!(
        "\n{} patterns frequent in >=15% of stays within a 48h window",
        result.len()
    );

    let mut courses: Vec<_> = result
        .patterns()
        .iter()
        .filter(|p| p.pattern.arity() >= 2)
        .collect();
    courses.sort_by_key(|p| std::cmp::Reverse(p.support));
    println!("\nmost common clinical courses:");
    for p in courses.iter().take(8) {
        println!(
            "  {:68} {:4} stays",
            p.pattern.display(db.symbols()).to_string(),
            p.support
        );
    }

    // Rules: what does fever imply?
    let rules = generate_rules(
        result.patterns(),
        &RuleConfig {
            min_confidence: 0.55,
            single_extension_only: true,
        },
    );
    let fever = db.symbols().lookup("fever").expect("state exists");
    println!("\nhigh-confidence implications of febrile courses:");
    for r in rules
        .iter()
        .filter(|r| r.antecedent.symbols().contains(&fever))
        .take(5)
    {
        println!("  {}", r.display(db.symbols()));
    }

    // Navigate the result: which patterns extend "sedation"?
    let sedation = TemporalPattern::singleton(db.symbols().lookup("sedation").unwrap());
    let extensions = result.super_patterns_of(&sedation).count();
    println!(
        "\n{} frequent patterns extend the bare `sedation` state (e.g. \
         ventilation contained in sedation)",
        extensions
    );
}
