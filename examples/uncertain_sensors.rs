//! Probabilistic mining over uncertain interval data: sensor-style
//! detections that exist only with a confidence score.
//!
//! ```text
//! cargo run --release --example uncertain_sensors
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ptpminer::interval_core::UncertainDatabaseBuilder;
use ptpminer::prelude::*;
use ptpminer::tpminer::ProbabilisticMiner;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Occupancy-sensing scenario: per day (sequence), detectors report
    // presence intervals with a confidence. `desk` detections are reliable,
    // `meeting` detections overlap them with medium confidence, and
    // `corridor` blips are noisy.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut builder = UncertainDatabaseBuilder::new();
    for _ in 0..400 {
        let day = builder.sequence();
        let desk_start = rng.gen_range(0..60i64);
        let desk_end = desk_start + rng.gen_range(180..360);
        let day = day.interval("desk", desk_start, desk_end, 0.97);
        let day = if rng.gen::<f64>() < 0.8 {
            let m_start = desk_start + rng.gen_range(30..90);
            day.interval("meeting", m_start, m_start + 45, rng.gen_range(0.55..0.9))
        } else {
            day
        };
        if rng.gen::<f64>() < 0.5 {
            let c_start = rng.gen_range(0..400i64);
            day.interval("corridor", c_start, c_start + 5, rng.gen_range(0.05..0.3));
        }
    }
    let udb = builder.build();
    println!(
        "uncertain sensor log: {} days, {} detections",
        udb.len(),
        udb.total_intervals()
    );

    // Patterns with expected support over 35% of days.
    let min_esup = 0.35 * udb.len() as f64;
    let result = ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(min_esup))
        .mine(&udb);

    println!("\nprobabilistically frequent patterns (expected support >= {min_esup:.0}):");
    for p in result.patterns() {
        println!(
            "  {:45}  E[support] {:7.1}   full-world support {:4}",
            p.pattern.display(udb.symbols()).to_string(),
            p.expected_support,
            p.world_support
        );
    }
    let s = result.stats();
    println!(
        "\nskeleton candidates {}, screened by the PT4 bound {}, fully evaluated {}",
        s.candidates, s.pruned_by_bound, s.evaluated
    );
    println!(
        "note: low-confidence `corridor` blips are frequent in the full world \
         but fail the expected-support threshold — that is the point of \
         probabilistic mining."
    );
}
