//! Quickstart: build a small interval database by hand, mine it, and read
//! the patterns.
//!
//! ```text
//! cargo run --example quickstart
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ptpminer::prelude::*;

fn main() {
    // A toy symptom diary: three patients, intervals of ongoing symptoms.
    let mut builder = DatabaseBuilder::new();
    builder
        .sequence() // patient 1
        .interval("fever", 0, 10)
        .interval("rash", 5, 20)
        .interval("headache", 21, 30);
    builder
        .sequence() // patient 2
        .interval("fever", 3, 12)
        .interval("rash", 8, 25);
    builder
        .sequence() // patient 3
        .interval("rash", 0, 5)
        .interval("headache", 9, 14);
    let db = builder.build();

    // Mine every temporal pattern occurring in at least two patients.
    let miner = TpMiner::new(MinerConfig::with_min_support(2));
    let result = miner.mine(&db);

    println!(
        "frequent temporal patterns (min support 2 of {}):",
        db.len()
    );
    println!("{}", result.render(db.symbols()));

    // Patterns are arrangements: `fever+ | rash+ | fever- | rash-` says the
    // rash starts while the fever is ongoing — Allen's "overlaps".
    let overlap = result
        .patterns()
        .iter()
        .find(|p| p.pattern.arity() == 2)
        .expect("a 2-interval pattern is frequent");
    println!(
        "two-interval pattern: {}  =>  Allen relation: {}",
        overlap.pattern.display(db.symbols()),
        overlap.pattern.relation(0, 1),
    );

    // Patterns render as ASCII timelines too:
    println!("\n{}", overlap.pattern.ascii_timeline(db.symbols()));

    // And every match can be *explained* by a concrete witness embedding.
    let witness = ptpminer::interval_core::matcher::find_embedding(
        &db.sequences()[0],
        &overlap.pattern,
        ptpminer::interval_core::MatchConstraints::none(),
    )
    .expect("patient 1 supports the pattern");
    println!("witness in patient 1:");
    for (slot, iv) in witness.iter().enumerate() {
        println!(
            "  slot {slot}: {} [{}, {})",
            db.symbols().name(iv.symbol),
            iv.start,
            iv.end
        );
    }

    // The same statistics are available programmatically.
    println!(
        "\n{} patterns total; histogram by size: {:?}",
        result.len(),
        result.arity_histogram()
    );
    println!(
        "search explored {} nodes in {:?}",
        result.stats().nodes_explored,
        result.stats().elapsed
    );
}
