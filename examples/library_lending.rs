//! Case study on the library-lending emulator: discover how patrons'
//! borrowing habits arrange in time, and compress the answer with closed
//! patterns.
//!
//! ```text
//! cargo run --release --example library_lending
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ptpminer::prelude::*;
use ptpminer::tpminer::closed_patterns;

fn main() {
    let db = ptpminer::datasets::LibraryEmulator::new(LibraryConfig {
        patrons: 2_000,
        ..Default::default()
    })
    .generate();
    println!(
        "library emulator: {} patrons, {} loans, {} book categories",
        db.len(),
        db.total_intervals(),
        db.symbols().len()
    );

    // 15% of patrons is a demanding threshold for a 12-category library.
    let min_sup = db.absolute_support(0.15);
    let result = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
    println!(
        "\n{} frequent patterns at min support {min_sup} ({:?})",
        result.len(),
        result.stats().elapsed
    );

    // The closed subset tells the same story without the redundancy.
    let closed = closed_patterns(result.patterns());
    println!(
        "{} closed patterns carry the same information\n",
        closed.len()
    );

    // Show the correlated borrowing habits the emulator plants: multi-loan
    // arrangements rank first.
    let mut showcase: Vec<_> = closed.iter().filter(|p| p.pattern.arity() >= 2).collect();
    showcase.sort_by_key(|p| std::cmp::Reverse((p.pattern.arity(), p.support)));
    println!("top multi-loan borrowing habits:");
    for p in showcase.iter().take(8) {
        println!(
            "  {:55}  support {:4}  ({:.0}% of patrons)",
            p.pattern.display(db.symbols()).to_string(),
            p.support,
            100.0 * p.support as f64 / db.len() as f64
        );
    }

    // Read one habit as Allen relations.
    if let Some(p) = showcase.first() {
        println!("\nrelation matrix of the first habit:");
        let matrix = p.pattern.relation_matrix();
        let infos = p.pattern.slot_infos();
        for (i, row) in matrix.iter().enumerate() {
            for (j, rel) in row.iter().enumerate() {
                if i < j {
                    println!(
                        "  {} {} {}",
                        db.symbols().name(infos[i].symbol),
                        rel,
                        db.symbols().name(infos[j].symbol)
                    );
                }
            }
        }
    }
}
