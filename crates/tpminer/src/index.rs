//! Mining index: the database transformed into endpoint representation plus
//! the per-symbol access structures and global statistics the miner and its
//! pruning techniques need.
//!
//! # Memory layout
//!
//! [`SymbolId`]s are dense `u32`s handed out by the interner, so the
//! database-level tables are flat `Vec`s indexed by symbol id — no hashing
//! anywhere on the mining path. Per sequence, the alphabet is tiny and
//! sparse (a handful of symbols out of a possibly large universe), so a
//! dense per-sequence table would waste `O(|Σ|)` per sequence; instead each
//! [`SeqIndex`] stores its sorted symbol list plus a parallel range table
//! ("slots"), giving the search engine positional `O(1)` access while
//! one-off symbol lookups binary-search a few entries.

use interval_core::{EndpointSeq, IntervalDatabase, IntervalSequence, SymbolId};
use std::sync::Arc;

/// Sequence-level co-occurrence counts of unordered symbol pairs, stored as
/// a sorted flat table of `lo * universe + hi` keys with a parallel count
/// column. Pairs are sparse in the symbol universe (a dense triangular
/// matrix would be `O(|Σ|²)`), but the PT3 pruning filter probes this table
/// inside the candidate gather loop, so lookups binary-search a contiguous
/// `Vec<u64>` instead of hashing — same cache-friendly layout discipline as
/// the rest of the index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairCounts {
    universe: u64,
    keys: Vec<u64>,
    counts: Vec<u32>,
}

impl PairCounts {
    /// Builds the table from raw (unsorted, possibly repeated) pair keys.
    fn from_keys(universe: usize, mut raw: Vec<u64>) -> Self {
        raw.sort_unstable();
        let mut keys = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for key in raw {
            if keys.last() == Some(&key) {
                // Run-length encode: consecutive equal keys accumulate.
                if let Some(last) = counts.last_mut() {
                    *last += 1;
                }
            } else {
                keys.push(key);
                counts.push(1);
            }
        }
        Self {
            universe: universe as u64,
            keys,
            counts,
        }
    }

    /// Co-occurrence count of the unordered pair `{a, b}` (0 when absent).
    #[inline]
    pub fn get(&self, a: SymbolId, b: SymbolId) -> u32 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let key = lo.index() as u64 * self.universe + hi.index() as u64;
        match self.keys.binary_search(&key) {
            Ok(i) => self.counts[i],
            Err(_) => 0,
        }
    }

    /// Number of distinct pairs with a non-zero count.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no pair co-occurs.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Per-sequence mining index.
#[derive(Debug)]
pub struct SeqIndex {
    /// The endpoint representation of the sequence.
    pub endpoints: EndpointSeq,
    /// Instance ids grouped by symbol, each group sorted by start group.
    /// Slot `k` (the `k`-th distinct symbol in sorted order) covers
    /// `by_symbol[slot_ranges[k].0 .. slot_ranges[k].1]`.
    by_symbol: Vec<u32>,
    slot_ranges: Vec<(u32, u32)>,
    /// The distinct symbols of the sequence, sorted; parallel to
    /// `slot_ranges`.
    symbols_sorted: Vec<SymbolId>,
}

impl SeqIndex {
    /// Indexes one sequence (endpoint transform plus per-symbol sort).
    ///
    /// Public so streaming drivers can index sequences individually as they
    /// change and reuse the untouched ones across re-mines (see
    /// [`DbIndex::from_seq_indexes`]).
    pub fn from_sequence(sequence: &IntervalSequence) -> Self {
        Self::from_endpoints(EndpointSeq::from_sequence(sequence))
    }

    /// Indexes a sequence already in endpoint representation.
    pub fn from_endpoints(endpoints: EndpointSeq) -> Self {
        let mut ids: Vec<u32> = (0..endpoints.instance_count() as u32).collect();
        ids.sort_unstable_by_key(|&i| {
            let info = endpoints.instance(i);
            (info.symbol, info.start_group, i)
        });
        let mut slot_ranges = Vec::new();
        let mut symbols_sorted = Vec::new();
        let mut lo = 0usize;
        while lo < ids.len() {
            let symbol = endpoints.instance(ids[lo]).symbol;
            let mut hi = lo + 1;
            while hi < ids.len() && endpoints.instance(ids[hi]).symbol == symbol {
                hi += 1;
            }
            symbols_sorted.push(symbol);
            slot_ranges.push((lo as u32, hi as u32));
            lo = hi;
        }
        Self {
            endpoints,
            by_symbol: ids,
            slot_ranges,
            symbols_sorted,
        }
    }

    /// The slot (position in [`SeqIndex::symbols_sorted`]) of `symbol`, if
    /// the sequence contains it.
    #[inline]
    pub fn symbol_slot(&self, symbol: SymbolId) -> Option<usize> {
        self.symbols_sorted.binary_search(&symbol).ok()
    }

    /// Number of distinct symbols (slots) in the sequence.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.symbols_sorted.len()
    }

    /// Instance ids of the `slot`-th distinct symbol, sorted by start group.
    #[inline]
    pub fn slot_instances(&self, slot: usize) -> &[u32] {
        let (lo, hi) = self.slot_ranges[slot];
        &self.by_symbol[lo as usize..hi as usize]
    }

    /// Instance ids carrying `symbol`, sorted by start group.
    #[inline]
    pub fn instances_of(&self, symbol: SymbolId) -> &[u32] {
        match self.symbol_slot(symbol) {
            Some(slot) => self.slot_instances(slot),
            None => &[],
        }
    }

    /// Instance ids in `ids` whose start group is **strictly after** `g`
    /// (`ids` must be start-group sorted, as every slot slice is).
    #[inline]
    fn cut_after<'s>(&self, ids: &'s [u32], g: u32) -> &'s [u32] {
        let cut = ids.partition_point(|&i| self.endpoints.instance(i).start_group <= g);
        &ids[cut..]
    }

    /// Instance ids in `ids` whose start group is **exactly** `g`.
    #[inline]
    fn cut_at<'s>(&self, ids: &'s [u32], g: u32) -> &'s [u32] {
        let lo = ids.partition_point(|&i| self.endpoints.instance(i).start_group < g);
        let hi = ids.partition_point(|&i| self.endpoints.instance(i).start_group <= g);
        &ids[lo..hi]
    }

    /// Instance ids of `symbol` whose start group is **strictly after** `g`.
    #[inline]
    pub fn instances_starting_after(&self, symbol: SymbolId, g: u32) -> &[u32] {
        self.cut_after(self.instances_of(symbol), g)
    }

    /// Instance ids of `symbol` whose start group is **exactly** `g`.
    #[inline]
    pub fn instances_starting_at(&self, symbol: SymbolId, g: u32) -> &[u32] {
        self.cut_at(self.instances_of(symbol), g)
    }

    /// Slot-addressed variant of [`SeqIndex::instances_starting_after`]
    /// (no symbol lookup; the hot path iterates slots directly).
    #[inline]
    pub fn slot_instances_starting_after(&self, slot: usize, g: u32) -> &[u32] {
        self.cut_after(self.slot_instances(slot), g)
    }

    /// Slot-addressed variant of [`SeqIndex::instances_starting_at`].
    #[inline]
    pub fn slot_instances_starting_at(&self, slot: usize, g: u32) -> &[u32] {
        self.cut_at(self.slot_instances(slot), g)
    }

    /// The symbols occurring in this sequence, sorted ascending.
    pub fn symbols(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.symbols_sorted.iter().copied()
    }

    /// The distinct symbols of the sequence, sorted ascending.
    #[inline]
    pub fn symbols_sorted(&self) -> &[SymbolId] {
        &self.symbols_sorted
    }
}

/// Whole-database mining index.
#[derive(Debug)]
pub struct DbIndex {
    /// One [`SeqIndex`] per database sequence (same order). Shared
    /// ownership lets streaming drivers keep per-sequence indexes cached
    /// and rebuild only the changed ones between re-mines.
    pub sequences: Vec<Arc<SeqIndex>>,
    /// Sequence-level frequency of every symbol, dense-indexed by
    /// [`SymbolId`] (length = smallest universe covering every symbol that
    /// occurs; absent symbols count 0).
    pub symbol_support: Vec<u32>,
    /// Sequence-level co-occurrence counts of unordered symbol pairs
    /// (`a <= b` keys, including `a == b` meaning "two or more instances").
    pub cooccurrence: PairCounts,
}

impl DbIndex {
    /// Builds the index (one database scan plus per-sequence sorts).
    pub fn build(db: &IntervalDatabase) -> Self {
        Self::from_seq_indexes(
            db.sequences()
                .iter()
                .map(|s| Arc::new(SeqIndex::from_sequence(s)))
                .collect(),
        )
    }

    /// Assembles a database index from prebuilt per-sequence indexes,
    /// recomputing only the global statistics (symbol supports and
    /// co-occurrence counts). This is the streaming fast path: when a window
    /// slides, unchanged sequences keep their cached [`SeqIndex`] and only
    /// changed ones pay the endpoint transform and sort again.
    pub fn from_seq_indexes(sequences: Vec<Arc<SeqIndex>>) -> Self {
        let universe = sequences
            .iter()
            .filter_map(|s| s.symbols_sorted().last())
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0);
        let mut symbol_support = vec![0u32; universe];
        let mut pair_keys: Vec<u64> = Vec::new();
        for seq in &sequences {
            let seq_symbols = seq.symbols_sorted();
            for &s in seq_symbols {
                symbol_support[s.index()] += 1;
                // A pattern with two instances of `s` needs two instances in
                // the sequence; record the (s, s) "pair" accordingly.
                if seq.instances_of(s).len() >= 2 {
                    pair_keys.push(s.index() as u64 * universe as u64 + s.index() as u64);
                }
            }
            // `seq_symbols` is sorted, so `i < j` already yields `lo <= hi`.
            for i in 0..seq_symbols.len() {
                for j in (i + 1)..seq_symbols.len() {
                    pair_keys.push(
                        seq_symbols[i].index() as u64 * universe as u64
                            + seq_symbols[j].index() as u64,
                    );
                }
            }
        }
        Self {
            sequences,
            symbol_support,
            cooccurrence: PairCounts::from_keys(universe, pair_keys),
        }
    }

    /// Size of the dense symbol universe (one past the largest occurring
    /// symbol id; dense tables over symbols are sized by this).
    #[inline]
    pub fn symbol_universe(&self) -> usize {
        self.symbol_support.len()
    }

    /// Sequence-level support of `symbol`.
    #[inline]
    pub fn symbol_support(&self, symbol: SymbolId) -> u32 {
        self.symbol_support
            .get(symbol.index())
            .copied()
            .unwrap_or(0)
    }

    /// Sequence-level co-occurrence count of `a` and `b` (for `a == b`: the
    /// number of sequences with at least two instances of the symbol).
    #[inline]
    pub fn cooccurrence(&self, a: SymbolId, b: SymbolId) -> u32 {
        self.cooccurrence.get(a, b)
    }

    /// Symbols whose sequence-level support reaches `min_support`, sorted.
    pub fn frequent_symbols(&self, min_support: usize) -> Vec<SymbolId> {
        self.symbol_support
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c as usize >= min_support)
            .map(|(s, _)| SymbolId(s as u32))
            .collect()
    }

    /// Estimated subtree weight of mining the level-1 subtree rooted at
    /// `symbol`: its total instance count across all sequences. Used by the
    /// parallel scheduler to order the shared work queue heaviest-first.
    pub fn root_weight(&self, symbol: SymbolId) -> u64 {
        self.sequences
            .iter()
            .map(|s| s.instances_of(symbol).len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::DatabaseBuilder;

    fn sample_db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5)
            .interval("B", 3, 8)
            .interval("A", 6, 9);
        b.sequence().interval("A", 0, 5).interval("C", 1, 2);
        b.sequence().interval("B", 0, 5);
        b.build()
    }

    #[test]
    fn symbol_support_counts_sequences() {
        let db = sample_db();
        let idx = DbIndex::build(&db);
        let a = db.symbols().lookup("A").unwrap();
        let b = db.symbols().lookup("B").unwrap();
        let c = db.symbols().lookup("C").unwrap();
        assert_eq!(idx.symbol_support(a), 2);
        assert_eq!(idx.symbol_support(b), 2);
        assert_eq!(idx.symbol_support(c), 1);
        assert_eq!(idx.symbol_support(SymbolId(99)), 0);
        assert_eq!(idx.symbol_universe(), 3);
    }

    #[test]
    fn cooccurrence_is_symmetric_and_counts_self_pairs() {
        let db = sample_db();
        let idx = DbIndex::build(&db);
        let a = db.symbols().lookup("A").unwrap();
        let b = db.symbols().lookup("B").unwrap();
        let c = db.symbols().lookup("C").unwrap();
        assert_eq!(idx.cooccurrence(a, b), 1);
        assert_eq!(idx.cooccurrence(b, a), 1);
        assert_eq!(idx.cooccurrence(a, c), 1);
        assert_eq!(idx.cooccurrence(b, c), 0);
        // sequence 0 has two A's
        assert_eq!(idx.cooccurrence(a, a), 1);
        assert_eq!(idx.cooccurrence(b, b), 0);
    }

    #[test]
    fn frequent_symbols_filters_and_sorts() {
        let db = sample_db();
        let idx = DbIndex::build(&db);
        let a = db.symbols().lookup("A").unwrap();
        let b = db.symbols().lookup("B").unwrap();
        assert_eq!(idx.frequent_symbols(2), vec![a, b]);
        assert_eq!(idx.frequent_symbols(3), Vec::<SymbolId>::new());
        assert_eq!(idx.frequent_symbols(1).len(), 3);
    }

    #[test]
    fn per_sequence_instance_lookup() {
        let db = sample_db();
        let idx = DbIndex::build(&db);
        let a = db.symbols().lookup("A").unwrap();
        let seq0 = &idx.sequences[0];
        let ids = seq0.instances_of(a);
        assert_eq!(ids.len(), 2);
        // sorted by start group
        assert!(
            seq0.endpoints.instance(ids[0]).start_group
                <= seq0.endpoints.instance(ids[1]).start_group
        );
        // instances_starting_after cuts correctly
        let g0 = seq0.endpoints.instance(ids[0]).start_group;
        let after = seq0.instances_starting_after(a, g0);
        assert_eq!(after.len(), 1);
        let at = seq0.instances_starting_at(a, g0);
        assert_eq!(at.len(), 1);
        assert_eq!(at[0], ids[0]);
    }

    #[test]
    fn slot_accessors_agree_with_symbol_accessors() {
        let db = sample_db();
        let idx = DbIndex::build(&db);
        for seq in &idx.sequences {
            assert_eq!(seq.slot_count(), seq.symbols_sorted().len());
            for (slot, &s) in seq.symbols_sorted().iter().enumerate() {
                assert_eq!(seq.symbol_slot(s), Some(slot));
                assert_eq!(seq.slot_instances(slot), seq.instances_of(s));
                for g in 0..4 {
                    assert_eq!(
                        seq.slot_instances_starting_at(slot, g),
                        seq.instances_starting_at(s, g)
                    );
                    assert_eq!(
                        seq.slot_instances_starting_after(slot, g),
                        seq.instances_starting_after(s, g)
                    );
                }
            }
        }
    }

    #[test]
    fn root_weight_totals_instances() {
        let db = sample_db();
        let idx = DbIndex::build(&db);
        let a = db.symbols().lookup("A").unwrap();
        let b = db.symbols().lookup("B").unwrap();
        let c = db.symbols().lookup("C").unwrap();
        assert_eq!(idx.root_weight(a), 3);
        assert_eq!(idx.root_weight(b), 2);
        assert_eq!(idx.root_weight(c), 1);
        assert_eq!(idx.root_weight(SymbolId(99)), 0);
    }

    #[test]
    fn from_seq_indexes_matches_full_build() {
        let db = sample_db();
        let full = DbIndex::build(&db);
        let rebuilt = DbIndex::from_seq_indexes(full.sequences.clone());
        assert_eq!(rebuilt.symbol_support, full.symbol_support);
        assert_eq!(rebuilt.cooccurrence, full.cooccurrence);
        assert_eq!(rebuilt.sequences.len(), full.sequences.len());
    }

    #[test]
    fn missing_symbol_yields_empty_slices() {
        let db = sample_db();
        let idx = DbIndex::build(&db);
        let seq = &idx.sequences[2];
        assert!(seq.instances_of(SymbolId(42)).is_empty());
        assert!(seq.instances_starting_after(SymbolId(42), 0).is_empty());
        assert_eq!(seq.symbol_slot(SymbolId(42)), None);
    }
}
