//! The pattern-growth search engine.
//!
//! TPMiner grows patterns one *endpoint* at a time over the endpoint
//! representation. A search node holds a (possibly incomplete) pattern
//! prefix plus, for every supporting sequence, the *frontier* of partial
//! embeddings — each embedding records which endpoint set the prefix
//! currently ends at and which concrete interval instance every still-open
//! pattern slot is bound to. Tracking whole frontiers (rather than a single
//! position, as in plain PrefixSpan) is what makes support counting exact in
//! the presence of repeated symbols.
//!
//! Extensions come in four flavours:
//!
//! - `AfterStart(x)` / `MeetStart(x)` — a new interval of symbol `x` starts
//!   in a strictly later endpoint set / in the same endpoint set;
//! - `AfterFinish(k)` / `MeetFinish(k)` — the `k`-th open slot closes in a
//!   strictly later / the same endpoint set.
//!
//! Canonical-form gates guarantee each pattern is generated along exactly
//! one path: inside an endpoint set, endpoints are appended in canonical
//! rank order (finishes by slot, then starts by symbol), and among open
//! same-symbol slots that started together the lowest-numbered one must
//! finish first.

use crate::config::MinerConfig;
use crate::index::DbIndex;
use crate::stats::MinerStats;
use interval_core::budget::{BudgetMeter, MiningBudget, Termination};
use interval_core::{EndpointKind, PatternEndpoint, SymbolId, TemporalPattern};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// A candidate extension of the current pattern prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Ext {
    /// Close open slot `k` (index into the node's open list) in the current
    /// endpoint set.
    MeetFinish(u8),
    /// Close open slot `k` in a strictly later endpoint set.
    AfterFinish(u8),
    /// Start a new `symbol` interval in the current endpoint set.
    MeetStart(SymbolId),
    /// Start a new `symbol` interval in a strictly later endpoint set.
    AfterStart(SymbolId),
}

/// Canonical within-group rank of an appended endpoint. Finishes (class 0,
/// keyed by slot) precede starts (class 1, keyed by symbol).
type Rank = (u8, u32);

fn finish_rank(slot: u8) -> Rank {
    (0, u32::from(slot))
}

fn start_rank(symbol: SymbolId) -> Rank {
    (1, symbol.0)
}

/// An open pattern slot: started, not yet finished.
#[derive(Debug, Clone, Copy)]
struct OpenSlot {
    slot: u8,
    symbol: SymbolId,
    /// Pattern group index of the slot's start endpoint.
    start_group: u16,
}

/// One partial embedding of the pattern prefix into a sequence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EmbState {
    /// Data endpoint-set index the last pattern endpoint set is mapped to.
    group: u32,
    /// Data endpoint-set index the *first* pattern endpoint set is mapped
    /// to; tracked only under a window constraint (0 otherwise, keeping
    /// deduplication exact in the common unconstrained case).
    first_group: u32,
    /// Bound instance ids, parallel to the node's open-slot list.
    bindings: Vec<u32>,
}

/// Frontier of partial embeddings for one supporting sequence.
#[derive(Debug, Clone)]
struct SeqFrontier {
    seq: u32,
    states: Vec<EmbState>,
}

/// A search-tree node: pattern prefix plus projected database.
#[derive(Debug, Clone)]
struct Node {
    groups: Vec<Vec<PatternEndpoint>>,
    open: Vec<OpenSlot>,
    arity: u16,
    last_rank: Rank,
    frontier: Vec<SeqFrontier>,
}

impl Node {
    fn support(&self) -> usize {
        self.frontier.len()
    }

    fn is_complete(&self) -> bool {
        self.open.is_empty()
    }

    /// Distinct symbols used by the pattern so far (for pair pruning).
    fn pattern_symbols(&self) -> Vec<SymbolId> {
        let mut syms: Vec<SymbolId> = self
            .groups
            .iter()
            .flatten()
            .filter(|e| e.kind == EndpointKind::Start)
            .map(|e| e.symbol)
            .collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// Whether closing open slot `k` respects the canonical
    /// "close the lowest same-symbol co-started slot first" rule.
    fn finish_allowed(&self, k: usize) -> bool {
        let target = self.open[k];
        !self.open[..k]
            .iter()
            .any(|o| o.symbol == target.symbol && o.start_group == target.start_group)
    }
}

/// A deterministic fault-injection plan: panic at the `after_nodes`-th node
/// expansion once the subtree of `root` has been entered. Test-only (also
/// available behind the `fault-injection` feature for chaos drills).
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Root symbol whose level-1 subtree arms the countdown.
    pub root: SymbolId,
    /// Node expansions to survive after arming before panicking (1 panics
    /// on the first expansion of the poisoned root).
    pub after_nodes: u64,
}

/// The engine. Create with [`SearchEngine::new`], run with
/// [`SearchEngine::run`], inspect the work counters in
/// [`SearchEngine::stats`].
pub struct SearchEngine<'a> {
    index: &'a DbIndex,
    config: MinerConfig,
    min_sup: usize,
    /// Global frequent-symbol set (PT3); `None` when the technique is off.
    frequent: Option<HashSet<SymbolId>>,
    /// Instrumentation counters.
    pub stats: MinerStats,
    emitted: Vec<(TemporalPattern, usize)>,
    /// Resource-budget handle; checked before every node expansion.
    meter: BudgetMeter,
    /// Set when a budget check trips; the search unwinds without further
    /// expansion and reports this status.
    stop: Option<Termination>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<FaultPlan>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_countdown: Option<u64>,
}

impl<'a> SearchEngine<'a> {
    /// Prepares an engine over a prebuilt database index, with an unlimited
    /// budget.
    pub fn new(index: &'a DbIndex, config: MinerConfig) -> Self {
        let min_sup = config.effective_min_support();
        let frequent = config
            .pruning
            .symbol_pruning
            .then(|| index.frequent_symbols(min_sup).into_iter().collect());
        Self {
            index,
            config,
            min_sup,
            frequent,
            stats: MinerStats::default(),
            emitted: Vec::new(),
            meter: BudgetMeter::new(MiningBudget::unlimited()),
            stop: None,
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
            #[cfg(any(test, feature = "fault-injection"))]
            fault_countdown: None,
        }
    }

    /// Attaches a resource budget. The engine checks it cooperatively: the
    /// node/candidate counters and the cancellation token before every node
    /// expansion, the wall-clock deadline every
    /// [`check_stride`](MiningBudget::check_stride) expansions.
    pub fn with_budget(mut self, budget: MiningBudget) -> Self {
        self.meter = BudgetMeter::new(budget);
        self
    }

    /// Arms deterministic fault injection: the engine panics at the
    /// `after_nodes`-th node expansion after entering the subtree of
    /// `root`. Used to prove that a parallel run survives a poisoned
    /// worker.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn poison_root(mut self, root: SymbolId, after_nodes: u64) -> Self {
        self.fault = Some(FaultPlan { root, after_nodes });
        self
    }

    /// Runs the search and returns `(pattern, support)` pairs in canonical
    /// order plus the termination status (`Complete` unless the budget
    /// tripped).
    pub fn run(mut self) -> (Vec<(TemporalPattern, usize)>, MinerStats, Termination) {
        let started = Instant::now();
        let roots = self.root_symbols();
        self.grow_roots(&roots);
        self.stats.elapsed = started.elapsed();
        self.emitted
            .sort_unstable_by(|a, b| (a.0.arity(), &a.0).cmp(&(b.0.arity(), &b.0)));
        let termination = self.stop.take().unwrap_or_default();
        (self.emitted, self.stats, termination)
    }

    /// Runs the search restricted to root patterns starting with the given
    /// symbols (used by the parallel miner to split the tree). Does not sort.
    pub fn run_roots(
        mut self,
        roots: &[SymbolId],
    ) -> (Vec<(TemporalPattern, usize)>, MinerStats, Termination) {
        let started = Instant::now();
        self.grow_roots(roots);
        self.stats.elapsed = started.elapsed();
        let termination = self.stop.take().unwrap_or_default();
        (self.emitted, self.stats, termination)
    }

    /// Expands the level-1 subtree of every given root, stopping early when
    /// a budget check trips.
    fn grow_roots(&mut self, roots: &[SymbolId]) {
        for &symbol in roots {
            if self.stop.is_some() {
                break;
            }
            #[cfg(any(test, feature = "fault-injection"))]
            if let Some(fault) = self.fault {
                if fault.root == symbol {
                    self.fault_countdown = Some(fault.after_nodes);
                }
            }
            let root = self.make_root(symbol);
            if root.support() >= self.min_sup {
                self.expand(root);
            }
        }
    }

    /// The frequent symbols seeding the level-1 search, in sorted order.
    pub fn root_symbols(&self) -> Vec<SymbolId> {
        self.index.frequent_symbols(self.min_sup)
    }

    fn make_root(&mut self, symbol: SymbolId) -> Node {
        let index = self.index;
        let mut frontier = Vec::new();
        for (seq_id, seq) in index.sequences.iter().enumerate() {
            let windowed = self.config.max_window.is_some();
            let states: Vec<EmbState> = seq
                .instances_of(symbol)
                .iter()
                .map(|&i| {
                    let group = seq.endpoints.instance(i).start_group;
                    EmbState {
                        group,
                        first_group: if windowed { group } else { 0 },
                        bindings: vec![i],
                    }
                })
                .collect();
            if !states.is_empty() {
                self.stats.states_created += states.len() as u64;
                frontier.push(SeqFrontier {
                    seq: seq_id as u32,
                    states,
                });
            }
        }
        Node {
            groups: vec![vec![PatternEndpoint {
                kind: EndpointKind::Start,
                symbol,
                slot: 0,
            }]],
            open: vec![OpenSlot {
                slot: 0,
                symbol,
                start_group: 0,
            }],
            arity: 1,
            last_rank: start_rank(symbol),
            frontier,
        }
    }

    /// Depth-first expansion of a node whose support already passed the
    /// threshold.
    ///
    /// Budget checks happen *before* any work on the node: a tripped budget
    /// unwinds without emitting, so every emitted pattern's support comes
    /// from a fully materialized projection and is exact even in truncated
    /// runs (the soundness-under-truncation invariant).
    fn expand(&mut self, node: Node) {
        if self.stop.is_some() {
            return;
        }
        if let Err(termination) = self.meter.on_node() {
            self.stop = Some(termination);
            return;
        }
        #[cfg(any(test, feature = "fault-injection"))]
        self.fault_tick();
        self.stats.nodes_explored += 1;
        let node_states: u64 = node.frontier.iter().map(|f| f.states.len() as u64).sum();
        self.stats.peak_node_states = self.stats.peak_node_states.max(node_states);

        if node.is_complete() {
            let pattern = TemporalPattern::from_groups(node.groups.clone())
                .expect("generated prefixes are well-formed");
            debug_assert_eq!(
                pattern.groups(),
                &node.groups[..],
                "generation order must already be canonical"
            );
            self.stats.patterns_emitted += 1;
            self.emitted.push((pattern, node.support()));
        }

        let mut counts = self.gather_candidates(&node);
        self.stats.candidates_counted += counts.len() as u64;
        if let Err(termination) = self.meter.on_candidates(counts.len() as u64) {
            self.stop = Some(termination);
            return;
        }
        let mut candidates: Vec<Ext> = counts
            .drain()
            .filter(|&(_, c)| c as usize >= self.min_sup)
            .map(|(e, _)| e)
            .collect();
        candidates.sort_unstable();

        for ext in candidates {
            if self.stop.is_some() {
                return;
            }
            let child = self.apply(&node, ext);
            if child.support() >= self.min_sup {
                self.expand(child);
            }
        }
    }

    /// Decrements the armed fault countdown, panicking when it reaches the
    /// poisoned expansion.
    #[cfg(any(test, feature = "fault-injection"))]
    fn fault_tick(&mut self) {
        if let Some(countdown) = self.fault_countdown.as_mut() {
            if *countdown <= 1 {
                panic!("fault injection: poisoned root reached its target expansion");
            }
            *countdown -= 1;
        }
    }

    /// Node-level structural admissibility of an extension (canonical-form
    /// gates and size limits); independent of any particular sequence.
    fn ext_admissible(&self, node: &Node, ext: Ext) -> bool {
        match ext {
            Ext::MeetFinish(k) | Ext::AfterFinish(k) => {
                if !node.finish_allowed(k as usize) {
                    return false;
                }
                if matches!(ext, Ext::MeetFinish(_))
                    && finish_rank(node.open[k as usize].slot) <= node.last_rank
                {
                    return false;
                }
                if matches!(ext, Ext::AfterFinish(_)) {
                    if let Some(max) = self.config.max_groups {
                        if node.groups.len() >= max {
                            return false;
                        }
                    }
                }
                true
            }
            Ext::MeetStart(s) | Ext::AfterStart(s) => {
                if let Some(max) = self.config.max_arity {
                    if usize::from(node.arity) >= max {
                        return false;
                    }
                }
                if node.arity as usize >= u8::MAX as usize {
                    return false;
                }
                if matches!(ext, Ext::MeetStart(_)) {
                    let r = start_rank(s);
                    // within a group starts must come in non-decreasing
                    // symbol order; equal rank (same symbol) is allowed.
                    if r < node.last_rank {
                        return false;
                    }
                    if r == node.last_rank && node.last_rank.0 != 1 {
                        return false;
                    }
                } else if let Some(max) = self.config.max_groups {
                    if node.groups.len() >= max {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Pair-pruning check (PT1) plus frequent-symbol filter (PT3) for
    /// start extensions by `s`, memoized per node in `cache`.
    fn start_symbol_ok(
        &mut self,
        pattern_symbols: &[SymbolId],
        cache: &mut HashMap<SymbolId, bool>,
        s: SymbolId,
    ) -> bool {
        if let Some(&ok) = cache.get(&s) {
            return ok;
        }
        let mut ok = true;
        if let Some(frequent) = &self.frequent {
            if !frequent.contains(&s) {
                ok = false;
                self.stats.exts_pruned_symbol += 1;
            }
        }
        if ok && self.config.pruning.pair_pruning {
            for &y in pattern_symbols {
                if (self.index.cooccurrence(y, s) as usize) < self.min_sup {
                    ok = false;
                    self.stats.exts_pruned_pair += 1;
                    break;
                }
            }
        }
        cache.insert(s, ok);
        ok
    }

    /// Counts, for every admissible extension, the number of sequences with
    /// at least one embedding admitting it.
    fn gather_candidates(&mut self, node: &Node) -> HashMap<Ext, u32> {
        let index = self.index;
        let pattern_symbols = node.pattern_symbols();
        let mut symbol_cache: HashMap<SymbolId, bool> = HashMap::new();
        let mut counts: HashMap<Ext, u32> = HashMap::new();
        let mut per_seq: HashSet<Ext> = HashSet::new();

        // Precompute node-level admissibility of the (small) finish space.
        let finish_exts: Vec<(Ext, Ext)> = (0..node.open.len() as u8)
            .map(|k| (Ext::MeetFinish(k), Ext::AfterFinish(k)))
            .collect();

        for sf in &node.frontier {
            per_seq.clear();
            let seq = &index.sequences[sf.seq as usize];
            let seq_symbols = seq.symbols_sorted();
            for state in &sf.states {
                // Finish candidates.
                for (k, &(meet, after)) in finish_exts.iter().enumerate() {
                    let end_group = seq.endpoints.instance(state.bindings[k]).end_group;
                    if end_group == state.group {
                        if self.ext_admissible(node, meet) {
                            per_seq.insert(meet);
                        }
                    } else if end_group > state.group && self.ext_admissible(node, after) {
                        per_seq.insert(after);
                    }
                }
                // Start candidates.
                for &s in seq_symbols {
                    if !self.start_symbol_ok(&pattern_symbols, &mut symbol_cache, s) {
                        continue;
                    }
                    let meet = Ext::MeetStart(s);
                    if self.ext_admissible(node, meet) && !per_seq.contains(&meet) {
                        let at = seq.instances_starting_at(s, state.group);
                        if at.iter().any(|i| !state.bindings.contains(i)) {
                            per_seq.insert(meet);
                        }
                    }
                    let after = Ext::AfterStart(s);
                    if self.ext_admissible(node, after)
                        && !per_seq.contains(&after)
                        && !seq.instances_starting_after(s, state.group).is_empty()
                    {
                        per_seq.insert(after);
                    }
                }
            }
            for &e in &per_seq {
                *counts.entry(e).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Builds the child node for `ext`.
    fn apply(&mut self, node: &Node, ext: Ext) -> Node {
        // --- pattern bookkeeping ---
        let mut groups = node.groups.clone();
        let mut open = node.open.clone();
        let mut arity = node.arity;
        let last_rank;

        match ext {
            Ext::MeetFinish(k) | Ext::AfterFinish(k) => {
                let slot = open[k as usize];
                let endpoint = PatternEndpoint {
                    kind: EndpointKind::Finish,
                    symbol: slot.symbol,
                    slot: slot.slot,
                };
                if matches!(ext, Ext::MeetFinish(_)) {
                    groups.last_mut().expect("non-empty pattern").push(endpoint);
                } else {
                    groups.push(vec![endpoint]);
                }
                last_rank = finish_rank(slot.slot);
                open.remove(k as usize);
            }
            Ext::MeetStart(s) | Ext::AfterStart(s) => {
                let slot = arity as u8;
                let endpoint = PatternEndpoint {
                    kind: EndpointKind::Start,
                    symbol: s,
                    slot,
                };
                if matches!(ext, Ext::MeetStart(_)) {
                    groups.last_mut().expect("non-empty pattern").push(endpoint);
                } else {
                    groups.push(vec![endpoint]);
                }
                last_rank = start_rank(s);
                open.push(OpenSlot {
                    slot,
                    symbol: s,
                    start_group: (groups.len() - 1) as u16,
                });
                arity += 1;
            }
        }

        // --- frontier projection ---
        let index = self.index;
        let postfix = self.config.pruning.postfix_pruning;
        let max_gap = self.config.max_gap;
        let mut frontier = Vec::new();
        let mut scratch: Vec<EmbState> = Vec::new();
        for sf in &node.frontier {
            let seq = &index.sequences[sf.seq as usize];
            // Gap constraint: an After-type extension's jump distance is
            // final (nothing is ever inserted between consecutive pattern
            // sets), so a too-far jump is rejected at construction.
            let gap_ok = |from: u32, to: u32| match max_gap {
                None => true,
                Some(g) => seq.endpoints.group(to)[0].time - seq.endpoints.group(from)[0].time <= g,
            };
            scratch.clear();
            for state in &sf.states {
                match ext {
                    Ext::MeetFinish(k) => {
                        let k = k as usize;
                        if seq.endpoints.instance(state.bindings[k]).end_group == state.group {
                            let mut bindings = state.bindings.clone();
                            bindings.remove(k);
                            scratch.push(EmbState {
                                group: state.group,
                                first_group: state.first_group,
                                bindings,
                            });
                        }
                    }
                    Ext::AfterFinish(k) => {
                        let k = k as usize;
                        let end_group = seq.endpoints.instance(state.bindings[k]).end_group;
                        if end_group > state.group && gap_ok(state.group, end_group) {
                            let mut bindings = state.bindings.clone();
                            bindings.remove(k);
                            scratch.push(EmbState {
                                group: end_group,
                                first_group: state.first_group,
                                bindings,
                            });
                        }
                    }
                    Ext::MeetStart(s) => {
                        for &i in seq.instances_starting_at(s, state.group) {
                            if !state.bindings.contains(&i) {
                                let mut bindings = state.bindings.clone();
                                bindings.push(i);
                                scratch.push(EmbState {
                                    group: state.group,
                                    first_group: state.first_group,
                                    bindings,
                                });
                            }
                        }
                    }
                    Ext::AfterStart(s) => {
                        for &i in seq.instances_starting_after(s, state.group) {
                            let start_group = seq.endpoints.instance(i).start_group;
                            if !gap_ok(state.group, start_group) {
                                // instances are sorted by start group, so
                                // every later one also violates the gap
                                break;
                            }
                            let mut bindings = state.bindings.clone();
                            bindings.push(i);
                            scratch.push(EmbState {
                                group: start_group,
                                first_group: state.first_group,
                                bindings,
                            });
                        }
                    }
                }
            }
            // Window constraint: the final embedding's span is already lower
            // bounded by the current set's time and the (concrete) ends of
            // all bound open instances; states that cannot fit are dead.
            if let Some(w) = self.config.max_window {
                scratch.retain(|st| {
                    let first_time = seq.endpoints.group(st.first_group)[0].time;
                    let mut latest = seq.endpoints.group(st.group)[0].time;
                    for &i in &st.bindings {
                        latest = latest.max(seq.endpoints.instance(i).end);
                    }
                    latest - first_time <= w
                });
            }
            // Postfix (dead-embedding) pruning: drop states in which some
            // open binding already ended before the current endpoint set.
            if postfix {
                let before = scratch.len();
                scratch.retain(|st| {
                    st.bindings
                        .iter()
                        .all(|&i| seq.endpoints.instance(i).end_group >= st.group)
                });
                self.stats.states_pruned_dead += (before - scratch.len()) as u64;
            }
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() > self.config.frontier_cap {
                scratch.truncate(self.config.frontier_cap);
                self.stats.frontier_cap_hits += 1;
            }
            if !scratch.is_empty() {
                self.stats.states_created += scratch.len() as u64;
                frontier.push(SeqFrontier {
                    seq: sf.seq,
                    states: std::mem::take(&mut scratch),
                });
            }
        }

        Node {
            groups,
            open,
            arity,
            last_rank,
            frontier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::{matcher, DatabaseBuilder, IntervalDatabase, SymbolTable};

    fn mine(db: &IntervalDatabase, config: MinerConfig) -> Vec<(TemporalPattern, usize)> {
        let index = DbIndex::build(db);
        let engine = SearchEngine::new(&index, config);
        engine.run().0
    }

    fn pat(text: &str, t: &mut SymbolTable) -> TemporalPattern {
        TemporalPattern::parse(text, t).unwrap()
    }

    #[test]
    fn mines_singletons() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5);
        b.sequence().interval("A", 1, 3).interval("B", 0, 2);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        assert_eq!(result.len(), 1);
        let mut t = db.symbols().clone();
        assert_eq!(result[0].0, pat("A+ | A-", &mut t));
        assert_eq!(result[0].1, 2);
    }

    #[test]
    fn mines_overlap_pattern() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        b.sequence().interval("A", 10, 20).interval("B", 15, 30);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let overlap = pat("A+ | B+ | A- | B-", &mut t);
        let found: Vec<&TemporalPattern> = result.iter().map(|(p, _)| p).collect();
        assert!(found.contains(&&overlap), "found: {found:?}");
        // A, B, A-overlaps-B: exactly 3 frequent patterns
        assert_eq!(result.len(), 3);
        for (_, sup) in &result {
            assert_eq!(*sup, 2);
        }
    }

    #[test]
    fn distinguishes_meets_from_overlaps() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 5, 8);
        b.sequence().interval("A", 0, 5).interval("B", 5, 9);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let meets = pat("A+ | A- B+ | B-", &mut t);
        let overlaps = pat("A+ | B+ | A- | B-", &mut t);
        let found: Vec<&TemporalPattern> = result.iter().map(|(p, _)| p).collect();
        assert!(found.contains(&&meets));
        assert!(!found.contains(&&overlaps));
    }

    #[test]
    fn supports_match_oracle_exhaustively() {
        // Dense little database with repeated symbols and ties.
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("A", 5, 9);
        b.sequence()
            .interval("A", 0, 9)
            .interval("B", 1, 3)
            .interval("A", 1, 3);
        b.sequence().interval("B", 0, 2).interval("A", 2, 4);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(1));
        assert!(!result.is_empty());
        let mut seen = HashSet::new();
        for (p, sup) in &result {
            assert!(seen.insert(p.clone()), "duplicate pattern {p:?}");
            assert_eq!(
                matcher::support(&db, p),
                *sup,
                "support mismatch for {}",
                p.display(db.symbols())
            );
        }
    }

    #[test]
    fn pruning_configs_agree() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("C", 5, 7);
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("A", 3, 9);
        b.sequence().interval("C", 0, 2).interval("B", 1, 5);
        b.sequence().interval("A", 0, 2).interval("B", 0, 2);
        let db = b.build();
        for min_sup in 1..=3 {
            let with = mine(
                &db,
                MinerConfig::with_min_support(min_sup).pruning(crate::PruningConfig::all()),
            );
            let without = mine(
                &db,
                MinerConfig::with_min_support(min_sup).pruning(crate::PruningConfig::none()),
            );
            assert_eq!(with, without, "min_sup={min_sup}");
        }
    }

    #[test]
    fn repeated_symbol_crossing_is_mined() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 2).interval("A", 1, 3);
        b.sequence().interval("A", 5, 8).interval("A", 6, 9);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let crossing = pat("A+#0 | A+#1 | A-#0 | A-#1", &mut t);
        let found: Vec<&TemporalPattern> = result.iter().map(|(p, _)| p).collect();
        assert!(found.contains(&&crossing), "found: {found:?}");
    }

    #[test]
    fn max_arity_limits_pattern_size() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 2)
            .interval("B", 3, 5)
            .interval("C", 6, 8);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(1).max_arity(2));
        assert!(result.iter().all(|(p, _)| p.arity() <= 2));
        assert!(result.iter().any(|(p, _)| p.arity() == 2));
    }

    #[test]
    fn simultaneous_starts_are_one_canonical_pattern() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 0, 5);
        b.sequence().interval("A", 2, 9).interval("B", 2, 9);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let equals = pat("A+ B+ | A- B-", &mut t);
        let two: Vec<&TemporalPattern> = result
            .iter()
            .filter(|(p, _)| p.arity() == 2)
            .map(|(p, _)| p)
            .collect();
        assert_eq!(two, vec![&equals]);
    }

    #[test]
    fn empty_database_mines_nothing() {
        let db = IntervalDatabase::new();
        assert!(mine(&db, MinerConfig::with_min_support(1)).is_empty());
    }

    #[test]
    fn window_constraint_limits_supports() {
        let mut b = DatabaseBuilder::new();
        // "A before B" tight in one sequence, wide in the other.
        b.sequence().interval("A", 0, 2).interval("B", 4, 6);
        b.sequence().interval("A", 0, 2).interval("B", 50, 60);
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);

        let unconstrained = mine(&db, MinerConfig::with_min_support(1));
        assert!(unconstrained.iter().any(|(p, s)| p == &before && *s == 2));

        let windowed = mine(&db, MinerConfig::with_min_support(1).max_window(10));
        let found = windowed.iter().find(|(p, _)| p == &before);
        assert_eq!(
            found.map(|(_, s)| *s),
            Some(1),
            "only the tight embedding fits"
        );
        // Window-constrained supports agree with the oracle for every
        // emitted pattern.
        for (p, s) in &windowed {
            assert_eq!(
                matcher::support_within_window(&db, p, Some(10)),
                *s,
                "window support mismatch for {}",
                p.display(db.symbols())
            );
        }
    }

    #[test]
    fn gap_constraint_limits_jumps() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 2).interval("B", 4, 6); // gap 2
        b.sequence().interval("A", 0, 2).interval("B", 40, 44); // gap 38
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);

        let gapped = mine(&db, MinerConfig::with_min_support(1).max_gap(2));
        let found = gapped.iter().find(|(p, _)| p == &before);
        assert_eq!(found.map(|(_, s)| *s), Some(1));
        for (p, s) in &gapped {
            assert_eq!(
                matcher::support_constrained(
                    &db,
                    p,
                    interval_core::matcher::MatchConstraints::gap(2)
                ),
                *s,
                "gap support mismatch for {}",
                p.display(db.symbols())
            );
        }
    }

    #[test]
    fn gap_bridging_pattern_is_found() {
        // A..B..C chains within gap 2, while A..C alone jumps 4: the miner
        // must still reach the bridged 3-pattern (prefix growth keeps all
        // its consecutive jumps small).
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 2)
            .interval("B", 3, 5)
            .interval("C", 6, 8);
        let db = b.build();
        let mut t = db.symbols().clone();
        let ac = pat("A+ | A- | C+ | C-", &mut t);
        let abc = pat("A+ | A- | B+ | B- | C+ | C-", &mut t);
        let gapped = mine(&db, MinerConfig::with_min_support(1).max_gap(2));
        assert!(!gapped.iter().any(|(p, _)| p == &ac));
        assert!(gapped.iter().any(|(p, _)| p == &abc), "got: {gapped:?}");
    }

    #[test]
    fn window_excludes_long_singletons() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 100);
        b.sequence().interval("A", 0, 3);
        let db = b.build();
        let windowed = mine(&db, MinerConfig::with_min_support(2).max_window(5));
        assert!(
            windowed.is_empty(),
            "the 100-tick A cannot fit a 5-tick window"
        );
        let loose = mine(&db, MinerConfig::with_min_support(2).max_window(100));
        assert_eq!(loose.len(), 1);
    }
}
