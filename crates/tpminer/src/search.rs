//! The pattern-growth search engine.
//!
//! TPMiner grows patterns one *endpoint* at a time over the endpoint
//! representation. A search node holds a (possibly incomplete) pattern
//! prefix plus, for every supporting sequence, the *frontier* of partial
//! embeddings — each embedding records which endpoint set the prefix
//! currently ends at and which concrete interval instance every still-open
//! pattern slot is bound to. Tracking whole frontiers (rather than a single
//! position, as in plain PrefixSpan) is what makes support counting exact in
//! the presence of repeated symbols.
//!
//! Extensions come in four flavours:
//!
//! - `AfterStart(x)` / `MeetStart(x)` — a new interval of symbol `x` starts
//!   in a strictly later endpoint set / in the same endpoint set;
//! - `AfterFinish(k)` / `MeetFinish(k)` — the `k`-th open slot closes in a
//!   strictly later / the same endpoint set.
//!
//! Canonical-form gates guarantee each pattern is generated along exactly
//! one path: inside an endpoint set, endpoints are appended in canonical
//! rank order (finishes by slot, then starts by symbol), and among open
//! same-symbol slots that started together the lowest-numbered one must
//! finish first.
//!
//! # Memory layout
//!
//! Embeddings are stored structure-of-arrays: a node owns one `Frontier`
//! holding three flat `Vec<u32>` columns (`groups`, `first_groups`, and a
//! fixed-stride `bindings` arena — every state of a node binds exactly
//! `open.len()` instances) plus per-sequence `SeqSpan` ranges. Candidate
//! gathering counts extensions in dense stamp-versioned arrays instead of
//! hash maps, and child projection reuses engine-owned scratch columns plus
//! a pool of recycled frontiers, so steady-state node growth performs no
//! heap allocation. The output (patterns, supports, canonical order,
//! termination) is bit-identical to the earlier per-state `Vec` layout: the
//! per-sequence state order is still sorted by `(group, first_group,
//! bindings)` and deduplicated, and candidates are still counted once per
//! sequence and sorted in `Ext` order.

use crate::config::MinerConfig;
use crate::index::DbIndex;
use crate::stats::MinerStats;
use interval_core::budget::{BudgetMeter, MiningBudget, Termination};
use interval_core::{EndpointKind, PatternEndpoint, SymbolId, TemporalPattern};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// A candidate extension of the current pattern prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Ext {
    /// Close open slot `k` (index into the node's open list) in the current
    /// endpoint set.
    MeetFinish(u8),
    /// Close open slot `k` in a strictly later endpoint set.
    AfterFinish(u8),
    /// Start a new `symbol` interval in the current endpoint set.
    MeetStart(SymbolId),
    /// Start a new `symbol` interval in a strictly later endpoint set.
    AfterStart(SymbolId),
}

/// Number of dense extension codes reserved for finish extensions: open
/// slots are capped at 255 (the arity gate), two variants each. Start
/// extensions for symbol `s` live at `FINISH_CODES + 2s (+1)`.
const FINISH_CODES: usize = 512;

/// Recycled-frontier pool size: deep enough for any realistic DFS path,
/// small enough to bound idle memory.
const POOL_CAP: usize = 256;

/// Canonical within-group rank of an appended endpoint. Finishes (class 0,
/// keyed by slot) precede starts (class 1, keyed by symbol).
type Rank = (u8, u32);

fn finish_rank(slot: u8) -> Rank {
    (0, u32::from(slot))
}

fn start_rank(symbol: SymbolId) -> Rank {
    (1, symbol.0)
}

/// An open pattern slot: started, not yet finished.
#[derive(Debug, Clone, Copy)]
struct OpenSlot {
    slot: u8,
    symbol: SymbolId,
    /// Pattern group index of the slot's start endpoint.
    start_group: u16,
}

/// The contiguous range of a node's frontier columns holding one supporting
/// sequence's embedding states.
#[derive(Debug, Clone, Copy)]
struct SeqSpan {
    seq: u32,
    /// First state index (inclusive).
    lo: u32,
    /// One past the last state index.
    hi: u32,
}

/// Structure-of-arrays frontier shared by all of a node's embeddings.
///
/// State `i` is `(groups[i], first_groups[i],
/// bindings[i*width..(i+1)*width])`; `first_groups` is meaningful only
/// under a window constraint (0 otherwise, keeping deduplication exact in
/// the common unconstrained case). Within each [`SeqSpan`] the states are
/// sorted by exactly that tuple and deduplicated — the same order the old
/// per-state `Vec<EmbState>` layout maintained.
#[derive(Debug, Default)]
struct Frontier {
    /// Bindings per state — the node's open-slot count.
    width: usize,
    groups: Vec<u32>,
    first_groups: Vec<u32>,
    bindings: Vec<u32>,
    spans: Vec<SeqSpan>,
}

impl Frontier {
    fn state_count(&self) -> usize {
        self.groups.len()
    }

    fn bindings_of(&self, i: usize) -> &[u32] {
        &self.bindings[i * self.width..(i + 1) * self.width]
    }

    fn clear(&mut self) {
        self.width = 0;
        self.groups.clear();
        self.first_groups.clear();
        self.bindings.clear();
        self.spans.clear();
    }

    /// Logical size of the live columns (length-based, so it is
    /// deterministic across allocators) — the unit of the
    /// `arena_peak_bytes` stat.
    fn logical_bytes(&self) -> u64 {
        4 * (self.groups.len() + self.first_groups.len() + self.bindings.len()) as u64
            + (std::mem::size_of::<SeqSpan>() * self.spans.len()) as u64
    }
}

/// A search-tree node: pattern prefix plus projected database.
#[derive(Debug)]
struct Node {
    groups: Vec<Vec<PatternEndpoint>>,
    open: Vec<OpenSlot>,
    arity: u16,
    last_rank: Rank,
    /// Sorted distinct start symbols of the pattern, maintained
    /// incrementally as starts are appended (pair pruning reads this on
    /// every candidate symbol; recomputing it from `groups` per check was
    /// measurably hot).
    symbols: Vec<SymbolId>,
    frontier: Frontier,
}

impl Node {
    fn support(&self) -> usize {
        self.frontier.spans.len()
    }

    fn is_complete(&self) -> bool {
        self.open.is_empty()
    }

    /// Whether closing open slot `k` respects the canonical
    /// "close the lowest same-symbol co-started slot first" rule.
    fn finish_allowed(&self, k: usize) -> bool {
        let target = self.open[k];
        !self.open[..k]
            .iter()
            .any(|o| o.symbol == target.symbol && o.start_group == target.start_group)
    }
}

/// Dense, stamp-versioned scratch for candidate gathering, owned by the
/// engine and reused across every node expansion.
///
/// Extension codes index `ext_*`; `ext_seen[code] == seq_tag` means the
/// extension was already counted for the sequence currently being scanned
/// (the role the old per-sequence `HashSet<Ext>` played), and
/// `symbol_stamp[s] == node_tag` means the per-node symbol admissibility
/// memo (`symbol_meet`/`symbol_after`) is valid for `s`. Bumping a tag
/// invalidates a whole array in O(1); the arrays themselves are never
/// cleared.
#[derive(Debug, Default)]
struct GatherScratch {
    ext_count: Vec<u32>,
    ext_seen: Vec<u64>,
    /// Distinct codes with a non-zero count this gather, in first-touch
    /// order (used to reset `ext_count` and to enumerate results).
    ext_touched: Vec<u32>,
    seq_tag: u64,
    node_tag: u64,
    /// Per-open-slot (MeetFinish, AfterFinish) admissibility for the
    /// current node.
    finish_adm: Vec<(bool, bool)>,
    symbol_meet: Vec<bool>,
    symbol_after: Vec<bool>,
    symbol_stamp: Vec<u64>,
}

impl GatherScratch {
    /// Grows the dense arrays to cover `universe` symbols. Fresh cells get
    /// stamp 0, which never matches a live tag (tags are pre-incremented
    /// before first use).
    fn ensure(&mut self, universe: usize) {
        let ext_len = FINISH_CODES + 2 * universe;
        if self.ext_count.len() < ext_len {
            self.ext_count.resize(ext_len, 0);
            self.ext_seen.resize(ext_len, 0);
        }
        if self.symbol_stamp.len() < universe {
            self.symbol_meet.resize(universe, false);
            self.symbol_after.resize(universe, false);
            self.symbol_stamp.resize(universe, 0);
        }
    }

    /// Counts `code` once per sequence (idempotent within the current
    /// `seq_tag`).
    fn mark(&mut self, code: usize) {
        if self.ext_seen[code] != self.seq_tag {
            self.ext_seen[code] = self.seq_tag;
            if self.ext_count[code] == 0 {
                self.ext_touched.push(code as u32);
            }
            self.ext_count[code] += 1;
        }
    }
}

/// Engine-owned columns for building one sequence's child states in
/// [`SearchEngine::apply`]; recycled across all projections.
#[derive(Debug, Default)]
struct ApplyScratch {
    groups: Vec<u32>,
    first_groups: Vec<u32>,
    bindings: Vec<u32>,
    /// Sort permutation over the surviving states.
    perm: Vec<u32>,
}

impl ApplyScratch {
    fn clear(&mut self) {
        self.groups.clear();
        self.first_groups.clear();
        self.bindings.clear();
        self.perm.clear();
    }

    /// Appends a state copying `row` minus the binding at `k` (a finish).
    fn push_without(&mut self, group: u32, first_group: u32, row: &[u32], k: usize) {
        self.groups.push(group);
        self.first_groups.push(first_group);
        self.bindings.extend_from_slice(&row[..k]);
        self.bindings.extend_from_slice(&row[k + 1..]);
    }

    /// Appends a state copying `row` plus a new trailing binding (a start).
    fn push_with(&mut self, group: u32, first_group: u32, row: &[u32], extra: u32) {
        self.groups.push(group);
        self.first_groups.push(first_group);
        self.bindings.extend_from_slice(row);
        self.bindings.push(extra);
    }
}

/// A deterministic fault-injection plan: panic at the `after_nodes`-th node
/// expansion once the subtree of `root` has been entered. Test-only (also
/// available behind the `fault-injection` feature for chaos drills).
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Root symbol whose level-1 subtree arms the countdown.
    pub root: SymbolId,
    /// Node expansions to survive after arming before panicking (1 panics
    /// on the first expansion of the poisoned root).
    pub after_nodes: u64,
}

/// The engine. Create with [`SearchEngine::new`], run with
/// [`SearchEngine::run`], inspect the work counters in
/// [`SearchEngine::stats`].
pub struct SearchEngine<'a> {
    index: &'a DbIndex,
    config: MinerConfig,
    min_sup: usize,
    /// Dense symbol-id bound of the index (`SymbolId.0 < universe`).
    universe: usize,
    /// Global frequent-symbol bitset (PT3), indexed by symbol id; `None`
    /// when the technique is off.
    frequent: Option<Vec<bool>>,
    /// Instrumentation counters.
    pub stats: MinerStats,
    emitted: Vec<(TemporalPattern, usize)>,
    /// Resource-budget handle; checked before every node expansion.
    meter: BudgetMeter,
    /// Set when a budget check trips; the search unwinds without further
    /// expansion and reports this status.
    stop: Option<Termination>,
    gather: GatherScratch,
    scratch: ApplyScratch,
    /// Released frontiers awaiting reuse (capacity retained).
    pool: Vec<Frontier>,
    /// Logical bytes of every frontier on the current DFS path; feeds
    /// `arena_peak_bytes`.
    live_arena_bytes: u64,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<FaultPlan>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_countdown: Option<u64>,
}

impl<'a> SearchEngine<'a> {
    /// Prepares an engine over a prebuilt database index, with an unlimited
    /// budget.
    pub fn new(index: &'a DbIndex, config: MinerConfig) -> Self {
        let min_sup = config.effective_min_support();
        let universe = index.symbol_universe();
        let frequent = config.pruning.symbol_pruning.then(|| {
            let mut bits = vec![false; universe];
            for s in index.frequent_symbols(min_sup) {
                bits[s.0 as usize] = true;
            }
            bits
        });
        Self {
            index,
            config,
            min_sup,
            universe,
            frequent,
            stats: MinerStats::default(),
            emitted: Vec::new(),
            meter: BudgetMeter::new(MiningBudget::unlimited()),
            stop: None,
            gather: GatherScratch::default(),
            scratch: ApplyScratch::default(),
            pool: Vec::new(),
            live_arena_bytes: 0,
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
            #[cfg(any(test, feature = "fault-injection"))]
            fault_countdown: None,
        }
    }

    /// Attaches a resource budget. The engine checks it cooperatively: the
    /// node/candidate counters and the cancellation token before every node
    /// expansion, the wall-clock deadline every
    /// [`check_stride`](MiningBudget::check_stride) expansions.
    pub fn with_budget(mut self, budget: MiningBudget) -> Self {
        self.meter = BudgetMeter::new(budget);
        self
    }

    /// Arms deterministic fault injection: the engine panics at the
    /// `after_nodes`-th node expansion after entering the subtree of
    /// `root`. Used to prove that a parallel run survives a poisoned
    /// worker.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn poison_root(mut self, root: SymbolId, after_nodes: u64) -> Self {
        self.fault = Some(FaultPlan { root, after_nodes });
        self
    }

    /// Runs the search and returns `(pattern, support)` pairs in canonical
    /// order plus the termination status (`Complete` unless the budget
    /// tripped).
    pub fn run(mut self) -> (Vec<(TemporalPattern, usize)>, MinerStats, Termination) {
        // xlint::allow(no-unbudgeted-clock): single read per run that seeds MinerStats::elapsed; the budget path reuses it via finish()
        let started = Instant::now();
        let roots = self.root_symbols();
        self.grow_roots(&roots);
        let (mut emitted, stats, termination) = self.finish(started);
        emitted.sort_unstable_by(|a, b| (a.0.arity(), &a.0).cmp(&(b.0.arity(), &b.0)));
        (emitted, stats, termination)
    }

    /// Runs the search restricted to root patterns starting with the given
    /// symbols (used by the parallel miner to split the tree). Does not sort.
    pub fn run_roots(
        mut self,
        roots: &[SymbolId],
    ) -> (Vec<(TemporalPattern, usize)>, MinerStats, Termination) {
        // xlint::allow(no-unbudgeted-clock): single read per partitioned run seeding MinerStats::elapsed, mirroring run()
        let started = Instant::now();
        self.grow_roots(roots);
        self.finish(started)
    }

    /// Whether a budget check has tripped; once true, further root growth
    /// is a no-op, so queue-driven callers should drain without claiming
    /// more work.
    pub fn stopped(&self) -> bool {
        self.stop.is_some()
    }

    /// Expands one root's subtree, catching a panic inside it. On panic the
    /// engine stays usable for further roots: patterns emitted by the
    /// poisoned subtree are rolled back (their DFS was cut short, so
    /// keeping a prefix would silently under-report the subtree) and
    /// `false` is returned so the caller can record the root as failed.
    /// Work counters keep whatever the subtree managed before dying.
    pub fn try_grow_root(&mut self, root: SymbolId) -> bool {
        let checkpoint = self.emitted.len();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.grow_roots(std::slice::from_ref(&root));
        }));
        match outcome {
            Ok(()) => true,
            Err(_panic) => {
                self.emitted.truncate(checkpoint);
                // The unwound subtree's frontiers are gone (and any
                // mid-flight scratch was dropped): reset the live-bytes
                // ledger, which is empty between roots by construction.
                self.live_arena_bytes = 0;
                #[cfg(any(test, feature = "fault-injection"))]
                {
                    self.fault_countdown = None;
                }
                false
            }
        }
    }

    /// Consumes the engine, stamping `elapsed` and extracting the result
    /// triple (unsorted; `run` sorts, queue workers let the merger sort).
    pub fn finish(
        mut self,
        started: Instant,
    ) -> (Vec<(TemporalPattern, usize)>, MinerStats, Termination) {
        self.stats.elapsed = started.elapsed();
        let termination = self.stop.take().unwrap_or_default();
        (self.emitted, self.stats, termination)
    }

    /// Expands the level-1 subtree of every given root, stopping early when
    /// a budget check trips.
    fn grow_roots(&mut self, roots: &[SymbolId]) {
        for &symbol in roots {
            if self.stop.is_some() {
                break;
            }
            #[cfg(any(test, feature = "fault-injection"))]
            if let Some(fault) = self.fault {
                if fault.root == symbol {
                    self.fault_countdown = Some(fault.after_nodes);
                }
            }
            let root = self.make_root(symbol);
            if root.support() >= self.min_sup {
                self.expand(root);
            } else {
                self.release(root);
            }
        }
    }

    /// The frequent symbols seeding the level-1 search, in sorted order.
    pub fn root_symbols(&self) -> Vec<SymbolId> {
        self.index.frequent_symbols(self.min_sup)
    }

    /// Accounts a freshly built frontier against the live-arena ledger.
    fn charge(&mut self, frontier: &Frontier) {
        self.live_arena_bytes += frontier.logical_bytes();
        self.stats.arena_peak_bytes = self.stats.arena_peak_bytes.max(self.live_arena_bytes);
    }

    /// Retires a node, recycling its frontier's allocations.
    fn release(&mut self, node: Node) {
        let mut frontier = node.frontier;
        self.live_arena_bytes = self
            .live_arena_bytes
            .saturating_sub(frontier.logical_bytes());
        frontier.clear();
        if self.pool.len() < POOL_CAP {
            self.pool.push(frontier);
        }
    }

    fn make_root(&mut self, symbol: SymbolId) -> Node {
        let index = self.index;
        let windowed = self.config.max_window.is_some();
        let mut frontier = self.pool.pop().unwrap_or_default();
        frontier.width = 1;
        for (seq_id, seq) in index.sequences.iter().enumerate() {
            let lo = frontier.groups.len() as u32;
            for &i in seq.instances_of(symbol) {
                let group = seq.endpoints.instance(i).start_group;
                frontier.groups.push(group);
                frontier.first_groups.push(if windowed { group } else { 0 });
                frontier.bindings.push(i);
            }
            let hi = frontier.groups.len() as u32;
            if hi > lo {
                self.stats.states_created += u64::from(hi - lo);
                frontier.spans.push(SeqSpan {
                    seq: seq_id as u32,
                    lo,
                    hi,
                });
            }
        }
        self.charge(&frontier);
        Node {
            groups: vec![vec![PatternEndpoint {
                kind: EndpointKind::Start,
                symbol,
                slot: 0,
            }]],
            open: vec![OpenSlot {
                slot: 0,
                symbol,
                start_group: 0,
            }],
            arity: 1,
            last_rank: start_rank(symbol),
            symbols: vec![symbol],
            frontier,
        }
    }

    /// Depth-first expansion of a node whose support already passed the
    /// threshold. Consumes the node; its frontier returns to the pool on
    /// every exit path.
    ///
    /// Budget checks happen *before* any work on the node: a tripped budget
    /// unwinds without emitting, so every emitted pattern's support comes
    /// from a fully materialized projection and is exact even in truncated
    /// runs (the soundness-under-truncation invariant).
    fn expand(&mut self, node: Node) {
        if self.stop.is_some() {
            self.release(node);
            return;
        }
        if let Err(termination) = self.meter.on_node() {
            self.stop = Some(termination);
            self.release(node);
            return;
        }
        #[cfg(any(test, feature = "fault-injection"))]
        self.fault_tick();
        self.stats.nodes_explored += 1;
        let node_states = node.frontier.state_count() as u64;
        self.stats.peak_node_states = self.stats.peak_node_states.max(node_states);

        if node.is_complete() {
            let pattern = TemporalPattern::from_groups(node.groups.clone())
                // xlint::allow(no-panic-lib): enumeration emits only canonical well-formed prefixes; failure here is a search-invariant break, not recoverable input
                .expect("generated prefixes are well-formed");
            debug_assert_eq!(
                pattern.groups(),
                &node.groups[..],
                "generation order must already be canonical"
            );
            self.stats.patterns_emitted += 1;
            self.emitted.push((pattern, node.support()));
        }

        let (total, mut candidates) = self.gather_candidates(&node);
        self.stats.candidates_counted += total as u64;
        if let Err(termination) = self.meter.on_candidates(total as u64) {
            self.stop = Some(termination);
            self.release(node);
            return;
        }
        candidates.sort_unstable();

        for ext in candidates {
            if self.stop.is_some() {
                break;
            }
            let child = self.apply(&node, ext);
            if child.support() >= self.min_sup {
                self.expand(child);
            } else {
                self.release(child);
            }
        }
        self.release(node);
    }

    /// Decrements the armed fault countdown, panicking when it reaches the
    /// poisoned expansion.
    #[cfg(any(test, feature = "fault-injection"))]
    fn fault_tick(&mut self) {
        if let Some(countdown) = self.fault_countdown.as_mut() {
            if *countdown <= 1 {
                panic!("fault injection: poisoned root reached its target expansion");
            }
            *countdown -= 1;
        }
    }

    /// Node-level structural admissibility of an extension (canonical-form
    /// gates and size limits); independent of any particular sequence.
    fn ext_admissible(&self, node: &Node, ext: Ext) -> bool {
        match ext {
            Ext::MeetFinish(k) | Ext::AfterFinish(k) => {
                if !node.finish_allowed(k as usize) {
                    return false;
                }
                if matches!(ext, Ext::MeetFinish(_))
                    && finish_rank(node.open[k as usize].slot) <= node.last_rank
                {
                    return false;
                }
                if matches!(ext, Ext::AfterFinish(_)) {
                    if let Some(max) = self.config.max_groups {
                        if node.groups.len() >= max {
                            return false;
                        }
                    }
                }
                true
            }
            Ext::MeetStart(s) | Ext::AfterStart(s) => {
                if let Some(max) = self.config.max_arity {
                    if usize::from(node.arity) >= max {
                        return false;
                    }
                }
                if node.arity as usize >= u8::MAX as usize {
                    return false;
                }
                if matches!(ext, Ext::MeetStart(_)) {
                    let r = start_rank(s);
                    // within a group starts must come in non-decreasing
                    // symbol order; equal rank (same symbol) is allowed.
                    if r < node.last_rank {
                        return false;
                    }
                    if r == node.last_rank && node.last_rank.0 != 1 {
                        return false;
                    }
                } else if let Some(max) = self.config.max_groups {
                    if node.groups.len() >= max {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Pair-pruning check (PT1) plus frequent-symbol filter (PT3) for
    /// start extensions by `s`; callers memoize the verdict per node.
    fn start_symbol_ok(&mut self, pattern_symbols: &[SymbolId], s: SymbolId) -> bool {
        if let Some(frequent) = &self.frequent {
            if !frequent.get(s.0 as usize).copied().unwrap_or(false) {
                self.stats.exts_pruned_symbol += 1;
                return false;
            }
        }
        if self.config.pruning.pair_pruning {
            for &y in pattern_symbols {
                if (self.index.cooccurrence(y, s) as usize) < self.min_sup {
                    self.stats.exts_pruned_pair += 1;
                    return false;
                }
            }
        }
        true
    }

    /// Counts, for every admissible extension, the number of sequences with
    /// at least one embedding admitting it. Returns the number of distinct
    /// supported extensions (the candidate-budget charge) and the subset
    /// meeting `min_sup`, unsorted.
    fn gather_candidates(&mut self, node: &Node) -> (usize, Vec<Ext>) {
        let mut g = std::mem::take(&mut self.gather);
        g.ensure(self.universe);
        for &code in &g.ext_touched {
            g.ext_count[code as usize] = 0;
        }
        g.ext_touched.clear();
        g.node_tag += 1;

        // Precompute node-level admissibility of the (small) finish space.
        g.finish_adm.clear();
        for k in 0..node.open.len() as u8 {
            g.finish_adm.push((
                self.ext_admissible(node, Ext::MeetFinish(k)),
                self.ext_admissible(node, Ext::AfterFinish(k)),
            ));
        }

        // Extension-major scan: for each candidate extension, walk the
        // sequence's states only until one admits it (a sequence counts
        // each extension at most once, so the first witness settles it).
        // This is the same mark set the old state-major scan produced —
        // marks are monotone and per-sequence — but the inner loop usually
        // stops at the first state instead of revisiting every extension
        // for every state.
        let index = self.index;
        let frontier = &node.frontier;
        for &span in &frontier.spans {
            g.seq_tag += 1;
            let seq = &index.sequences[span.seq as usize];
            let states = span.lo as usize..span.hi as usize;
            // Finish candidates.
            for k in 0..g.finish_adm.len() {
                let (meet_adm, after_adm) = g.finish_adm[k];
                let (mut need_meet, mut need_after) = (meet_adm, after_adm);
                for i in states.clone() {
                    if !need_meet && !need_after {
                        break;
                    }
                    let group = frontier.groups[i];
                    let end_group = seq
                        .endpoints
                        .instance(frontier.bindings[i * frontier.width + k])
                        .end_group;
                    if end_group == group {
                        if need_meet {
                            g.mark(2 * k);
                            need_meet = false;
                        }
                    } else if end_group > group && need_after {
                        g.mark(2 * k + 1);
                        need_after = false;
                    }
                }
            }
            // Start candidates.
            for (slot, &s) in seq.symbols_sorted().iter().enumerate() {
                let si = s.0 as usize;
                if g.symbol_stamp[si] != g.node_tag {
                    g.symbol_stamp[si] = g.node_tag;
                    let ok = self.start_symbol_ok(&node.symbols, s);
                    g.symbol_meet[si] = ok && self.ext_admissible(node, Ext::MeetStart(s));
                    g.symbol_after[si] = ok && self.ext_admissible(node, Ext::AfterStart(s));
                }
                let meet_code = FINISH_CODES + 2 * si;
                let (mut need_meet, mut need_after) = (g.symbol_meet[si], g.symbol_after[si]);
                for i in states.clone() {
                    if !need_meet && !need_after {
                        break;
                    }
                    let group = frontier.groups[i];
                    if need_after && !seq.slot_instances_starting_after(slot, group).is_empty() {
                        g.mark(meet_code + 1);
                        need_after = false;
                    }
                    if need_meet {
                        let at = seq.slot_instances_starting_at(slot, group);
                        let row = frontier.bindings_of(i);
                        if at.iter().any(|inst| !row.contains(inst)) {
                            g.mark(meet_code);
                            need_meet = false;
                        }
                    }
                }
            }
        }

        let total = g.ext_touched.len();
        let mut candidates = Vec::new();
        for &code in &g.ext_touched {
            if g.ext_count[code as usize] as usize >= self.min_sup {
                candidates.push(decode_ext(code as usize));
            }
        }
        self.gather = g;
        (total, candidates)
    }

    /// Builds the child node for `ext`.
    fn apply(&mut self, node: &Node, ext: Ext) -> Node {
        // --- pattern bookkeeping ---
        let mut groups = node.groups.clone();
        let mut open = node.open.clone();
        let mut symbols = node.symbols.clone();
        let mut arity = node.arity;
        let last_rank;

        match ext {
            Ext::MeetFinish(k) | Ext::AfterFinish(k) => {
                let slot = open[k as usize];
                let endpoint = PatternEndpoint {
                    kind: EndpointKind::Finish,
                    symbol: slot.symbol,
                    slot: slot.slot,
                };
                // Meet joins the last group; After opens a new one. Meet
                // extensions are only generated for non-empty prefixes, so
                // the fallback arm can only fire for After.
                debug_assert!(!matches!(ext, Ext::MeetFinish(_)) || !groups.is_empty());
                match groups.last_mut() {
                    Some(last) if matches!(ext, Ext::MeetFinish(_)) => last.push(endpoint),
                    _ => groups.push(vec![endpoint]),
                }
                last_rank = finish_rank(slot.slot);
                open.remove(k as usize);
            }
            Ext::MeetStart(s) | Ext::AfterStart(s) => {
                let slot = arity as u8;
                let endpoint = PatternEndpoint {
                    kind: EndpointKind::Start,
                    symbol: s,
                    slot,
                };
                debug_assert!(!matches!(ext, Ext::MeetStart(_)) || !groups.is_empty());
                match groups.last_mut() {
                    Some(last) if matches!(ext, Ext::MeetStart(_)) => last.push(endpoint),
                    _ => groups.push(vec![endpoint]),
                }
                last_rank = start_rank(s);
                open.push(OpenSlot {
                    slot,
                    symbol: s,
                    start_group: (groups.len() - 1) as u16,
                });
                arity += 1;
                if let Err(pos) = symbols.binary_search(&s) {
                    symbols.insert(pos, s);
                }
            }
        }

        // --- frontier projection ---
        let index = self.index;
        let postfix = self.config.pruning.postfix_pruning;
        let max_gap = self.config.max_gap;
        let max_window = self.config.max_window;
        let cw = open.len(); // child binding width
        let parent = &node.frontier;
        let mut scratch = std::mem::take(&mut self.scratch);
        let pooled = !self.pool.is_empty();
        let mut child = self.pool.pop().unwrap_or_default();
        let caps = (
            child.groups.capacity(),
            child.first_groups.capacity(),
            child.bindings.capacity(),
            child.spans.capacity(),
        );
        child.width = cw;

        for &span in &parent.spans {
            let seq = &index.sequences[span.seq as usize];
            // Gap constraint: an After-type extension's jump distance is
            // final (nothing is ever inserted between consecutive pattern
            // sets), so a too-far jump is rejected at construction.
            let gap_ok = |from: u32, to: u32| match max_gap {
                None => true,
                Some(g) => seq.endpoints.group(to)[0].time - seq.endpoints.group(from)[0].time <= g,
            };
            scratch.clear();
            let states = span.lo as usize..span.hi as usize;
            match ext {
                Ext::MeetFinish(k) => {
                    let k = k as usize;
                    for i in states {
                        let group = parent.groups[i];
                        let row = parent.bindings_of(i);
                        if seq.endpoints.instance(row[k]).end_group == group {
                            scratch.push_without(group, parent.first_groups[i], row, k);
                        }
                    }
                }
                Ext::AfterFinish(k) => {
                    let k = k as usize;
                    for i in states {
                        let group = parent.groups[i];
                        let row = parent.bindings_of(i);
                        let end_group = seq.endpoints.instance(row[k]).end_group;
                        if end_group > group && gap_ok(group, end_group) {
                            scratch.push_without(end_group, parent.first_groups[i], row, k);
                        }
                    }
                }
                Ext::MeetStart(s) => {
                    if let Some(slot) = seq.symbol_slot(s) {
                        for i in states {
                            let group = parent.groups[i];
                            let row = parent.bindings_of(i);
                            for &inst in seq.slot_instances_starting_at(slot, group) {
                                if !row.contains(&inst) {
                                    scratch.push_with(group, parent.first_groups[i], row, inst);
                                }
                            }
                        }
                    }
                }
                Ext::AfterStart(s) => {
                    if let Some(slot) = seq.symbol_slot(s) {
                        for i in states {
                            let group = parent.groups[i];
                            let row = parent.bindings_of(i);
                            for &inst in seq.slot_instances_starting_after(slot, group) {
                                let start_group = seq.endpoints.instance(inst).start_group;
                                if !gap_ok(group, start_group) {
                                    // instances are sorted by start group, so
                                    // every later one also violates the gap
                                    break;
                                }
                                scratch.push_with(start_group, parent.first_groups[i], row, inst);
                            }
                        }
                    }
                }
            }

            // Window constraint (the final embedding's span is already
            // lower bounded by the current set's time and the concrete ends
            // of all bound open instances — states that cannot fit are
            // dead) fused with postfix pruning (drop states whose open
            // bindings already ended before the current endpoint set),
            // compacting the columns in place. Postfix drops are counted
            // only among window survivors, matching the old two-pass
            // retain order.
            let generated = scratch.groups.len();
            let mut write = 0usize;
            for read in 0..generated {
                let group = scratch.groups[read];
                let row = read * cw..(read + 1) * cw;
                if let Some(w) = max_window {
                    let first_time = seq.endpoints.group(scratch.first_groups[read])[0].time;
                    let mut latest = seq.endpoints.group(group)[0].time;
                    for &b in &scratch.bindings[row.clone()] {
                        latest = latest.max(seq.endpoints.instance(b).end);
                    }
                    if latest - first_time > w {
                        continue;
                    }
                }
                if postfix
                    && scratch.bindings[row]
                        .iter()
                        .any(|&b| seq.endpoints.instance(b).end_group < group)
                {
                    self.stats.states_pruned_dead += 1;
                    continue;
                }
                if write != read {
                    scratch.groups[write] = group;
                    scratch.first_groups[write] = scratch.first_groups[read];
                    scratch
                        .bindings
                        .copy_within(read * cw..(read + 1) * cw, write * cw);
                }
                write += 1;
            }
            scratch.groups.truncate(write);
            scratch.first_groups.truncate(write);
            scratch.bindings.truncate(write * cw);

            // Sort by (group, first_group, bindings) — the old EmbState
            // order — then write out deduplicated, stopping at the cap.
            scratch.perm.clear();
            scratch.perm.extend(0..write as u32);
            {
                let (sg, sf, sb) = (&scratch.groups, &scratch.first_groups, &scratch.bindings);
                scratch.perm.sort_unstable_by(|&a, &b| {
                    let (a, b) = (a as usize, b as usize);
                    (sg[a], sf[a], &sb[a * cw..(a + 1) * cw]).cmp(&(
                        sg[b],
                        sf[b],
                        &sb[b * cw..(b + 1) * cw],
                    ))
                });
            }
            let lo = child.groups.len() as u32;
            let mut written = 0usize;
            for &p in &scratch.perm {
                let p = p as usize;
                let row = &scratch.bindings[p * cw..(p + 1) * cw];
                if written > 0 {
                    let last = child.groups.len() - 1;
                    if child.groups[last] == scratch.groups[p]
                        && child.first_groups[last] == scratch.first_groups[p]
                        && &child.bindings[last * cw..(last + 1) * cw] == row
                    {
                        continue;
                    }
                }
                if written == self.config.frontier_cap {
                    self.stats.frontier_cap_hits += 1;
                    break;
                }
                child.groups.push(scratch.groups[p]);
                child.first_groups.push(scratch.first_groups[p]);
                child.bindings.extend_from_slice(row);
                written += 1;
            }
            if written > 0 {
                self.stats.states_created += written as u64;
                child.spans.push(SeqSpan {
                    seq: span.seq,
                    lo,
                    hi: lo + written as u32,
                });
            }
        }

        if pooled
            && child.groups.capacity() == caps.0
            && child.first_groups.capacity() == caps.1
            && child.bindings.capacity() == caps.2
            && child.spans.capacity() == caps.3
        {
            self.stats.scratch_reuse_hits += 1;
        }
        self.scratch = scratch;
        self.charge(&child);

        Node {
            groups,
            open,
            arity,
            last_rank,
            symbols,
            frontier: child,
        }
    }
}

/// Inverse of the dense extension-code layout used by [`GatherScratch`].
// usize::is_multiple_of needs Rust 1.87; the workspace MSRV is 1.75.
#[allow(clippy::manual_is_multiple_of)]
fn decode_ext(code: usize) -> Ext {
    if code < FINISH_CODES {
        let k = (code / 2) as u8;
        if code % 2 == 0 {
            Ext::MeetFinish(k)
        } else {
            Ext::AfterFinish(k)
        }
    } else {
        let c = code - FINISH_CODES;
        let s = SymbolId((c / 2) as u32);
        if c % 2 == 0 {
            Ext::MeetStart(s)
        } else {
            Ext::AfterStart(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::{matcher, DatabaseBuilder, IntervalDatabase, SymbolTable};
    use std::collections::HashSet;

    fn mine(db: &IntervalDatabase, config: MinerConfig) -> Vec<(TemporalPattern, usize)> {
        let index = DbIndex::build(db);
        let engine = SearchEngine::new(&index, config);
        engine.run().0
    }

    fn pat(text: &str, t: &mut SymbolTable) -> TemporalPattern {
        TemporalPattern::parse(text, t).unwrap()
    }

    #[test]
    fn mines_singletons() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5);
        b.sequence().interval("A", 1, 3).interval("B", 0, 2);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        assert_eq!(result.len(), 1);
        let mut t = db.symbols().clone();
        assert_eq!(result[0].0, pat("A+ | A-", &mut t));
        assert_eq!(result[0].1, 2);
    }

    #[test]
    fn mines_overlap_pattern() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        b.sequence().interval("A", 10, 20).interval("B", 15, 30);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let overlap = pat("A+ | B+ | A- | B-", &mut t);
        let found: Vec<&TemporalPattern> = result.iter().map(|(p, _)| p).collect();
        assert!(found.contains(&&overlap), "found: {found:?}");
        // A, B, A-overlaps-B: exactly 3 frequent patterns
        assert_eq!(result.len(), 3);
        for (_, sup) in &result {
            assert_eq!(*sup, 2);
        }
    }

    #[test]
    fn distinguishes_meets_from_overlaps() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 5, 8);
        b.sequence().interval("A", 0, 5).interval("B", 5, 9);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let meets = pat("A+ | A- B+ | B-", &mut t);
        let overlaps = pat("A+ | B+ | A- | B-", &mut t);
        let found: Vec<&TemporalPattern> = result.iter().map(|(p, _)| p).collect();
        assert!(found.contains(&&meets));
        assert!(!found.contains(&&overlaps));
    }

    #[test]
    fn supports_match_oracle_exhaustively() {
        // Dense little database with repeated symbols and ties.
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("A", 5, 9);
        b.sequence()
            .interval("A", 0, 9)
            .interval("B", 1, 3)
            .interval("A", 1, 3);
        b.sequence().interval("B", 0, 2).interval("A", 2, 4);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(1));
        assert!(!result.is_empty());
        let mut seen = HashSet::new();
        for (p, sup) in &result {
            assert!(seen.insert(p.clone()), "duplicate pattern {p:?}");
            assert_eq!(
                matcher::support(&db, p),
                *sup,
                "support mismatch for {}",
                p.display(db.symbols())
            );
        }
    }

    #[test]
    fn pruning_configs_agree() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("C", 5, 7);
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("A", 3, 9);
        b.sequence().interval("C", 0, 2).interval("B", 1, 5);
        b.sequence().interval("A", 0, 2).interval("B", 0, 2);
        let db = b.build();
        for min_sup in 1..=3 {
            let with = mine(
                &db,
                MinerConfig::with_min_support(min_sup).pruning(crate::PruningConfig::all()),
            );
            let without = mine(
                &db,
                MinerConfig::with_min_support(min_sup).pruning(crate::PruningConfig::none()),
            );
            assert_eq!(with, without, "min_sup={min_sup}");
        }
    }

    #[test]
    fn repeated_symbol_crossing_is_mined() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 2).interval("A", 1, 3);
        b.sequence().interval("A", 5, 8).interval("A", 6, 9);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let crossing = pat("A+#0 | A+#1 | A-#0 | A-#1", &mut t);
        let found: Vec<&TemporalPattern> = result.iter().map(|(p, _)| p).collect();
        assert!(found.contains(&&crossing), "found: {found:?}");
    }

    #[test]
    fn max_arity_limits_pattern_size() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 2)
            .interval("B", 3, 5)
            .interval("C", 6, 8);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(1).max_arity(2));
        assert!(result.iter().all(|(p, _)| p.arity() <= 2));
        assert!(result.iter().any(|(p, _)| p.arity() == 2));
    }

    #[test]
    fn simultaneous_starts_are_one_canonical_pattern() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 0, 5);
        b.sequence().interval("A", 2, 9).interval("B", 2, 9);
        let db = b.build();
        let result = mine(&db, MinerConfig::with_min_support(2));
        let mut t = db.symbols().clone();
        let equals = pat("A+ B+ | A- B-", &mut t);
        let two: Vec<&TemporalPattern> = result
            .iter()
            .filter(|(p, _)| p.arity() == 2)
            .map(|(p, _)| p)
            .collect();
        assert_eq!(two, vec![&equals]);
    }

    #[test]
    fn empty_database_mines_nothing() {
        let db = IntervalDatabase::new();
        assert!(mine(&db, MinerConfig::with_min_support(1)).is_empty());
    }

    #[test]
    fn window_constraint_limits_supports() {
        let mut b = DatabaseBuilder::new();
        // "A before B" tight in one sequence, wide in the other.
        b.sequence().interval("A", 0, 2).interval("B", 4, 6);
        b.sequence().interval("A", 0, 2).interval("B", 50, 60);
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);

        let unconstrained = mine(&db, MinerConfig::with_min_support(1));
        assert!(unconstrained.iter().any(|(p, s)| p == &before && *s == 2));

        let windowed = mine(&db, MinerConfig::with_min_support(1).max_window(10));
        let found = windowed.iter().find(|(p, _)| p == &before);
        assert_eq!(
            found.map(|(_, s)| *s),
            Some(1),
            "only the tight embedding fits"
        );
        // Window-constrained supports agree with the oracle for every
        // emitted pattern.
        for (p, s) in &windowed {
            assert_eq!(
                matcher::support_within_window(&db, p, Some(10)),
                *s,
                "window support mismatch for {}",
                p.display(db.symbols())
            );
        }
    }

    #[test]
    fn gap_constraint_limits_jumps() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 2).interval("B", 4, 6); // gap 2
        b.sequence().interval("A", 0, 2).interval("B", 40, 44); // gap 38
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);

        let gapped = mine(&db, MinerConfig::with_min_support(1).max_gap(2));
        let found = gapped.iter().find(|(p, _)| p == &before);
        assert_eq!(found.map(|(_, s)| *s), Some(1));
        for (p, s) in &gapped {
            assert_eq!(
                matcher::support_constrained(
                    &db,
                    p,
                    interval_core::matcher::MatchConstraints::gap(2)
                ),
                *s,
                "gap support mismatch for {}",
                p.display(db.symbols())
            );
        }
    }

    #[test]
    fn gap_bridging_pattern_is_found() {
        // A..B..C chains within gap 2, while A..C alone jumps 4: the miner
        // must still reach the bridged 3-pattern (prefix growth keeps all
        // its consecutive jumps small).
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 2)
            .interval("B", 3, 5)
            .interval("C", 6, 8);
        let db = b.build();
        let mut t = db.symbols().clone();
        let ac = pat("A+ | A- | C+ | C-", &mut t);
        let abc = pat("A+ | A- | B+ | B- | C+ | C-", &mut t);
        let gapped = mine(&db, MinerConfig::with_min_support(1).max_gap(2));
        assert!(!gapped.iter().any(|(p, _)| p == &ac));
        assert!(gapped.iter().any(|(p, _)| p == &abc), "got: {gapped:?}");
    }

    #[test]
    fn window_excludes_long_singletons() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 100);
        b.sequence().interval("A", 0, 3);
        let db = b.build();
        let windowed = mine(&db, MinerConfig::with_min_support(2).max_window(5));
        assert!(
            windowed.is_empty(),
            "the 100-tick A cannot fit a 5-tick window"
        );
        let loose = mine(&db, MinerConfig::with_min_support(2).max_window(100));
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn ext_codes_round_trip() {
        let exts = [
            Ext::MeetFinish(0),
            Ext::AfterFinish(0),
            Ext::MeetFinish(200),
            Ext::AfterFinish(255),
            Ext::MeetStart(SymbolId(0)),
            Ext::AfterStart(SymbolId(0)),
            Ext::MeetStart(SymbolId(97)),
            Ext::AfterStart(SymbolId(4096)),
        ];
        for ext in exts {
            let code = match ext {
                Ext::MeetFinish(k) => 2 * k as usize,
                Ext::AfterFinish(k) => 2 * k as usize + 1,
                Ext::MeetStart(s) => FINISH_CODES + 2 * s.0 as usize,
                Ext::AfterStart(s) => FINISH_CODES + 2 * s.0 as usize + 1,
            };
            assert_eq!(decode_ext(code), ext);
        }
    }

    #[test]
    fn arena_stats_are_populated() {
        let mut b = DatabaseBuilder::new();
        for _ in 0..4 {
            b.sequence()
                .interval("A", 0, 4)
                .interval("B", 2, 6)
                .interval("C", 5, 9);
        }
        let db = b.build();
        let index = DbIndex::build(&db);
        let (patterns, stats, _) =
            SearchEngine::new(&index, MinerConfig::with_min_support(4)).run();
        assert!(!patterns.is_empty());
        assert!(stats.arena_peak_bytes > 0, "arena ledger never charged");
        assert!(
            stats.scratch_reuse_hits > 0,
            "frontier pool never produced a clean reuse"
        );
    }

    #[test]
    fn try_grow_root_rolls_back_poisoned_roots_only() {
        let mut b = DatabaseBuilder::new();
        for _ in 0..3 {
            b.sequence().interval("A", 0, 4).interval("B", 6, 9);
        }
        let db = b.build();
        let index = DbIndex::build(&db);
        let a = db.symbols().lookup("A").unwrap();
        let b_sym = db.symbols().lookup("B").unwrap();

        let mut engine =
            SearchEngine::new(&index, MinerConfig::with_min_support(3)).poison_root(a, 1);
        assert!(engine.try_grow_root(b_sym), "healthy root must succeed");
        assert!(
            !engine.try_grow_root(a),
            "poisoned root must report failure"
        );
        let (emitted, _, termination) = engine.finish(Instant::now());
        assert_eq!(termination, Termination::Complete);
        // Everything B-rooted survives; nothing A-rooted leaked out of the
        // rolled-back subtree.
        assert!(!emitted.is_empty());
        let t = db.symbols();
        assert!(emitted
            .iter()
            .all(|(p, _)| !p.display(t).to_string().contains('A')));
    }
}
