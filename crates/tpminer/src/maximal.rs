//! Maximal temporal patterns.
//!
//! A frequent pattern is **maximal** when no proper super-pattern is
//! frequent at all. The maximal set is the most aggressive of the standard
//! condensed representations: smaller than the closed set, but *lossy* —
//! sub-pattern supports cannot be reconstructed, only the shape of the
//! frequent border.
//!
//! **Completeness requirement.** Like the closed filter, this post-filter
//! is only meaningful over the *full* frequent set: a budget-truncated
//! [`MiningResult`](crate::MiningResult) (termination other than
//! `Complete`) may be missing the frequent super-pattern that would subsume
//! a candidate, so maximality computed from it can over-report.

use crate::miner::FrequentPattern;

/// Filters a complete frequent-pattern set down to its maximal patterns.
///
/// `patterns` must be the *full* frequent set at one threshold (e.g. a
/// [`TpMiner`](crate::TpMiner) result); a proper frequent super-pattern, if
/// any, is then guaranteed to be in the set.
///
/// ```
/// use interval_core::DatabaseBuilder;
/// use tpminer::{maximal_patterns, MinerConfig, TpMiner};
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("A", 0, 5).interval("B", 3, 8);
/// b.sequence().interval("A", 2, 7).interval("B", 5, 9);
/// let db = b.build();
/// let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
/// let maximal = maximal_patterns(result.patterns());
/// // only "A overlaps B" is maximal; A and B alone are subsumed
/// assert_eq!(maximal.len(), 1);
/// assert_eq!(maximal[0].pattern.arity(), 2);
/// ```
pub fn maximal_patterns(patterns: &[FrequentPattern]) -> Vec<FrequentPattern> {
    let mut maximal: Vec<FrequentPattern> = Vec::new();
    for p in patterns {
        let subsumed = patterns.iter().any(|q| {
            q.pattern.arity() > p.pattern.arity() && p.pattern.is_subpattern_of(&q.pattern)
        });
        if !subsumed {
            maximal.push(p.clone());
        }
    }
    maximal.sort_unstable();
    maximal
}

/// Whether `candidate` is maximal with respect to the complete frequent set
/// `all`.
pub fn is_maximal_in(candidate: &FrequentPattern, all: &[FrequentPattern]) -> bool {
    !all.iter().any(|q| {
        q.pattern.arity() > candidate.pattern.arity()
            && candidate.pattern.is_subpattern_of(&q.pattern)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{closed_patterns, MinerConfig, TpMiner};
    use interval_core::DatabaseBuilder;

    fn db() -> interval_core::IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5)
            .interval("B", 3, 8)
            .interval("C", 10, 12);
        b.sequence().interval("A", 2, 7).interval("B", 5, 9);
        b.sequence().interval("C", 0, 2);
        b.build()
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db());
        let closed = closed_patterns(result.patterns());
        let maximal = maximal_patterns(result.patterns());
        assert!(!maximal.is_empty());
        assert!(maximal.len() <= closed.len());
        for m in &maximal {
            assert!(closed.contains(m), "maximal pattern not closed");
        }
    }

    #[test]
    fn every_frequent_pattern_has_a_maximal_cover() {
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db());
        let maximal = maximal_patterns(result.patterns());
        for p in result.patterns() {
            assert!(
                maximal
                    .iter()
                    .any(|m| p.pattern.is_subpattern_of(&m.pattern)),
                "no maximal cover for a frequent pattern"
            );
        }
    }

    #[test]
    fn maximal_patterns_have_no_frequent_extension() {
        let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db());
        let maximal = maximal_patterns(result.patterns());
        for m in &maximal {
            for q in result.patterns() {
                if q.pattern.arity() > m.pattern.arity() {
                    assert!(!m.pattern.is_subpattern_of(&q.pattern));
                }
            }
            assert!(is_maximal_in(m, result.patterns()));
        }
    }
}
