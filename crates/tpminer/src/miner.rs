//! Public mining API: [`TpMiner`] and [`MiningResult`].

use crate::config::MinerConfig;
use crate::index::DbIndex;
use crate::search::SearchEngine;
use crate::stats::MinerStats;
use interval_core::budget::{MiningBudget, Termination};
use interval_core::{IntervalDatabase, SymbolTable, TemporalPattern};
use serde::{Deserialize, Serialize};

/// A frequent temporal pattern together with its absolute support.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrequentPattern {
    /// The pattern, in canonical form.
    pub pattern: TemporalPattern,
    /// Number of database sequences containing the pattern.
    pub support: usize,
}

/// The outcome of a mining run: patterns, work counters and the
/// [`Termination`] status.
///
/// When the status is not [`Termination::Complete`] the result is a *sound
/// partial result*: every reported pattern's support is exact, but frequent
/// patterns whose search-tree nodes were never reached may be missing. See
/// [`interval_core::budget`] for the invariant and its tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiningResult {
    patterns: Vec<FrequentPattern>,
    stats: MinerStats,
    #[serde(default)]
    termination: Termination,
}

impl MiningResult {
    pub(crate) fn new(pairs: Vec<(TemporalPattern, usize)>, stats: MinerStats) -> Self {
        Self::with_termination(pairs, stats, Termination::Complete)
    }

    /// Assembles a result from raw `(pattern, support)` pairs, sorting them
    /// into the canonical `(arity, pattern)` order.
    ///
    /// Intended for drivers that merge partition results mined separately —
    /// e.g. an incremental miner combining re-mined dirty partitions with
    /// carried-over clean ones. The caller is responsible for the pairs
    /// being exact supports under a single coherent database snapshot.
    pub fn from_parts(
        mut pairs: Vec<(TemporalPattern, usize)>,
        stats: MinerStats,
        termination: Termination,
    ) -> Self {
        pairs.sort_unstable_by(|a, b| (a.0.arity(), &a.0).cmp(&(b.0.arity(), &b.0)));
        Self::with_termination(pairs, stats, termination)
    }

    pub(crate) fn with_termination(
        pairs: Vec<(TemporalPattern, usize)>,
        stats: MinerStats,
        termination: Termination,
    ) -> Self {
        let patterns = pairs
            .into_iter()
            .map(|(pattern, support)| FrequentPattern { pattern, support })
            .collect();
        Self {
            patterns,
            stats,
            termination,
        }
    }

    /// Why the run stopped: [`Termination::Complete`] for an exhaustive
    /// search, any other status for a sound partial result.
    pub fn termination(&self) -> &Termination {
        &self.termination
    }

    /// Whether the search space was exhausted (no budget or cancellation
    /// truncated the run, no worker was lost).
    pub fn is_exhaustive(&self) -> bool {
        self.termination.is_complete()
    }

    /// The frequent patterns, in canonical (arity, pattern) order. Supports
    /// are exact regardless of [`termination`](MiningResult::termination);
    /// only completeness depends on it.
    pub fn patterns(&self) -> &[FrequentPattern] {
        &self.patterns
    }

    /// Consumes the result, yielding the patterns.
    pub fn into_patterns(self) -> Vec<FrequentPattern> {
        self.patterns
    }

    /// Work counters of the run.
    pub fn stats(&self) -> &MinerStats {
        &self.stats
    }

    /// Number of frequent patterns found.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no pattern reached the support threshold.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Patterns of a given arity.
    pub fn of_arity(&self, arity: usize) -> impl Iterator<Item = &FrequentPattern> {
        self.patterns
            .iter()
            .filter(move |p| p.pattern.arity() == arity)
    }

    /// Histogram of pattern counts by arity; index `k` counts `k`-interval
    /// patterns (index 0 is always 0).
    pub fn arity_histogram(&self) -> Vec<usize> {
        let max = self
            .patterns
            .iter()
            .map(|p| p.pattern.arity())
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for p in &self.patterns {
            hist[p.pattern.arity()] += 1;
        }
        hist
    }

    /// Patterns that use `symbol` in at least one slot.
    pub fn containing_symbol(
        &self,
        symbol: interval_core::SymbolId,
    ) -> impl Iterator<Item = &FrequentPattern> {
        self.patterns
            .iter()
            .filter(move |p| p.pattern.symbols().binary_search(&symbol).is_ok())
    }

    /// Patterns with support at least `min_support` (the result of a lower
    /// threshold run can thus answer any higher threshold without re-mining).
    pub fn with_min_support(&self, min_support: usize) -> impl Iterator<Item = &FrequentPattern> {
        self.patterns
            .iter()
            .filter(move |p| p.support >= min_support)
    }

    /// Frequent proper super-patterns of `pattern` in this result.
    pub fn super_patterns_of<'a>(
        &'a self,
        pattern: &'a TemporalPattern,
    ) -> impl Iterator<Item = &'a FrequentPattern> {
        self.patterns.iter().filter(move |p| {
            p.pattern.arity() > pattern.arity() && pattern.is_subpattern_of(&p.pattern)
        })
    }

    /// Frequent proper sub-patterns of `pattern` in this result.
    pub fn sub_patterns_of<'a>(
        &'a self,
        pattern: &'a TemporalPattern,
    ) -> impl Iterator<Item = &'a FrequentPattern> {
        self.patterns.iter().filter(move |p| {
            p.pattern.arity() < pattern.arity() && p.pattern.is_subpattern_of(pattern)
        })
    }

    /// The recorded support of an exact pattern, if frequent.
    pub fn support_of(&self, pattern: &TemporalPattern) -> Option<usize> {
        self.patterns
            .iter()
            .find(|p| &p.pattern == pattern)
            .map(|p| p.support)
    }

    /// Renders every pattern with its support, one per line — convenient for
    /// examples and debugging output.
    pub fn render(&self, symbols: &SymbolTable) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for p in &self.patterns {
            let _ = writeln!(
                out,
                "{}  (support {})",
                p.pattern.display(symbols),
                p.support
            );
        }
        out
    }
}

/// The deterministic temporal-pattern miner (the paper's TPMiner).
///
/// ```
/// use tpminer::{MinerConfig, TpMiner};
/// use interval_core::DatabaseBuilder;
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("A", 0, 5).interval("B", 3, 8);
/// b.sequence().interval("A", 2, 7).interval("B", 5, 9);
/// let db = b.build();
///
/// let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
/// // A, B, and "A overlaps B" are all frequent:
/// assert_eq!(result.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TpMiner {
    config: MinerConfig,
    budget: MiningBudget,
}

impl TpMiner {
    /// Creates a miner with the given configuration and an unlimited
    /// budget.
    pub fn new(config: MinerConfig) -> Self {
        Self {
            config,
            budget: MiningBudget::unlimited(),
        }
    }

    /// Attaches a resource budget (deadline, node/candidate caps,
    /// cancellation token). A tripped budget makes
    /// [`MiningResult::termination`] report why the run was truncated; the
    /// partial result stays sound.
    pub fn with_budget(mut self, budget: MiningBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The attached budget.
    pub fn budget(&self) -> &MiningBudget {
        &self.budget
    }

    /// Mines all frequent temporal patterns of `db`.
    pub fn mine(&self, db: &IntervalDatabase) -> MiningResult {
        let index = DbIndex::build(db);
        self.mine_indexed(&index)
    }

    /// Mines over a prebuilt index (lets callers reuse the index across
    /// several runs, e.g. for a support sweep).
    pub fn mine_indexed(&self, index: &DbIndex) -> MiningResult {
        let engine = SearchEngine::new(index, self.config).with_budget(self.budget.clone());
        let (pairs, stats, termination) = engine.run();
        MiningResult::with_termination(pairs, stats, termination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::{matcher, DatabaseBuilder};

    fn demo_db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        b.sequence().interval("A", 2, 7).interval("B", 5, 9);
        b.sequence().interval("B", 0, 4);
        b.build()
    }

    #[test]
    fn mine_reports_supports_matching_oracle() {
        let db = demo_db();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        for fp in result.patterns() {
            assert_eq!(matcher::support(&db, &fp.pattern), fp.support);
        }
    }

    #[test]
    fn arity_histogram_counts() {
        let db = demo_db();
        let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
        let hist = result.arity_histogram();
        assert_eq!(hist[1], 2); // A and B
        assert_eq!(hist[2], 1); // A overlaps B
        assert_eq!(result.of_arity(2).count(), 1);
    }

    #[test]
    fn render_contains_pattern_text() {
        let db = demo_db();
        let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
        let text = result.render(db.symbols());
        assert!(text.contains("A+ | B+ | A- | B-"));
        assert!(text.contains("support 2"));
    }

    #[test]
    fn mine_indexed_reuses_index() {
        let db = demo_db();
        let index = DbIndex::build(&db);
        let r1 = TpMiner::new(MinerConfig::with_min_support(1)).mine_indexed(&index);
        let r2 = TpMiner::new(MinerConfig::with_min_support(3)).mine_indexed(&index);
        assert_eq!(r1.len(), 3); // A, B, A-overlaps-B
        assert_eq!(r2.len(), 1); // only B appears in all three sequences
    }

    #[test]
    fn query_api_filters_correctly() {
        let db = demo_db();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let a = db.symbols().lookup("A").unwrap();
        let b = db.symbols().lookup("B").unwrap();

        // containing_symbol
        let with_a: Vec<_> = result.containing_symbol(a).collect();
        assert_eq!(with_a.len(), 2); // A and A-overlaps-B
        assert!(with_a.iter().all(|p| p.pattern.symbols().contains(&a)));

        // with_min_support answers a higher threshold without re-mining
        let strict: Vec<_> = result.with_min_support(3).collect();
        let remined = TpMiner::new(MinerConfig::with_min_support(3)).mine(&db);
        assert_eq!(strict.len(), remined.len());

        // super/sub pattern navigation
        let a_pattern = interval_core::TemporalPattern::singleton(a);
        let supers: Vec<_> = result.super_patterns_of(&a_pattern).collect();
        assert_eq!(supers.len(), 1);
        assert_eq!(supers[0].pattern.arity(), 2);
        let overlap = supers[0].pattern.clone();
        let subs: Vec<_> = result.sub_patterns_of(&overlap).collect();
        assert_eq!(subs.len(), 2); // A and B

        // support_of
        assert_eq!(result.support_of(&a_pattern), Some(2));
        assert_eq!(
            result.support_of(&interval_core::TemporalPattern::singleton(b)),
            Some(3)
        );
        assert_eq!(
            result.support_of(&interval_core::TemporalPattern::singleton(
                interval_core::SymbolId(99)
            )),
            None
        );
    }

    #[test]
    fn budgeted_mine_truncates_soundly() {
        use interval_core::budget::{MiningBudget, Termination};
        let db = demo_db();
        let full = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        assert!(full.is_exhaustive());
        assert_eq!(full.termination(), &Termination::Complete);

        let budget = MiningBudget::unlimited().with_max_nodes(1);
        let partial = TpMiner::new(MinerConfig::with_min_support(1))
            .with_budget(budget)
            .mine(&db);
        assert_eq!(partial.termination(), &Termination::NodeBudgetExceeded);
        assert!(!partial.is_exhaustive());
        assert!(partial.len() < full.len());
        assert!(partial.stats().nodes_explored <= 1);
        // Sound partial result: whatever was emitted has its exact support.
        for fp in partial.patterns() {
            assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
        }
    }

    #[test]
    fn cancelled_token_stops_the_mine() {
        use interval_core::budget::{MiningBudget, Termination};
        let db = demo_db();
        let budget = MiningBudget::unlimited();
        budget.token().cancel();
        let result = TpMiner::new(MinerConfig::with_min_support(1))
            .with_budget(budget)
            .mine(&db);
        assert_eq!(result.termination(), &Termination::Cancelled);
        assert!(result.is_empty());
        assert_eq!(result.stats().nodes_explored, 0);
    }

    #[test]
    fn stats_are_populated() {
        let db = demo_db();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        assert!(result.stats().nodes_explored > 0);
        assert_eq!(result.stats().patterns_emitted as usize, result.len());
        assert_eq!(result.stats().frontier_cap_hits, 0);
    }
}
