//! Parallel mining driver.
//!
//! The level-1 subtrees of the pattern-growth search (one per frequent root
//! symbol) are independent, so the search parallelizes by partitioning root
//! symbols across worker threads. Each worker runs a private
//! [`SearchEngine`] over the shared, read-only
//! [`DbIndex`]; results and counters are merged at the end. Output is
//! identical to the sequential miner (tested).

use crate::config::MinerConfig;
use crate::index::DbIndex;
use crate::miner::MiningResult;
use crate::search::SearchEngine;
use crate::stats::MinerStats;
use interval_core::{IntervalDatabase, SymbolId, TemporalPattern};

/// Multi-threaded variant of [`TpMiner`](crate::TpMiner).
#[derive(Debug, Clone)]
pub struct ParallelTpMiner {
    config: MinerConfig,
    threads: usize,
}

impl ParallelTpMiner {
    /// Creates a parallel miner using `threads` workers (values of 0 use the
    /// machine's available parallelism).
    pub fn new(config: MinerConfig, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        Self { config, threads }
    }

    /// Mines all frequent temporal patterns of `db` using the worker pool.
    pub fn mine(&self, db: &IntervalDatabase) -> MiningResult {
        let index = DbIndex::build(db);
        self.mine_indexed(&index)
    }

    /// Mines over a prebuilt index.
    pub fn mine_indexed(&self, index: &DbIndex) -> MiningResult {
        let roots = SearchEngine::new(index, self.config).root_symbols();
        if roots.is_empty() {
            return MiningResult::new(Vec::new(), MinerStats::default());
        }
        let workers = self.threads.min(roots.len()).max(1);

        // Round-robin assignment spreads heavy symbols across workers.
        let chunks: Vec<Vec<SymbolId>> = (0..workers)
            .map(|w| roots.iter().copied().skip(w).step_by(workers).collect())
            .collect();

        let mut all: Vec<(TemporalPattern, usize)> = Vec::new();
        let mut stats = MinerStats::default();
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let config = self.config;
                    scope.spawn(move |_| SearchEngine::new(index, config).run_roots(chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope panicked");

        for (pairs, worker_stats) in results {
            all.extend(pairs);
            stats.merge(&worker_stats);
        }
        all.sort_unstable_by(|a, b| (a.0.arity(), &a.0).cmp(&(b.0.arity(), &b.0)));
        MiningResult::new(all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TpMiner;
    use interval_core::DatabaseBuilder;

    fn demo_db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        for i in 0..8i64 {
            b.sequence()
                .interval("A", i, i + 5)
                .interval("B", i + 3, i + 8)
                .interval("C", i + 6, i + 10)
                .interval("A", i + 7, i + 12);
        }
        b.sequence().interval("D", 0, 1);
        b.build()
    }

    #[test]
    fn parallel_output_matches_sequential() {
        let db = demo_db();
        for threads in [1, 2, 4] {
            for min_sup in [1, 4, 8] {
                let config = MinerConfig::with_min_support(min_sup);
                let seq = TpMiner::new(config).mine(&db);
                let par = ParallelTpMiner::new(config, threads).mine(&db);
                assert_eq!(
                    seq.patterns(),
                    par.patterns(),
                    "threads={threads} min_sup={min_sup}"
                );
            }
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let miner = ParallelTpMiner::new(MinerConfig::with_min_support(1), 0);
        assert!(miner.threads >= 1);
        let db = demo_db();
        assert!(!miner.mine(&db).is_empty());
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let db = IntervalDatabase::new();
        let result = ParallelTpMiner::new(MinerConfig::with_min_support(1), 4).mine(&db);
        assert!(result.is_empty());
    }
}
