//! Parallel mining driver.
//!
//! The level-1 subtrees of the pattern-growth search (one per frequent root
//! symbol) are independent, so the search parallelizes by partitioning root
//! symbols across worker threads. Each worker runs a private
//! [`SearchEngine`] over the shared, read-only
//! [`DbIndex`]; results and counters are merged at the end. Output is
//! identical to the sequential miner (tested).
//!
//! # Fault isolation
//!
//! A panicking worker does **not** abort the process or discard the run:
//! its panic is contained at the join, only its root-symbol partition is
//! lost, and the merged result reports
//! [`Termination::WorkerFailed`] naming the lost roots. Surviving workers'
//! patterns are merged as usual, with exact supports.
//!
//! # Budgets
//!
//! A [`MiningBudget`] attached via [`ParallelTpMiner::with_budget`] is
//! shared by every worker: the node/candidate caps bound the *total* work
//! across workers and cancelling the token stops all of them.

use crate::config::MinerConfig;
use crate::index::DbIndex;
use crate::miner::MiningResult;
use crate::search::SearchEngine;
use crate::stats::MinerStats;
use interval_core::budget::{MiningBudget, Termination};
use interval_core::{IntervalDatabase, SymbolId, TemporalPattern};

/// Multi-threaded variant of [`TpMiner`](crate::TpMiner).
#[derive(Debug, Clone)]
pub struct ParallelTpMiner {
    config: MinerConfig,
    threads: usize,
    budget: MiningBudget,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<(SymbolId, u64)>,
}

/// Splits `roots` round-robin across at most `threads` workers, clamping
/// the worker count to the number of roots so tiny databases never spawn
/// idle workers. Round-robin assignment spreads heavy (low-id, usually
/// frequent-first) symbols across workers.
fn partition_roots(roots: &[SymbolId], threads: usize) -> Vec<Vec<SymbolId>> {
    let workers = threads.min(roots.len()).max(1);
    (0..workers)
        .map(|w| roots.iter().copied().skip(w).step_by(workers).collect())
        .collect()
}

impl ParallelTpMiner {
    /// Creates a parallel miner using `threads` workers (values of 0 use
    /// the machine's available parallelism). The worker count is further
    /// clamped to the number of frequent root symbols at mining time.
    pub fn new(config: MinerConfig, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        Self {
            config,
            threads,
            budget: MiningBudget::unlimited(),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    /// Attaches a resource budget, shared across all workers.
    pub fn with_budget(mut self, budget: MiningBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured worker-pool size (before the per-run clamp to the
    /// number of root partitions).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Arms deterministic fault injection in whichever worker owns `root`:
    /// that worker panics at the `after_nodes`-th expansion inside the
    /// poisoned subtree. Test-only (also available behind the
    /// `fault-injection` feature).
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn poison_root(mut self, root: SymbolId, after_nodes: u64) -> Self {
        self.fault = Some((root, after_nodes));
        self
    }

    /// Mines all frequent temporal patterns of `db` using the worker pool.
    pub fn mine(&self, db: &IntervalDatabase) -> MiningResult {
        let index = DbIndex::build(db);
        self.mine_indexed(&index)
    }

    /// Mines over a prebuilt index.
    pub fn mine_indexed(&self, index: &DbIndex) -> MiningResult {
        let roots = SearchEngine::new(index, self.config).root_symbols();
        self.mine_partitions(index, &roots)
    }

    /// Mines only the level-1 subtrees rooted at `roots`, using the worker
    /// pool. The result contains exactly the frequent patterns whose first
    /// endpoint set starts with one of the given roots, with exact supports.
    ///
    /// This is the incremental-mining hook: a driver that knows which root
    /// partitions are *dirty* since its last snapshot re-mines just those
    /// and merges the clean partitions from the previous result. Roots not
    /// frequent under the current index are mined to an empty partition, so
    /// passing stale roots is safe.
    pub fn mine_partitions(&self, index: &DbIndex, roots: &[SymbolId]) -> MiningResult {
        if roots.is_empty() {
            return MiningResult::new(Vec::new(), MinerStats::default());
        }
        let chunks = partition_roots(roots, self.threads);

        // Join every worker individually: a panicked worker yields `Err`
        // here instead of propagating out of the scope, so one poisoned
        // partition cannot take down the process or the run.
        let outcomes = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let config = self.config;
                    let budget = self.budget.clone();
                    #[cfg(any(test, feature = "fault-injection"))]
                    let fault = self.fault;
                    scope.spawn(move |_| {
                        let engine = SearchEngine::new(index, config).with_budget(budget);
                        #[cfg(any(test, feature = "fault-injection"))]
                        let engine = match fault {
                            Some((root, after_nodes)) => engine.poison_root(root, after_nodes),
                            None => engine,
                        };
                        engine.run_roots(chunk)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        })
        .expect("worker panics are contained at join");

        let mut all: Vec<(TemporalPattern, usize)> = Vec::new();
        let mut stats = MinerStats::default();
        let mut termination = Termination::Complete;
        let mut failed_roots: Vec<SymbolId> = Vec::new();
        for (outcome, chunk) in outcomes.into_iter().zip(&chunks) {
            match outcome {
                Ok((pairs, worker_stats, worker_termination)) => {
                    all.extend(pairs);
                    stats.merge(&worker_stats);
                    termination = termination.merge(worker_termination);
                }
                Err(_panic) => failed_roots.extend(chunk.iter().copied()),
            }
        }
        if !failed_roots.is_empty() {
            failed_roots.sort_unstable();
            termination = termination.merge(Termination::WorkerFailed {
                roots: failed_roots,
            });
        }
        all.sort_unstable_by(|a, b| (a.0.arity(), &a.0).cmp(&(b.0.arity(), &b.0)));
        MiningResult::with_termination(all, stats, termination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TpMiner;
    use interval_core::DatabaseBuilder;

    fn demo_db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        for i in 0..8i64 {
            b.sequence()
                .interval("A", i, i + 5)
                .interval("B", i + 3, i + 8)
                .interval("C", i + 6, i + 10)
                .interval("A", i + 7, i + 12);
        }
        b.sequence().interval("D", 0, 1);
        b.build()
    }

    #[test]
    fn parallel_output_matches_sequential() {
        let db = demo_db();
        for threads in [1, 2, 4] {
            for min_sup in [1, 4, 8] {
                let config = MinerConfig::with_min_support(min_sup);
                let seq = TpMiner::new(config).mine(&db);
                let par = ParallelTpMiner::new(config, threads).mine(&db);
                assert_eq!(
                    seq.patterns(),
                    par.patterns(),
                    "threads={threads} min_sup={min_sup}"
                );
                assert!(par.is_exhaustive());
            }
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let miner = ParallelTpMiner::new(MinerConfig::with_min_support(1), 0);
        assert!(miner.threads() >= 1);
        let db = demo_db();
        assert!(!miner.mine(&db).is_empty());
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let db = IntervalDatabase::new();
        let result = ParallelTpMiner::new(MinerConfig::with_min_support(1), 4).mine(&db);
        assert!(result.is_empty());
        assert!(result.is_exhaustive());
    }

    #[test]
    fn partitioning_clamps_workers_and_covers_all_roots() {
        let roots: Vec<SymbolId> = (0..3).map(SymbolId).collect();
        // More threads than roots: one chunk per root, no idle workers.
        let chunks = partition_roots(&roots, 8);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 1));
        // Fewer threads than roots: round-robin, every root exactly once.
        let roots: Vec<SymbolId> = (0..7).map(SymbolId).collect();
        let chunks = partition_roots(&roots, 2);
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| !c.is_empty()));
        let mut seen: Vec<SymbolId> = chunks.concat();
        seen.sort_unstable();
        assert_eq!(seen, roots);
    }

    #[test]
    fn shared_budget_truncates_the_parallel_mine() {
        let db = demo_db();
        let config = MinerConfig::with_min_support(1);
        let full = TpMiner::new(config).mine(&db);
        let budget = MiningBudget::unlimited().with_max_nodes(2);
        let par = ParallelTpMiner::new(config, 4)
            .with_budget(budget)
            .mine(&db);
        assert_eq!(par.termination(), &Termination::NodeBudgetExceeded);
        // The cap bounds the *sum* of nodes across workers.
        assert!(par.stats().nodes_explored <= 2);
        for fp in par.patterns() {
            assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
        }
    }

    #[test]
    fn poisoned_root_loses_only_its_partition() {
        let db = demo_db();
        let config = MinerConfig::with_min_support(1);
        let full = TpMiner::new(config).mine(&db);
        let a = db.symbols().lookup("A").expect("A is interned");

        // One worker per root: exactly the A partition is poisoned.
        let par = ParallelTpMiner::new(config, 64).poison_root(a, 1).mine(&db);

        let failed = match par.termination() {
            Termination::WorkerFailed { roots } => roots.clone(),
            other => panic!("expected WorkerFailed, got {other:?}"),
        };
        assert_eq!(failed, vec![a]);

        // Every pattern of a surviving root is present with its exact
        // support; patterns rooted at A are the only ones missing.
        assert!(!par.is_empty());
        for fp in full.patterns() {
            let root = fp.pattern.groups()[0][0].symbol;
            if root == a {
                continue;
            }
            assert_eq!(
                par.support_of(&fp.pattern),
                Some(fp.support),
                "surviving pattern missing or support drifted"
            );
        }
        for fp in par.patterns() {
            assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
            assert_ne!(fp.pattern.groups()[0][0].symbol, a);
        }
    }

    #[test]
    fn poisoned_singleton_run_still_reports_other_workers() {
        // Even with fewer workers than roots, only the poisoned chunk is
        // lost and the run reports every root of that chunk.
        let db = demo_db();
        let config = MinerConfig::with_min_support(1);
        let d = db.symbols().lookup("D").expect("D is interned");
        let par = ParallelTpMiner::new(config, 2).poison_root(d, 1).mine(&db);
        match par.termination() {
            Termination::WorkerFailed { roots } => assert!(roots.contains(&d)),
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
        assert!(!par.is_empty(), "surviving partition must still report");
    }
}
