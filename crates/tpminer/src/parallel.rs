//! Parallel mining driver.
//!
//! The level-1 subtrees of the pattern-growth search (one per frequent root
//! symbol) are independent, so the search parallelizes across root symbols.
//! Roots are placed on a shared work queue ordered by estimated subtree
//! weight (total instance count, heaviest first) and each idle worker
//! claims the next unclaimed root via an atomic cursor — greedy list
//! scheduling. Unlike the static round-robin partition this replaces, a
//! worker that drew a light root comes back for more work instead of going
//! idle, so skewed root distributions no longer stack the heavy subtrees
//! onto one thread. Each worker runs a private [`SearchEngine`] over the
//! shared, read-only [`DbIndex`]; results and counters are merged at the
//! end. Output is identical to the sequential miner regardless of thread
//! count or claim interleaving (tested): patterns are globally unique
//! across root subtrees and the merged result is sorted canonically.
//!
//! # Fault isolation
//!
//! A panicking subtree does **not** abort the process or discard the run:
//! the owning worker catches the panic at the root boundary
//! ([`SearchEngine::try_grow_root`]), rolls back only that root's
//! partially-emitted patterns, and keeps claiming queue work. The merged
//! result reports [`Termination::WorkerFailed`] naming exactly the lost
//! roots; every other root's patterns are merged as usual, with exact
//! supports.
//!
//! # Budgets
//!
//! A [`MiningBudget`] attached via [`ParallelTpMiner::with_budget`] is
//! shared by every worker: the node/candidate caps bound the *total* work
//! across workers and cancelling the token stops all of them. A worker
//! whose engine trips the budget stops claiming roots.

use crate::config::MinerConfig;
use crate::index::DbIndex;
use crate::miner::MiningResult;
use crate::search::SearchEngine;
use crate::stats::MinerStats;
use interval_core::budget::{MiningBudget, Termination};
use interval_core::{IntervalDatabase, SymbolId, TemporalPattern};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Multi-threaded variant of [`TpMiner`](crate::TpMiner).
#[derive(Debug, Clone)]
pub struct ParallelTpMiner {
    config: MinerConfig,
    threads: usize,
    budget: MiningBudget,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<(SymbolId, u64)>,
}

/// Clamps the worker-pool size to the amount of queued work: at most one
/// worker per root (excess workers would only spin on an empty queue) and
/// at least one worker even for an empty queue, so the spawn loop and the
/// merge never see zero workers regardless of how the caller computed
/// `threads`.
fn worker_count(roots: usize, threads: usize) -> usize {
    threads.max(1).min(roots.max(1))
}

/// The shared-queue claim order: heaviest estimated subtree first, ties
/// broken by symbol id. The weight estimate is the root symbol's total
/// instance count across sequences ([`DbIndex::root_weight`]) — cheap,
/// already indexed, and monotone with level-1 frontier size. Heaviest-first
/// greedy claiming is classic LPT list scheduling, which bounds the
/// makespan at 4/3 of optimal; the deterministic order also makes the
/// scheduler reproducible for a given index.
fn queue_order(index: &DbIndex, roots: &[SymbolId]) -> Vec<SymbolId> {
    let mut ordered = roots.to_vec();
    ordered.sort_unstable_by_key(|&s| (Reverse(index.root_weight(s)), s));
    ordered
}

/// Statically partitions `roots` into at most `shards` LPT shards: roots
/// are taken heaviest-first (the same [`queue_order`] the shared queue
/// uses) and each is assigned to the currently least-loaded shard. This is
/// the offline form of the greedy list scheduling the atomic-cursor queue
/// performs online, for drivers that must split the work *before*
/// dispatching it — e.g. a pool of long-lived refresh workers that each
/// mine their shard on their own thread and merge via [`merge_shards`]
/// ([`ParallelTpMiner::merge_shards`]).
///
/// Shards are deterministic for a given index and never empty: the shard
/// count is clamped to the number of roots, and an empty `roots` yields no
/// shards at all.
pub fn lpt_shards(index: &DbIndex, roots: &[SymbolId], shards: usize) -> Vec<Vec<SymbolId>> {
    if roots.is_empty() {
        return Vec::new();
    }
    let count = worker_count(roots.len(), shards);
    let mut bins: Vec<Vec<SymbolId>> = vec![Vec::new(); count];
    let mut loads: Vec<u64> = vec![0; count];
    for root in queue_order(index, roots) {
        // Least-loaded shard, ties broken by shard position so the
        // assignment is a pure function of the index and root set.
        let lightest = (0..count).min_by_key(|&i| (loads[i], i)).unwrap_or(0);
        loads[lightest] += index.root_weight(root).max(1);
        bins[lightest].push(root);
    }
    bins
}

/// The result of one shard's queue run: the patterns and counters of every
/// root the shard's engine finished, plus the roots whose subtrees
/// panicked and were rolled back at the root boundary.
///
/// Produced by [`ParallelTpMiner::mine_shard`]; any number of outcomes
/// covering disjoint root sets merge into one canonical [`MiningResult`]
/// via [`ParallelTpMiner::merge_shards`].
#[derive(Debug)]
pub struct ShardOutcome {
    pairs: Vec<(TemporalPattern, usize)>,
    stats: MinerStats,
    termination: Termination,
    failed: Vec<SymbolId>,
}

impl ShardOutcome {
    /// A degraded outcome recording that the whole shard was lost without
    /// producing patterns. Drivers substitute this when the thread running
    /// [`ParallelTpMiner::mine_shard`] died instead of returning — the
    /// engine never got to contain the failure, so every root of the shard
    /// is reported lost.
    pub fn failed(roots: Vec<SymbolId>) -> Self {
        Self {
            pairs: Vec::new(),
            stats: MinerStats::default(),
            termination: Termination::WorkerFailed { roots: Vec::new() },
            failed: roots,
        }
    }
}

impl ParallelTpMiner {
    /// Creates a parallel miner using `threads` workers (values of 0 use
    /// the machine's available parallelism). The worker count is further
    /// clamped to the number of frequent root symbols at mining time.
    pub fn new(config: MinerConfig, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        Self {
            config,
            threads,
            budget: MiningBudget::unlimited(),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    /// Attaches a resource budget, shared across all workers.
    pub fn with_budget(mut self, budget: MiningBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured worker-pool size (before the per-run clamp to the
    /// number of queued roots).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Arms deterministic fault injection in whichever worker claims
    /// `root`: that worker panics at the `after_nodes`-th expansion inside
    /// the poisoned subtree. Test-only (also available behind the
    /// `fault-injection` feature).
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn poison_root(mut self, root: SymbolId, after_nodes: u64) -> Self {
        self.fault = Some((root, after_nodes));
        self
    }

    /// Mines all frequent temporal patterns of `db` using the worker pool.
    pub fn mine(&self, db: &IntervalDatabase) -> MiningResult {
        let index = DbIndex::build(db);
        self.mine_indexed(&index)
    }

    /// Mines over a prebuilt index.
    pub fn mine_indexed(&self, index: &DbIndex) -> MiningResult {
        let roots = SearchEngine::new(index, self.config).root_symbols();
        self.mine_partitions(index, &roots)
    }

    /// Mines only the level-1 subtrees rooted at `roots`, using the worker
    /// pool. The result contains exactly the frequent patterns whose first
    /// endpoint set starts with one of the given roots, with exact supports.
    ///
    /// This is the incremental-mining hook: a driver that knows which root
    /// partitions are *dirty* since its last snapshot re-mines just those
    /// and merges the clean partitions from the previous result. Roots not
    /// frequent under the current index are mined to an empty partition, so
    /// passing stale roots is safe.
    pub fn mine_partitions(&self, index: &DbIndex, roots: &[SymbolId]) -> MiningResult {
        if roots.is_empty() {
            return MiningResult::new(Vec::new(), MinerStats::default());
        }
        let ordered = queue_order(index, roots);
        let workers = worker_count(ordered.len(), self.threads);
        let cursor = AtomicUsize::new(0);

        // Each worker owns one engine for its whole queue run (so frontier
        // scratch is recycled across every root it claims) and reports the
        // roots whose subtrees panicked; the engine contains each panic at
        // the root boundary, so a handle's join only fails if something
        // outside subtree expansion went wrong.
        let outcomes = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let ordered = &ordered;
                    let cursor = &cursor;
                    scope.spawn(move |_| {
                        self.queue_run(index, || {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            ordered.get(i).copied()
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        })
        // xlint::allow(no-panic-lib): crossbeam::scope errs only when a worker panicked; workers catch panics per root, so this is the contained-panic contract, not a new panic path
        .expect("worker panics are contained at the root boundary");

        // Belt and braces: subtree panics are caught per root inside the
        // engine, so a failed join should be unreachable. Degrade to a
        // lost-work report rather than unwinding the whole run.
        let outcomes = outcomes
            .into_iter()
            .map(|joined| joined.unwrap_or_else(|_panic| ShardOutcome::failed(Vec::new())))
            .collect();
        Self::merge_shards(outcomes)
    }

    /// Mines the level-1 subtrees rooted at `roots` on the **calling**
    /// thread, as one shard of a larger run. Unlike
    /// [`mine_partitions`](Self::mine_partitions) this spawns nothing — it
    /// is the per-worker half of an externally scheduled pool: split the
    /// dirty roots with [`lpt_shards`], run `mine_shard` on each shard
    /// wherever the pool lives, and combine with
    /// [`merge_shards`](Self::merge_shards). The merged result is
    /// bit-identical to one `mine_partitions` call over the union of the
    /// shards (per-root mining is deterministic and the merge sorts
    /// canonically).
    pub fn mine_shard(&self, index: &DbIndex, roots: &[SymbolId]) -> ShardOutcome {
        let ordered = queue_order(index, roots);
        let mut next = 0usize;
        self.queue_run(index, || {
            let i = next;
            next += 1;
            ordered.get(i).copied()
        })
    }

    /// One engine's run over a claim stream: claims roots until the queue
    /// is empty or the budget stops the engine, recycling frontier scratch
    /// across every claimed root and containing subtree panics at the root
    /// boundary.
    fn queue_run(
        &self,
        index: &DbIndex,
        mut claim: impl FnMut() -> Option<SymbolId>,
    ) -> ShardOutcome {
        // xlint::allow(no-unbudgeted-clock): one read per worker seeding its MinerStats::elapsed; budget checks use the shared meter
        let started = Instant::now();
        #[allow(unused_mut)]
        let mut engine = SearchEngine::new(index, self.config).with_budget(self.budget.clone());
        #[cfg(any(test, feature = "fault-injection"))]
        let mut engine = match self.fault {
            Some((root, after_nodes)) => engine.poison_root(root, after_nodes),
            None => engine,
        };
        let mut failed: Vec<SymbolId> = Vec::new();
        while !engine.stopped() {
            let Some(root) = claim() else {
                break;
            };
            if !engine.try_grow_root(root) {
                failed.push(root);
            }
        }
        let (pairs, stats, termination) = engine.finish(started);
        ShardOutcome {
            pairs,
            stats,
            termination,
            failed,
        }
    }

    /// Merges shard outcomes covering disjoint root sets into one
    /// canonical [`MiningResult`]: patterns are concatenated and sorted
    /// canonically, counters merge additively, terminations merge to the
    /// most abnormal, and every failed root across all shards is reported
    /// in a single [`Termination::WorkerFailed`]. The output is
    /// independent of shard count and shard assignment.
    pub fn merge_shards(outcomes: Vec<ShardOutcome>) -> MiningResult {
        let mut all: Vec<(TemporalPattern, usize)> = Vec::new();
        let mut stats = MinerStats::default();
        let mut termination = Termination::Complete;
        let mut failed_roots: Vec<SymbolId> = Vec::new();
        for outcome in outcomes {
            all.extend(outcome.pairs);
            stats.merge(&outcome.stats);
            termination = termination.merge(outcome.termination);
            failed_roots.extend(outcome.failed);
        }
        if !failed_roots.is_empty() {
            failed_roots.sort_unstable();
            termination = termination.merge(Termination::WorkerFailed {
                roots: failed_roots,
            });
        }
        // Canonical order. Patterns are globally unique across root
        // subtrees, so this sort makes the output independent of which
        // worker claimed which root.
        all.sort_unstable_by(|a, b| (a.0.arity(), &a.0).cmp(&(b.0.arity(), &b.0)));
        MiningResult::with_termination(all, stats, termination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TpMiner;
    use interval_core::DatabaseBuilder;

    fn demo_db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        for i in 0..8i64 {
            b.sequence()
                .interval("A", i, i + 5)
                .interval("B", i + 3, i + 8)
                .interval("C", i + 6, i + 10)
                .interval("A", i + 7, i + 12);
        }
        b.sequence().interval("D", 0, 1);
        b.build()
    }

    #[test]
    fn parallel_output_matches_sequential() {
        let db = demo_db();
        for threads in [1, 2, 8] {
            for min_sup in [1, 4, 8] {
                let config = MinerConfig::with_min_support(min_sup);
                let seq = TpMiner::new(config).mine(&db);
                let par = ParallelTpMiner::new(config, threads).mine(&db);
                assert_eq!(
                    seq.patterns(),
                    par.patterns(),
                    "threads={threads} min_sup={min_sup}"
                );
                assert!(par.is_exhaustive());
            }
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let miner = ParallelTpMiner::new(MinerConfig::with_min_support(1), 0);
        assert!(miner.threads() >= 1);
        let db = demo_db();
        assert!(!miner.mine(&db).is_empty());
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let db = IntervalDatabase::new();
        let result = ParallelTpMiner::new(MinerConfig::with_min_support(1), 4).mine(&db);
        assert!(result.is_empty());
        assert!(result.is_exhaustive());
    }

    #[test]
    fn worker_count_clamps_to_queue_depth() {
        // Never more workers than queued roots.
        assert_eq!(worker_count(3, 8), 3);
        assert_eq!(worker_count(7, 2), 2);
        assert_eq!(worker_count(1, 64), 1);
        // Degenerate inputs still yield a well-formed pool of one: an
        // empty queue (the old round-robin clamp produced a worker with no
        // chunk here) and a zero thread request alike.
        assert_eq!(worker_count(0, 8), 1);
        assert_eq!(worker_count(5, 0), 1);
        assert_eq!(worker_count(0, 0), 1);
    }

    #[test]
    fn queue_orders_heaviest_roots_first() {
        let db = demo_db();
        let index = DbIndex::build(&db);
        let symbols = db.symbols();
        let a = symbols.lookup("A").unwrap();
        let b = symbols.lookup("B").unwrap();
        let c = symbols.lookup("C").unwrap();
        let d = symbols.lookup("D").unwrap();
        // A has two instances per sequence; B and C tie (one each, broken
        // by symbol id); D appears once overall.
        let ordered = queue_order(&index, &[d, c, b, a]);
        assert_eq!(ordered, vec![a, b, c, d]);
        // The order is a pure function of the index, not the input order.
        assert_eq!(queue_order(&index, &[b, a, d, c]), ordered);
    }

    #[test]
    fn lpt_shards_partition_all_roots_exactly_once() {
        let db = demo_db();
        let index = DbIndex::build(&db);
        let symbols = db.symbols();
        let roots: Vec<SymbolId> = ["A", "B", "C", "D"]
            .iter()
            .map(|s| symbols.lookup(s).unwrap())
            .collect();
        for shards in [1, 2, 3, 4, 16] {
            let bins = lpt_shards(&index, &roots, shards);
            assert!(bins.len() <= shards.max(1));
            assert!(bins.iter().all(|b| !b.is_empty()), "shards={shards}");
            let mut seen: Vec<SymbolId> = bins.iter().flatten().copied().collect();
            seen.sort_unstable();
            let mut expected = roots.clone();
            expected.sort_unstable();
            assert_eq!(seen, expected, "shards={shards}");
        }
        assert!(lpt_shards(&index, &[], 4).is_empty());
    }

    #[test]
    fn sharded_mine_merges_bit_identical_to_one_queue_run() {
        let db = demo_db();
        let index = DbIndex::build(&db);
        let roots = SearchEngine::new(&index, MinerConfig::with_min_support(1)).root_symbols();
        let config = MinerConfig::with_min_support(1);
        let miner = ParallelTpMiner::new(config, 1);
        let whole = miner.mine_partitions(&index, &roots);
        for shards in [1, 2, 3, 8] {
            let outcomes: Vec<ShardOutcome> = lpt_shards(&index, &roots, shards)
                .iter()
                .map(|bin| miner.mine_shard(&index, bin))
                .collect();
            let merged = ParallelTpMiner::merge_shards(outcomes);
            assert_eq!(whole.patterns(), merged.patterns(), "shards={shards}");
            assert_eq!(whole.termination(), merged.termination());
        }
    }

    #[test]
    fn dead_shard_outcome_reports_lost_roots() {
        let db = demo_db();
        let index = DbIndex::build(&db);
        let symbols = db.symbols();
        let a = symbols.lookup("A").unwrap();
        let d = symbols.lookup("D").unwrap();
        let config = MinerConfig::with_min_support(1);
        let miner = ParallelTpMiner::new(config, 1);
        let survived = miner.mine_shard(&index, &[d]);
        let merged = ParallelTpMiner::merge_shards(vec![survived, ShardOutcome::failed(vec![a])]);
        match merged.termination() {
            Termination::WorkerFailed { roots } => assert_eq!(roots, &vec![a]),
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
        assert!(!merged.is_empty());
    }

    #[test]
    fn shared_budget_truncates_the_parallel_mine() {
        let db = demo_db();
        let config = MinerConfig::with_min_support(1);
        let full = TpMiner::new(config).mine(&db);
        let budget = MiningBudget::unlimited().with_max_nodes(2);
        let par = ParallelTpMiner::new(config, 4)
            .with_budget(budget)
            .mine(&db);
        assert_eq!(par.termination(), &Termination::NodeBudgetExceeded);
        // The cap bounds the *sum* of nodes across workers.
        assert!(par.stats().nodes_explored <= 2);
        for fp in par.patterns() {
            assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
        }
    }

    #[test]
    fn poisoned_root_loses_only_its_partition() {
        let db = demo_db();
        let config = MinerConfig::with_min_support(1);
        let full = TpMiner::new(config).mine(&db);
        let a = db.symbols().lookup("A").expect("A is interned");

        let par = ParallelTpMiner::new(config, 64).poison_root(a, 1).mine(&db);

        let failed = match par.termination() {
            Termination::WorkerFailed { roots } => roots.clone(),
            other => panic!("expected WorkerFailed, got {other:?}"),
        };
        // The work queue contains the panic at the root boundary, so
        // exactly the poisoned root is lost — not a whole static chunk.
        assert_eq!(failed, vec![a]);

        // Every pattern of a surviving root is present with its exact
        // support; patterns rooted at A are the only ones missing.
        assert!(!par.is_empty());
        for fp in full.patterns() {
            let root = fp.pattern.groups()[0][0].symbol;
            if root == a {
                continue;
            }
            assert_eq!(
                par.support_of(&fp.pattern),
                Some(fp.support),
                "surviving pattern missing or support drifted"
            );
        }
        for fp in par.patterns() {
            assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
            assert_ne!(fp.pattern.groups()[0][0].symbol, a);
        }
    }

    #[test]
    fn poisoned_root_is_isolated_at_every_thread_count() {
        // With the shared queue the failure set no longer depends on how
        // roots used to be chunked: whichever worker claims the poisoned
        // root loses exactly that root.
        let db = demo_db();
        let config = MinerConfig::with_min_support(1);
        let full = TpMiner::new(config).mine(&db);
        let a = db.symbols().lookup("A").expect("A is interned");
        for threads in [1, 2, 8] {
            let par = ParallelTpMiner::new(config, threads)
                .poison_root(a, 1)
                .mine(&db);
            match par.termination() {
                Termination::WorkerFailed { roots } => {
                    assert_eq!(roots, &vec![a], "threads={threads}")
                }
                other => panic!("threads={threads}: expected WorkerFailed, got {other:?}"),
            }
            for fp in full.patterns() {
                if fp.pattern.groups()[0][0].symbol == a {
                    continue;
                }
                assert_eq!(par.support_of(&fp.pattern), Some(fp.support));
            }
        }
    }

    #[test]
    fn poisoned_singleton_run_still_reports_other_workers() {
        // Even with fewer workers than roots, only the poisoned root is
        // lost and the run reports it.
        let db = demo_db();
        let config = MinerConfig::with_min_support(1);
        let d = db.symbols().lookup("D").expect("D is interned");
        let par = ParallelTpMiner::new(config, 2).poison_root(d, 1).mine(&db);
        match par.termination() {
            Termination::WorkerFailed { roots } => assert!(roots.contains(&d)),
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
        assert!(!par.is_empty(), "surviving partition must still report");
    }
}
