//! Top-k temporal pattern mining.
//!
//! Instead of asking for a support threshold (which takes trial and error to
//! pick), ask for the `k` best patterns of at least a minimum size. The
//! implementation uses the standard *threshold-descent* scheme: start from a
//! high support threshold and geometrically relax it until at least `k`
//! qualifying patterns are found, then trim to the true top-k. Every probe
//! run is a complete mine at its threshold, so the final answer is exact:
//! the k highest-support patterns with `arity >= min_arity`, ties broken by
//! canonical pattern order.

use crate::config::MinerConfig;
use crate::miner::{FrequentPattern, TpMiner};
use interval_core::budget::{MiningBudget, Termination};
use interval_core::IntervalDatabase;

/// Configuration of [`mine_top_k`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKConfig {
    /// How many patterns to return.
    pub k: usize,
    /// Minimum pattern arity to qualify (1 = all patterns; 2 excludes the
    /// usually-uninteresting singletons).
    pub min_arity: usize,
    /// Structural limits and pruning for the underlying runs.
    pub base: MinerConfig,
}

impl TopKConfig {
    /// Top `k` patterns of at least 2 intervals.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            min_arity: 2,
            base: MinerConfig::default(),
        }
    }

    /// Sets the minimum qualifying arity.
    pub fn min_arity(mut self, min_arity: usize) -> Self {
        self.min_arity = min_arity.max(1);
        self
    }
}

/// Mines the `k` highest-support patterns with `arity >= min_arity`.
///
/// Returns fewer than `k` patterns only when the database does not contain
/// that many qualifying patterns at support ≥ 1.
///
/// ```
/// use interval_core::DatabaseBuilder;
/// use tpminer::{mine_top_k, TopKConfig};
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("A", 0, 5).interval("B", 3, 8);
/// b.sequence().interval("A", 2, 7).interval("B", 5, 9);
/// b.sequence().interval("A", 0, 5).interval("C", 9, 12);
/// let db = b.build();
///
/// let top = mine_top_k(&db, TopKConfig::new(2));
/// assert_eq!(top.len(), 2);
/// assert!(top[0].support >= top[1].support);
/// ```
pub fn mine_top_k(db: &IntervalDatabase, config: TopKConfig) -> Vec<FrequentPattern> {
    mine_top_k_budgeted(db, config, MiningBudget::unlimited()).0
}

/// Budgeted variant of [`mine_top_k`].
///
/// The budget spans the whole threshold-descent schedule (node and candidate
/// charges accumulate across probe runs). On truncation the returned
/// patterns still carry **exact supports** and descend by support, but the
/// list is no longer guaranteed to be the true top-k — some higher-support
/// pattern may have been cut off with the search. The returned
/// [`Termination`] says whether the answer is exact
/// ([`Termination::Complete`]) or which limit tripped.
pub fn mine_top_k_budgeted(
    db: &IntervalDatabase,
    config: TopKConfig,
    budget: MiningBudget,
) -> (Vec<FrequentPattern>, Termination) {
    if config.k == 0 || db.is_empty() {
        return (Vec::new(), Termination::Complete);
    }
    let mut threshold = db.len();
    loop {
        let mut run_config = config.base;
        run_config.min_support = threshold;
        let result = TpMiner::new(run_config)
            .with_budget(budget.clone())
            .mine(db);
        let termination = result.termination().clone();
        let mut qualifying: Vec<FrequentPattern> = result
            .into_patterns()
            .into_iter()
            .filter(|p| p.pattern.arity() >= config.min_arity)
            .collect();
        if qualifying.len() >= config.k || threshold == 1 || !termination.is_complete() {
            // Highest support first; canonical pattern order for ties.
            qualifying.sort_unstable_by(|a, b| {
                b.support.cmp(&a.support).then_with(|| {
                    (a.pattern.arity(), &a.pattern).cmp(&(b.pattern.arity(), &b.pattern))
                })
            });
            qualifying.truncate(config.k);
            return (qualifying, termination);
        }
        // Geometric descent: halve, never stall, floor at 1.
        threshold = (threshold / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::{matcher, DatabaseBuilder};

    fn db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        for i in 0..8i64 {
            let s = b
                .sequence()
                .interval("A", i, i + 4)
                .interval("B", i + 2, i + 6);
            if i % 2 == 0 {
                s.interval("C", i + 8, i + 10);
            }
        }
        b.sequence().interval("D", 0, 1);
        b.build()
    }

    #[test]
    fn returns_exactly_k_best() {
        let db = db();
        let top = mine_top_k(&db, TopKConfig::new(3));
        assert_eq!(top.len(), 3);
        // descending support
        for w in top.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
        // the single best 2-pattern is A-overlaps-B with support 8
        assert_eq!(top[0].support, 8);
        assert_eq!(top[0].pattern.arity(), 2);
        // supports are oracle-checked
        for p in &top {
            assert_eq!(matcher::support(&db, &p.pattern), p.support);
        }
    }

    #[test]
    fn kth_support_is_a_lower_bound_for_exclusions() {
        // No qualifying pattern outside the answer may beat the k-th one.
        let db = db();
        let k = 4;
        let top = mine_top_k(&db, TopKConfig::new(k));
        let kth = top.last().unwrap().support;
        let everything = crate::TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let better: Vec<_> = everything
            .patterns()
            .iter()
            .filter(|p| p.pattern.arity() >= 2 && p.support > kth)
            .collect();
        assert!(better.len() <= k);
        for b in better {
            assert!(top.contains(b), "a strictly better pattern was excluded");
        }
    }

    #[test]
    fn min_arity_one_includes_singletons() {
        let db = db();
        let top = mine_top_k(&db, TopKConfig::new(2).min_arity(1));
        assert!(top.iter().any(|p| p.pattern.arity() == 1));
    }

    #[test]
    fn budgeted_top_k_reports_truncation_with_exact_supports() {
        let db = db();
        let (top, termination) =
            mine_top_k_budgeted(&db, TopKConfig::new(5), MiningBudget::unlimited());
        assert_eq!(termination, Termination::Complete);
        assert_eq!(top, mine_top_k(&db, TopKConfig::new(5)));

        let budget = MiningBudget::unlimited().with_max_nodes(3);
        let (partial, termination) = mine_top_k_budgeted(&db, TopKConfig::new(5), budget);
        assert_eq!(termination, Termination::NodeBudgetExceeded);
        for p in &partial {
            assert_eq!(matcher::support(&db, &p.pattern), p.support);
        }
        for w in partial.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mine_top_k(&IntervalDatabase::new(), TopKConfig::new(5)).is_empty());
        let db = db();
        assert!(mine_top_k(&db, TopKConfig::new(0)).is_empty());
        // asking for more than exists returns what exists
        let all = mine_top_k(&db, TopKConfig::new(100_000).min_arity(6));
        assert!(all.len() < 100_000);
    }
}
