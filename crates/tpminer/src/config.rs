//! Miner configuration.

use serde::{Deserialize, Serialize};

/// Which pruning techniques the miner applies.
///
/// All three techniques are *output-preserving*: toggling them changes how
/// much of the search space is explored (and how fast), never which patterns
/// are reported. This is what makes the pruning ablation (experiment E3)
/// meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// **PT1 — pair pruning.** Maintain a global symbol co-occurrence table;
    /// skip growing the pattern with a symbol that co-occurs with some symbol
    /// already in the pattern in fewer than `min_support` sequences. Sound by
    /// anti-monotonicity of the 2-symbol sub-pattern.
    pub pair_pruning: bool,
    /// **PT2 — postfix (dead-embedding) pruning.** Drop partial embeddings in
    /// which some open slot's bound instance already ended before the current
    /// endpoint set: such embeddings can never be completed, so they only
    /// inflate intermediate candidate counts and search work.
    pub postfix_pruning: bool,
    /// **PT3 — infrequent-symbol pruning.** Restrict start-extension
    /// enumeration to globally frequent symbols (computed in the first scan)
    /// instead of gathering and rejecting their candidates one node at a
    /// time.
    pub symbol_pruning: bool,
}

impl PruningConfig {
    /// All techniques enabled (the default).
    pub fn all() -> Self {
        Self {
            pair_pruning: true,
            postfix_pruning: true,
            symbol_pruning: true,
        }
    }

    /// All techniques disabled (the unpruned baseline of the ablation).
    pub fn none() -> Self {
        Self {
            pair_pruning: false,
            postfix_pruning: false,
            symbol_pruning: false,
        }
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// Configuration of the deterministic miner ([`TpMiner`]).
///
/// `MinerConfig` describes *what* to mine (threshold, structural limits,
/// pruning) and stays `Copy`. Resource limits on *how long* to mine —
/// deadline, node/candidate caps, cancellation — live in
/// [`MiningBudget`](interval_core::MiningBudget) and attach to a miner via
/// its `with_budget` builder.
///
/// [`TpMiner`]: crate::TpMiner
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Absolute minimum support (number of sequences); values of 0 are
    /// treated as 1.
    pub min_support: usize,
    /// Upper bound on pattern arity (number of intervals); `None` means
    /// unbounded (the data itself bounds the search).
    pub max_arity: Option<usize>,
    /// Upper bound on the number of endpoint sets per pattern.
    pub max_groups: Option<usize>,
    /// Sliding-window constraint: a sequence supports a pattern only when
    /// some embedding fits within this time span (latest end − earliest
    /// start). `None` disables the constraint. Window-constrained support is
    /// still anti-monotone (extending a pattern never shrinks an embedding's
    /// span), so mining remains exact.
    pub max_window: Option<i64>,
    /// Gap constraint: consecutive endpoint sets of an embedding may be at
    /// most this far apart in time. Gap-constrained support is anti-monotone
    /// under the engine's suffix-only pattern growth (appending endpoints
    /// never changes the gaps between existing consecutive sets), so mining
    /// remains exact; note that it is *not* downward closed under arbitrary
    /// sub-patterns (a later interval may bridge a gap).
    pub max_gap: Option<i64>,
    /// Which pruning techniques to apply.
    pub pruning: PruningConfig,
    /// Safety cap on the number of partial embeddings tracked per sequence
    /// per pattern node. Exceeding the cap is *reported* in the stats (and
    /// would make results approximate); it is set high enough that no
    /// workload in this repository ever reaches it.
    pub frontier_cap: usize,
}

impl MinerConfig {
    /// A configuration with the given absolute minimum support and default
    /// everything else.
    pub fn with_min_support(min_support: usize) -> Self {
        Self {
            min_support,
            ..Default::default()
        }
    }

    /// Sets the maximum pattern arity.
    pub fn max_arity(mut self, arity: usize) -> Self {
        self.max_arity = Some(arity);
        self
    }

    /// Sets the maximum number of endpoint sets.
    pub fn max_groups(mut self, groups: usize) -> Self {
        self.max_groups = Some(groups);
        self
    }

    /// Sets the sliding-window constraint (maximum embedding time span).
    pub fn max_window(mut self, window: i64) -> Self {
        self.max_window = Some(window);
        self
    }

    /// Sets the gap constraint (maximum time between consecutive endpoint
    /// sets of an embedding).
    pub fn max_gap(mut self, gap: i64) -> Self {
        self.max_gap = Some(gap);
        self
    }

    /// Sets the pruning configuration.
    pub fn pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// The effective minimum support (at least 1).
    pub fn effective_min_support(&self) -> usize {
        self.min_support.max(1)
    }
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_support: 1,
            max_arity: None,
            max_groups: None,
            max_window: None,
            max_gap: None,
            pruning: PruningConfig::default(),
            frontier_cap: 1 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_pruning() {
        let c = MinerConfig::default();
        assert!(c.pruning.pair_pruning);
        assert!(c.pruning.postfix_pruning);
        assert!(c.pruning.symbol_pruning);
        assert_eq!(c.effective_min_support(), 1);
    }

    #[test]
    fn zero_min_support_is_clamped() {
        let c = MinerConfig::with_min_support(0);
        assert_eq!(c.effective_min_support(), 1);
    }

    #[test]
    fn builder_methods_compose() {
        let c = MinerConfig::with_min_support(5)
            .max_arity(3)
            .max_groups(6)
            .pruning(PruningConfig::none());
        assert_eq!(c.min_support, 5);
        assert_eq!(c.max_arity, Some(3));
        assert_eq!(c.max_groups, Some(6));
        assert!(!c.pruning.pair_pruning);
    }
}
