//! Instrumentation counters collected during a mining run.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters describing how much work a mining run performed.
///
/// These feed the paper's efficiency/ablation/memory experiments: wall time
/// for the runtime figures, state counts for the (allocator-independent)
/// memory proxies, and pruning counters for the ablation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinerStats {
    /// Search-tree nodes expanded (pattern prefixes whose extensions were
    /// enumerated). A node is counted only after the
    /// [`MiningBudget`](interval_core::MiningBudget) accepted its charge,
    /// so under a node cap this never exceeds the cap.
    pub nodes_explored: u64,
    /// Complete frequent patterns emitted.
    pub patterns_emitted: u64,
    /// Candidate extensions counted across all nodes (after per-sequence
    /// deduplication).
    pub candidates_counted: u64,
    /// Partial-embedding states materialized across all projected databases.
    pub states_created: u64,
    /// Largest number of live states in any single node's projection — the
    /// peak-memory proxy reported by experiment E4.
    pub peak_node_states: u64,
    /// States discarded by postfix (dead-embedding) pruning.
    pub states_pruned_dead: u64,
    /// Start extensions skipped by pair pruning.
    pub exts_pruned_pair: u64,
    /// Start extensions skipped by the global frequent-symbol filter.
    pub exts_pruned_symbol: u64,
    /// Number of times a per-sequence frontier hit the safety cap (should be
    /// 0 on every workload in this repository; a non-zero value means the
    /// result may be approximate).
    pub frontier_cap_hits: u64,
    /// High-water mark of live bindings-arena bytes across the search
    /// (logical length of the structure-of-arrays frontiers of all nodes on
    /// the current DFS path) — an allocation proxy for the flat layout.
    #[serde(default)]
    pub arena_peak_bytes: u64,
    /// Child-frontier builds served entirely from recycled buffers (no
    /// backing allocation had to grow). In steady state this should track
    /// `nodes_explored`; a low ratio means the scratch pool is thrashing.
    #[serde(default)]
    pub scratch_reuse_hits: u64,
    /// Wall-clock time of the run.
    #[serde(with = "duration_micros")]
    pub elapsed: Duration,
}

impl MinerStats {
    /// Merges counters from another run (used by the parallel miner to
    /// combine per-branch stats). `elapsed` takes the maximum, the rest sum.
    pub fn merge(&mut self, other: &MinerStats) {
        self.nodes_explored += other.nodes_explored;
        self.patterns_emitted += other.patterns_emitted;
        self.candidates_counted += other.candidates_counted;
        self.states_created += other.states_created;
        self.peak_node_states = self.peak_node_states.max(other.peak_node_states);
        self.states_pruned_dead += other.states_pruned_dead;
        self.exts_pruned_pair += other.exts_pruned_pair;
        self.exts_pruned_symbol += other.exts_pruned_symbol;
        self.frontier_cap_hits += other.frontier_cap_hits;
        self.arena_peak_bytes = self.arena_peak_bytes.max(other.arena_peak_bytes);
        self.scratch_reuse_hits += other.scratch_reuse_hits;
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

mod duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = MinerStats {
            nodes_explored: 10,
            patterns_emitted: 2,
            peak_node_states: 5,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        let b = MinerStats {
            nodes_explored: 7,
            patterns_emitted: 3,
            peak_node_states: 9,
            elapsed: Duration::from_millis(4),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_explored, 17);
        assert_eq!(a.patterns_emitted, 5);
        assert_eq!(a.peak_node_states, 9);
        assert_eq!(a.elapsed, Duration::from_millis(10));
    }
}
