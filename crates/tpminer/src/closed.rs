//! Closed temporal patterns.
//!
//! A frequent pattern is **closed** when no proper super-pattern has the
//! same support. The closed set is a lossless compression of the frequent
//! set: every frequent pattern is a sub-pattern of some closed pattern with
//! the same support, so the full set (with supports) can be reconstructed.
//!
//! This module post-filters a [`TpMiner`](crate::TpMiner) result. Because a
//! proper super-pattern always has strictly larger arity (an embedding
//! between equal-arity patterns uses every interval, forcing equality), only
//! cross-arity pairs inside the same support class need checking.
//!
//! **Completeness requirement.** The filter assumes its input is the *full*
//! frequent set at one threshold. A budget-truncated result (one whose
//! [`MiningResult::termination`](crate::MiningResult::termination) is not
//! `Complete`) may be missing the super-pattern that would absorb a
//! non-closed pattern, so "closed" labels computed from it are unreliable —
//! callers (e.g. the CLI) should warn or refuse rather than silently filter
//! a partial set.

use crate::miner::FrequentPattern;

/// Whether `candidate` is closed with respect to `all` (which must contain
/// every frequent pattern of the same support, e.g. a full miner result).
pub fn is_closed_in(candidate: &FrequentPattern, all: &[FrequentPattern]) -> bool {
    !all.iter().any(|other| {
        other.support == candidate.support
            && other.pattern.arity() > candidate.pattern.arity()
            && candidate.pattern.is_subpattern_of(&other.pattern)
    })
}

/// Filters a frequent-pattern set down to its closed patterns.
///
/// ```
/// use interval_core::DatabaseBuilder;
/// use tpminer::{closed_patterns, MinerConfig, TpMiner};
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("A", 0, 5).interval("B", 3, 8);
/// b.sequence().interval("A", 2, 7).interval("B", 5, 9);
/// let db = b.build();
/// let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
///
/// // A and B alone are absorbed by "A overlaps B" (same support 2):
/// let closed = closed_patterns(result.patterns());
/// assert_eq!(closed.len(), 1);
/// assert_eq!(closed[0].pattern.arity(), 2);
/// ```
pub fn closed_patterns(patterns: &[FrequentPattern]) -> Vec<FrequentPattern> {
    // Bucket by support so the quadratic check only runs within classes.
    use std::collections::HashMap;
    let mut by_support: HashMap<usize, Vec<&FrequentPattern>> = HashMap::new();
    for p in patterns {
        by_support.entry(p.support).or_default().push(p);
    }
    let mut closed: Vec<FrequentPattern> = Vec::new();
    for class in by_support.values() {
        for p in class {
            let absorbed = class.iter().any(|q| {
                q.pattern.arity() > p.pattern.arity() && p.pattern.is_subpattern_of(&q.pattern)
            });
            if !absorbed {
                closed.push((*p).clone());
            }
        }
    }
    closed.sort_unstable();
    closed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinerConfig, TpMiner};
    use interval_core::{matcher, DatabaseBuilder};

    #[test]
    fn closed_set_is_subset_with_same_maximal_patterns() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5)
            .interval("B", 3, 8)
            .interval("C", 10, 12);
        b.sequence().interval("A", 2, 7).interval("B", 5, 9);
        b.sequence().interval("C", 0, 1);
        let db = b.build();
        let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
        let closed = closed_patterns(result.patterns());
        assert!(closed.len() <= result.len());
        // every closed pattern is in the frequent set
        for c in &closed {
            assert!(result.patterns().contains(c));
        }
        // maximal-arity patterns are always closed
        let max_arity = result
            .patterns()
            .iter()
            .map(|p| p.pattern.arity())
            .max()
            .unwrap();
        for p in result.patterns() {
            if p.pattern.arity() == max_arity {
                assert!(closed.contains(p));
            }
        }
    }

    #[test]
    fn closure_is_lossless() {
        // Every frequent pattern must have a closed super-pattern with equal
        // support.
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5)
            .interval("B", 3, 8)
            .interval("A", 7, 9);
        b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        b.sequence().interval("B", 0, 5);
        let db = b.build();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let closed = closed_patterns(result.patterns());
        for p in result.patterns() {
            assert!(
                closed
                    .iter()
                    .any(|c| c.support == p.support && p.pattern.is_subpattern_of(&c.pattern)),
                "{} (support {}) has no closed cover",
                p.pattern.display(db.symbols()),
                p.support
            );
        }
        // and closed supports agree with the oracle
        for c in &closed {
            assert_eq!(matcher::support(&db, &c.pattern), c.support);
        }
    }

    #[test]
    fn distinct_support_patterns_survive() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        b.sequence().interval("A", 0, 5);
        let db = b.build();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let closed = closed_patterns(result.patterns());
        // A (support 2) is not absorbed by A-overlaps-B (support 1).
        let a_single = closed
            .iter()
            .find(|c| c.pattern.arity() == 1 && c.support == 2);
        assert!(a_single.is_some());
    }

    #[test]
    fn is_closed_in_agrees_with_filter() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        b.sequence().interval("A", 2, 7).interval("B", 5, 9);
        let db = b.build();
        let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
        let closed = closed_patterns(result.patterns());
        for p in result.patterns() {
            assert_eq!(
                is_closed_in(p, result.patterns()),
                closed.contains(p),
                "{}",
                p.pattern.display(db.symbols())
            );
        }
    }
}
