//! P-TPMiner: probabilistic temporal pattern mining over uncertain interval
//! databases.
//!
//! The miner discovers every pattern whose **expected support**
//! `Σ_S Pr[P ⊑ S]` reaches a threshold. It runs in two stages:
//!
//! 1. **Skeleton mining.** By containment monotonicity, a pattern can only
//!    have positive containment probability in a sequence if it is contained
//!    in the sequence's *full world* (all intervals present), and the
//!    expected support never exceeds the full-world support. The
//!    deterministic [`TpMiner`] therefore enumerates a
//!    complete candidate set at threshold `⌈min_esup⌉`.
//! 2. **Probabilistic evaluation.** Each candidate is first screened with
//!    the cheap anti-monotone expected-support **upper bound** (PT4: a
//!    per-symbol Poisson-binomial availability bound); survivors get the
//!    exact / Monte-Carlo expected support from
//!    [`interval_core::probability`].
//!
//! With every probability equal to 1 the expected support coincides with the
//! ordinary support and P-TPMiner reduces exactly to TPMiner (tested).

use crate::config::MinerConfig;
use crate::miner::TpMiner;
use crate::stats::MinerStats;
use interval_core::budget::{MiningBudget, Termination};
use interval_core::probability::{
    containment_probability, containment_upper_bound, ProbabilityConfig,
};
use interval_core::{IntervalDatabase, TemporalPattern, UncertainDatabase};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of [`ProbabilisticMiner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbabilisticConfig {
    /// Minimum expected support (may be fractional).
    pub min_expected_support: f64,
    /// Structural limits and pruning for the deterministic skeleton stage.
    pub base: MinerConfig,
    /// Exact-enumeration limit, Monte-Carlo sample count and seed for the
    /// evaluation stage.
    pub probability: ProbabilityConfig,
    /// Whether to apply the PT4 expected-support upper-bound screen before
    /// the expensive evaluation (output-preserving; the ablation knob of
    /// experiment E7).
    pub upper_bound_pruning: bool,
}

impl ProbabilisticConfig {
    /// A configuration with the given expected-support threshold and default
    /// everything else.
    pub fn with_min_expected_support(min_expected_support: f64) -> Self {
        Self {
            min_expected_support,
            ..Default::default()
        }
    }
}

impl Default for ProbabilisticConfig {
    fn default() -> Self {
        Self {
            min_expected_support: 1.0,
            base: MinerConfig::default(),
            probability: ProbabilityConfig::default(),
            upper_bound_pruning: true,
        }
    }
}

/// A probabilistically frequent pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilisticPattern {
    /// The pattern, in canonical form.
    pub pattern: TemporalPattern,
    /// Its expected support `Σ_S Pr[pattern ⊑ S]`.
    pub expected_support: f64,
    /// Its support in the full world (every interval present) — an upper
    /// bound on the expected support.
    pub world_support: usize,
}

/// Work counters of a probabilistic run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProbabilisticStats {
    /// Counters of the deterministic skeleton stage.
    pub skeleton: MinerStats,
    /// Candidates produced by the skeleton.
    pub candidates: u64,
    /// Candidates eliminated by the PT4 upper-bound screen.
    pub pruned_by_bound: u64,
    /// Candidates that went through full expected-support evaluation.
    pub evaluated: u64,
    /// Patterns meeting the expected-support threshold.
    pub emitted: u64,
    /// Total wall-clock time in microseconds (skeleton + evaluation).
    pub elapsed_micros: u64,
}

/// Result of a probabilistic mining run.
///
/// Like [`MiningResult`](crate::MiningResult), a truncated run is *sound*:
/// every reported pattern's expected support is fully evaluated and exact;
/// only completeness is lost when [`termination`](Self::termination) is not
/// [`Termination::Complete`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbabilisticResult {
    patterns: Vec<ProbabilisticPattern>,
    stats: ProbabilisticStats,
    #[serde(default)]
    termination: Termination,
}

impl ProbabilisticResult {
    /// The probabilistically frequent patterns in canonical order.
    pub fn patterns(&self) -> &[ProbabilisticPattern] {
        &self.patterns
    }

    /// Work counters.
    pub fn stats(&self) -> &ProbabilisticStats {
        &self.stats
    }

    /// How the run ended; anything but [`Termination::Complete`] means the
    /// result is a sound but possibly incomplete subset.
    pub fn termination(&self) -> &Termination {
        &self.termination
    }

    /// Whether the run explored the entire search space.
    pub fn is_exhaustive(&self) -> bool {
        self.termination.is_complete()
    }

    /// Number of patterns found.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no pattern met the threshold.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// The probabilistic miner (the paper's P-TPMiner).
#[derive(Debug, Clone)]
pub struct ProbabilisticMiner {
    config: ProbabilisticConfig,
    budget: MiningBudget,
}

impl ProbabilisticMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: ProbabilisticConfig) -> Self {
        Self {
            config,
            budget: MiningBudget::unlimited(),
        }
    }

    /// Attaches a resource budget. The budget governs both stages: the
    /// deterministic skeleton shares it, and the evaluation loop probes it
    /// between candidates — once any limit trips (deadline, node cap,
    /// cancellation) the remaining candidates are skipped and the result
    /// carries the corresponding [`Termination`].
    pub fn with_budget(mut self, budget: MiningBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &ProbabilisticConfig {
        &self.config
    }

    /// Mines all probabilistically frequent patterns of `db`.
    pub fn mine(&self, db: &UncertainDatabase) -> ProbabilisticResult {
        // xlint::allow(no-unbudgeted-clock): single read per mine seeding ProbabilisticResult::elapsed; stage budgets flow through the shared meter
        let started = Instant::now();
        let min_esup = self.config.min_expected_support.max(f64::MIN_POSITIVE);

        // Stage 1: skeleton over the full world.
        let full_world = full_world(db);
        let mut skeleton_config = self.config.base;
        skeleton_config.min_support = (min_esup.ceil() as usize).max(1);
        let skeleton = TpMiner::new(skeleton_config)
            .with_budget(self.budget.clone())
            .mine(&full_world);
        let mut termination = skeleton.termination().clone();

        let mut stats = ProbabilisticStats {
            skeleton: skeleton.stats().clone(),
            candidates: skeleton.len() as u64,
            ..Default::default()
        };

        // Stage 2: probabilistic evaluation. Checked between candidates so
        // a deadline or cancellation stops the loop cooperatively; every
        // emitted pattern was evaluated in full.
        let mut patterns = Vec::new();
        for candidate in skeleton.patterns() {
            if let Some(trip) = self.budget.exceeded() {
                termination = termination.merge(trip);
                break;
            }
            if self.config.upper_bound_pruning {
                let mut bound = 0.0f64;
                for seq in db.sequences() {
                    bound += containment_upper_bound(seq, &candidate.pattern);
                    if bound >= min_esup {
                        break; // bound can no longer reject
                    }
                }
                if bound < min_esup {
                    stats.pruned_by_bound += 1;
                    continue;
                }
            }
            stats.evaluated += 1;
            let esup: f64 = db
                .sequences()
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    containment_probability(
                        s,
                        &candidate.pattern,
                        &self.config.probability,
                        i as u64,
                    )
                })
                .sum();
            if esup >= min_esup {
                patterns.push(ProbabilisticPattern {
                    pattern: candidate.pattern.clone(),
                    expected_support: esup,
                    world_support: candidate.support,
                });
            }
        }
        stats.emitted = patterns.len() as u64;
        stats.elapsed_micros = started.elapsed().as_micros() as u64;
        patterns.sort_unstable_by(|a, b| {
            (a.pattern.arity(), &a.pattern).cmp(&(b.pattern.arity(), &b.pattern))
        });
        ProbabilisticResult {
            patterns,
            stats,
            termination,
        }
    }
}

/// The certain database in which every interval of `db` exists.
fn full_world(db: &UncertainDatabase) -> IntervalDatabase {
    let sequences = db.sequences().iter().map(|s| s.to_certain()).collect();
    IntervalDatabase::from_parts(db.symbols().clone(), sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinerConfig, TpMiner};
    use interval_core::{DatabaseBuilder, UncertainDatabaseBuilder};

    #[test]
    fn reduces_to_deterministic_when_certain() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        b.sequence().interval("A", 2, 7).interval("B", 5, 9);
        b.sequence().interval("B", 0, 4);
        let db = b.build();
        let udb = UncertainDatabase::from_certain(&db);

        let det = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
        let prob =
            ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(2.0)).mine(&udb);

        assert_eq!(det.len(), prob.len());
        for (d, p) in det.patterns().iter().zip(prob.patterns()) {
            assert_eq!(d.pattern, p.pattern);
            assert!((p.expected_support - d.support as f64).abs() < 1e-9);
            assert_eq!(p.world_support, d.support);
        }
    }

    #[test]
    fn expected_support_filters_unlikely_patterns() {
        let mut b = UncertainDatabaseBuilder::new();
        // "A" certain everywhere; "B" unlikely everywhere.
        for _ in 0..4 {
            b.sequence()
                .interval("A", 0, 5, 1.0)
                .interval("B", 3, 8, 0.1);
        }
        let udb = b.build();
        let result =
            ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(2.0)).mine(&udb);
        // A has expected support 4; B only 0.4; A-overlaps-B only 0.4.
        assert_eq!(result.len(), 1);
        assert_eq!(result.patterns()[0].pattern.arity(), 1);
        assert!((result.patterns()[0].expected_support - 4.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_pruning_is_output_preserving() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5, 0.9)
            .interval("B", 3, 8, 0.5)
            .interval("C", 1, 2, 0.2);
        b.sequence()
            .interval("A", 0, 5, 0.8)
            .interval("B", 3, 8, 0.6);
        b.sequence()
            .interval("A", 0, 5, 0.7)
            .interval("C", 6, 9, 0.3);
        let udb = b.build();
        let mut cfg = ProbabilisticConfig::with_min_expected_support(1.0);
        cfg.upper_bound_pruning = true;
        let with = ProbabilisticMiner::new(cfg).mine(&udb);
        cfg.upper_bound_pruning = false;
        let without = ProbabilisticMiner::new(cfg).mine(&udb);
        assert_eq!(with.patterns(), without.patterns());
        assert_eq!(without.stats().pruned_by_bound, 0);
    }

    #[test]
    fn expected_supports_are_exact_on_small_data() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence().interval("A", 0, 5, 0.5);
        b.sequence().interval("A", 0, 5, 0.5);
        b.sequence().interval("A", 0, 5, 0.5);
        let udb = b.build();
        let result =
            ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(1.0)).mine(&udb);
        assert_eq!(result.len(), 1);
        assert!((result.patterns()[0].expected_support - 1.5).abs() < 1e-9);
        assert_eq!(result.patterns()[0].world_support, 3);
    }

    #[test]
    fn cancelled_probabilistic_mine_returns_partial_sound_result() {
        let mut b = UncertainDatabaseBuilder::new();
        for _ in 0..3 {
            b.sequence()
                .interval("A", 0, 5, 0.9)
                .interval("B", 3, 8, 0.8);
        }
        let udb = b.build();
        let budget = MiningBudget::unlimited();
        budget.token().cancel();
        let result = ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(1.0))
            .with_budget(budget)
            .mine(&udb);
        assert_eq!(result.termination(), &Termination::Cancelled);
        assert!(!result.is_exhaustive());
        assert!(result.is_empty(), "pre-cancelled run must not emit");
    }

    #[test]
    fn unbudgeted_probabilistic_mine_is_exhaustive() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence().interval("A", 0, 5, 0.5);
        let udb = b.build();
        let result = ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(0.25))
            .mine(&udb);
        assert!(result.is_exhaustive());
        assert_eq!(result.termination(), &Termination::Complete);
    }

    #[test]
    fn stats_track_stage_counts() {
        let mut b = UncertainDatabaseBuilder::new();
        for _ in 0..3 {
            b.sequence()
                .interval("A", 0, 5, 0.9)
                .interval("B", 3, 8, 0.05);
        }
        let udb = b.build();
        let result =
            ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(2.0)).mine(&udb);
        let s = result.stats();
        assert!(s.candidates >= (s.evaluated + s.pruned_by_bound)); // screen partitions candidates
        assert_eq!(s.evaluated + s.pruned_by_bound, s.candidates);
        assert_eq!(s.emitted as usize, result.len());
        assert!(s.pruned_by_bound > 0, "B-patterns should be screened out");
    }
}
