//! # TPMiner / P-TPMiner
//!
//! Reproduction of the mining algorithms of *"Mining temporal patterns in
//! interval-based data"* (Chen, Peng, Lee — ICDE 2016): pattern-growth
//! discovery of temporal (arrangement) patterns over the endpoint
//! representation, with output-preserving pruning techniques, a
//! probabilistic variant over uncertain databases, closed-pattern mining and
//! a parallel driver.
//!
//! The two pattern types discovered (see `DESIGN.md` for the reconstruction
//! rationale):
//!
//! 1. **Temporal patterns** — qualitative arrangements of event intervals,
//!    mined by [`TpMiner`] from an [`interval_core::IntervalDatabase`];
//! 2. **Probabilistic temporal patterns** — patterns whose *expected
//!    support* over an [`interval_core::UncertainDatabase`] reaches a
//!    threshold, mined by [`ProbabilisticMiner`].
//!
//! Every miner accepts a [`MiningBudget`] (wall-clock deadline, node and
//! candidate caps, cooperative cancellation). A budgeted run that stops
//! early returns a **sound partial result** — exact supports, possibly
//! incomplete — and reports how it ended via [`Termination`]. The parallel
//! driver additionally isolates worker panics, losing only the failed
//! workers' root partitions.
//!
//! ```
//! use interval_core::DatabaseBuilder;
//! use tpminer::{MinerConfig, TpMiner};
//!
//! let mut b = DatabaseBuilder::new();
//! b.sequence().interval("fever", 0, 10).interval("rash", 5, 20);
//! b.sequence().interval("fever", 1, 9).interval("rash", 4, 15);
//! let db = b.build();
//!
//! let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
//! println!("{}", result.render(db.symbols()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed;
pub mod config;
pub mod index;
pub mod maximal;
pub mod miner;
pub mod parallel;
pub mod probabilistic;
pub mod rules;
pub mod search;
pub mod stats;
pub mod topk;

pub use closed::{closed_patterns, is_closed_in};
pub use config::{MinerConfig, PruningConfig};
pub use index::{DbIndex, SeqIndex};
pub use interval_core::budget::{CancellationToken, MiningBudget, Termination};
pub use maximal::{is_maximal_in, maximal_patterns};
pub use miner::{FrequentPattern, MiningResult, TpMiner};
pub use parallel::{lpt_shards, ParallelTpMiner, ShardOutcome};
pub use probabilistic::{ProbabilisticConfig, ProbabilisticMiner, ProbabilisticPattern};
pub use rules::{generate_rules, RuleConfig, TemporalRule};
pub use stats::MinerStats;
pub use topk::{mine_top_k, mine_top_k_budgeted, TopKConfig};
