//! Temporal association rules.
//!
//! A rule `P ⇒ Q` (with `P` a proper sub-pattern of `Q`) reads: *sequences
//! that contain the arrangement `P` also contain its extension `Q`* with
//! confidence `sup(Q) / sup(P)`. This is the classic way the
//! "practicability" of mined interval patterns is demonstrated — e.g.
//! *patrons borrowing a textbook also borrow the exercise book while the
//! textbook is still out (confidence 0.82)*.
//!
//! Rules are derived from a complete miner result; no further database
//! scans are needed.

use crate::miner::FrequentPattern;
use interval_core::{SymbolTable, TemporalPattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A temporal association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalRule {
    /// The antecedent pattern `P`.
    pub antecedent: TemporalPattern,
    /// The consequent pattern `Q` (a proper super-pattern of `P`).
    pub consequent: TemporalPattern,
    /// Support of the consequent (and hence of the rule).
    pub support: usize,
    /// `sup(Q) / sup(P)` in `(0, 1]`.
    pub confidence: f64,
}

impl TemporalRule {
    /// Renders the rule with symbol names.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> RuleDisplay<'a> {
        RuleDisplay {
            rule: self,
            symbols,
        }
    }
}

/// Display adaptor for [`TemporalRule`].
#[derive(Debug)]
pub struct RuleDisplay<'a> {
    rule: &'a TemporalRule,
    symbols: &'a SymbolTable,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}  =>  {}   (conf {:.2}, sup {})",
            self.rule.antecedent.display(self.symbols),
            self.rule.consequent.display(self.symbols),
            self.rule.confidence,
            self.rule.support
        )
    }
}

/// Configuration for rule generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleConfig {
    /// Minimum confidence in `(0, 1]`.
    pub min_confidence: f64,
    /// Only emit rules whose consequent adds exactly one interval to the
    /// antecedent (the most interpretable form); `false` emits every
    /// sub/super pair.
    pub single_extension_only: bool,
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self {
            min_confidence: 0.5,
            single_extension_only: true,
        }
    }
}

/// Derives all rules meeting `config` from a complete frequent-pattern set.
///
/// ```
/// use interval_core::DatabaseBuilder;
/// use tpminer::{rules, MinerConfig, TpMiner};
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("A", 0, 5).interval("B", 3, 8);
/// b.sequence().interval("A", 2, 7).interval("B", 5, 9);
/// b.sequence().interval("A", 0, 5);
/// let db = b.build();
/// let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
///
/// let rules = rules::generate_rules(result.patterns(), &rules::RuleConfig::default());
/// // A => (A overlaps B) holds in 2 of 3 A-sequences.
/// assert!(rules
///     .iter()
///     .any(|r| r.antecedent.arity() == 1 && (r.confidence - 2.0 / 3.0).abs() < 1e-9));
/// ```
pub fn generate_rules(patterns: &[FrequentPattern], config: &RuleConfig) -> Vec<TemporalRule> {
    let mut rules = Vec::new();
    for q in patterns {
        if q.pattern.arity() < 2 {
            continue;
        }
        for p in patterns {
            if p.pattern.arity() >= q.pattern.arity() {
                continue;
            }
            if config.single_extension_only && p.pattern.arity() + 1 != q.pattern.arity() {
                continue;
            }
            if !p.pattern.is_subpattern_of(&q.pattern) {
                continue;
            }
            let confidence = q.support as f64 / p.support as f64;
            if confidence >= config.min_confidence {
                rules.push(TemporalRule {
                    antecedent: p.pattern.clone(),
                    consequent: q.pattern.clone(),
                    support: q.support,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.support.cmp(&a.support))
            .then_with(|| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinerConfig, TpMiner};
    use interval_core::{matcher, DatabaseBuilder};

    fn demo() -> interval_core::IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        for _ in 0..4 {
            b.sequence().interval("A", 0, 5).interval("B", 3, 8);
        }
        b.sequence().interval("A", 0, 5);
        b.sequence().interval("B", 0, 5);
        b.build()
    }

    #[test]
    fn confidences_are_support_ratios() {
        let db = demo();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let rules = generate_rules(result.patterns(), &RuleConfig::default());
        assert!(!rules.is_empty());
        for r in &rules {
            let sup_p = matcher::support(&db, &r.antecedent);
            let sup_q = matcher::support(&db, &r.consequent);
            assert_eq!(r.support, sup_q);
            assert!((r.confidence - sup_q as f64 / sup_p as f64).abs() < 1e-12);
            assert!(r.confidence >= 0.5 && r.confidence <= 1.0);
            assert!(r.antecedent.is_subpattern_of(&r.consequent));
        }
        // A appears in 5 sequences, A-overlaps-B in 4: confidence 0.8.
        assert!(rules.iter().any(|r| (r.confidence - 0.8).abs() < 1e-12));
    }

    #[test]
    fn min_confidence_filters() {
        let db = demo();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let strict = generate_rules(
            result.patterns(),
            &RuleConfig {
                min_confidence: 0.81,
                ..Default::default()
            },
        );
        assert!(strict.iter().all(|r| r.confidence >= 0.81));
        let loose = generate_rules(
            result.patterns(),
            &RuleConfig {
                min_confidence: 0.1,
                ..Default::default()
            },
        );
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn rules_sort_by_confidence_then_support() {
        let db = demo();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let rules = generate_rules(
            result.patterns(),
            &RuleConfig {
                min_confidence: 0.1,
                single_extension_only: false,
            },
        );
        for w in rules.windows(2) {
            assert!(
                w[0].confidence > w[1].confidence
                    || (w[0].confidence == w[1].confidence && w[0].support >= w[1].support)
                    || (w[0].confidence == w[1].confidence && w[0].support == w[1].support)
            );
        }
    }

    #[test]
    fn display_renders_both_sides() {
        let db = demo();
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let rules = generate_rules(result.patterns(), &RuleConfig::default());
        let text = rules[0].display(db.symbols()).to_string();
        assert!(text.contains("=>"));
        assert!(text.contains("conf"));
    }
}
