//! The `serve` subcommand: run the multi-tenant pattern-mining service.
//!
//! ```text
//! ptpminer-cli serve --addr 127.0.0.1:7464 --wal-root /var/lib/ptpminer \
//!     [--segment-dir DIR] [--fsync always|epoch|never] [--threads N]
//!     [--refresh-workers N] [--max-lag T] [--port-file PATH] [--stats-json]
//! ```
//!
//! `--refresh-workers N` gives every stream's refresh pool `N` shard
//! workers (LPT-balanced over dirty roots, bit-identical output);
//! `--max-lag T` switches every stream to the adaptive refresh trigger
//! (refresh once the published snapshot trails the live watermark by more
//! than `T`), overriding each stream's `EVERY` cadence. See
//! `docs/STREAMING.md` for tuning guidance.
//!
//! `--segment-dir DIR` attaches a cold segment store to every stream
//! (one sub-directory per stream under `DIR`): watermark-evicted
//! intervals are sealed into immutable segment files, WAL reclaim is
//! re-tied to "sealed and fsynced", and the `HISTORY` wire verb re-mines
//! any sealed time range without touching ingest. See `docs/STORAGE.md`.
//!
//! The process runs until SIGINT or a client's `SHUTDOWN`, then drains
//! every stream gracefully (WAL flushed, final refresh folded in) and
//! prints a per-stream summary to stderr. `--port-file` writes the bound
//! address (useful with `--addr 127.0.0.1:0`, which picks a free port) so
//! scripts and tests can discover where the server landed. See
//! `docs/SERVER.md` for the protocol.
//!
//! Exit codes follow the rest of the CLI: 0 clean drain, 4 if any
//! stream's refresh worker died, 5 if any stream's WAL degraded.

use std::path::PathBuf;
use std::process::ExitCode;

use server::{DrainReport, Server, ServerConfig};

use crate::args::Parsed;
use crate::{exit, sigint, stream_cmd};

/// Options the `serve` subcommand accepts.
pub const OPTIONS: &[&str] = &[
    "addr",
    "wal-root",
    "segment-dir",
    "fsync",
    "threads",
    "refresh-workers",
    "max-lag",
    "port-file",
    "stats-json",
];

/// The default listen address when `--addr` is not given.
const DEFAULT_ADDR: &str = "127.0.0.1:7464";

pub fn run(p: &Parsed) -> Result<ExitCode, String> {
    if !p.positional.is_empty() {
        return Err("serve takes no positional arguments".into());
    }
    let fsync = stream_cmd::fsync_from(p)?;
    if p.get("fsync").is_some() && p.get("wal-root").is_none() {
        return Err("--fsync needs --wal-root (there are no logs to sync without one)".into());
    }
    let max_lag = p.opt_num::<i64>("max-lag")?;
    if max_lag.is_some_and(|l| l < 0) {
        return Err("--max-lag: must be non-negative".into());
    }
    let config = ServerConfig {
        wal_root: p.get("wal-root").map(PathBuf::from),
        segment_root: p.get("segment-dir").map(PathBuf::from),
        fsync,
        threads: p.num::<usize>("threads", 0)?,
        refresh_workers: p.num::<usize>("refresh-workers", 1)?.max(1),
        max_lag,
    };
    if let Some(root) = &config.wal_root {
        std::fs::create_dir_all(root).map_err(|e| format!("--wal-root {}: {e}", root.display()))?;
    }
    if let Some(root) = &config.segment_root {
        std::fs::create_dir_all(root)
            .map_err(|e| format!("--segment-dir {}: {e}", root.display()))?;
    }
    let addr = p.get("addr").unwrap_or(DEFAULT_ADDR);
    let server = Server::bind(addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(path) = p.get("port-file") {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| format!("--port-file {path}: {e}"))?;
    }
    eprintln!("listening on {bound} (SIGINT or SHUTDOWN drains)");

    let token = sigint::install();
    let report = server.run(token).map_err(|e| format!("serve: {e}"))?;

    report_drain(&report);
    if p.flag("stats-json") {
        eprintln!("{}", stats_json(&report));
    }
    if report.any_worker_failed() {
        Ok(ExitCode::from(exit::WORKER_FAILED))
    } else if report.any_wal_degraded() {
        eprintln!(
            "note: durability degraded — at least one stream's WAL stopped accepting \
             writes (exit code {})",
            exit::DEGRADED,
        );
        Ok(ExitCode::from(exit::DEGRADED))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Human drain summary, one line per stream plus the server counters.
fn report_drain(report: &DrainReport) {
    eprintln!("drained {} stream(s):", report.streams.len());
    for s in &report.streams {
        let mut line = format!(
            "  {}: {} events, revision {}, {} patterns, {} refreshes ({} coalesced)",
            s.name,
            s.events,
            s.final_revision,
            s.final_patterns,
            s.pipeline.completed_refreshes,
            s.pipeline.coalesced_refreshes,
        );
        if s.wal_degraded {
            line.push_str(" [WAL DEGRADED]");
        }
        if s.worker_failed {
            line.push_str(" [WORKER FAILED]");
        }
        eprintln!("{line}");
    }
    let c = &report.counters;
    eprintln!(
        "served {} connection(s), {} command(s) ({} protocol errors), \
         {} events accepted ({} rejected), {} queries",
        c.connections,
        c.commands,
        c.protocol_errors,
        c.events_accepted,
        c.events_rejected,
        c.queries,
    );
}

/// Machine-readable drain report. Hand-built JSON: stream names are
/// validated by the wire grammar to `[A-Za-z0-9._-]`, so no escaping is
/// ever needed.
fn stats_json(report: &DrainReport) -> String {
    let streams: Vec<String> = report
        .streams
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"events\":{},\"revision\":{},\"patterns\":{},\
                 \"submitted\":{},\"completed\":{},\"coalesced\":{},\
                 \"events_during_refresh\":{},\"refresh_lag\":{},\
                 \"subscribers\":{},\"subscriber_delivered\":{},\
                 \"subscriber_dropped\":{},\"subscriber_max_lag\":{},\
                 \"wal_flushes\":{},\"wal_degraded\":{},\"worker_failed\":{}}}",
                s.name,
                s.events,
                s.final_revision,
                s.final_patterns,
                s.pipeline.submitted_refreshes,
                s.pipeline.completed_refreshes,
                s.pipeline.coalesced_refreshes,
                s.pipeline.events_during_refresh,
                s.pipeline
                    .refresh_lag
                    .map_or_else(|| "null".to_owned(), |l| l.to_string()),
                s.pipeline.subscribers,
                s.pipeline.subscriber_delivered,
                s.pipeline.subscriber_dropped,
                s.pipeline.subscriber_max_lag,
                s.pipeline.wal_flushes,
                s.wal_degraded,
                s.worker_failed,
            )
        })
        .collect();
    let c = &report.counters;
    format!(
        "{{\"connections\":{},\"commands\":{},\"protocol_errors\":{},\
         \"events_accepted\":{},\"events_rejected\":{},\"queries\":{},\
         \"streams\":[{}]}}",
        c.connections,
        c.commands,
        c.protocol_errors,
        c.events_accepted,
        c.events_rejected,
        c.queries,
        streams.join(","),
    )
}
