//! The `client` subcommand: a scripting client for the service protocol.
//!
//! ```text
//! ptpminer-cli client --addr 127.0.0.1:7464 [--timeout SECS] [script]
//! ```
//!
//! `--timeout SECS` bounds both the TCP connect and every wait for a
//! response line, so a hung or unresponsive server fails the script with a
//! clear error instead of blocking forever. Asynchronous `REV` push lines
//! (from an active `SUBSCRIBE`) are printed as they arrive, before the
//! response they precede.
//!
//! Commands are read from the script file (or stdin with no positional /
//! `-`), sent to the server one at a time, and each response unit — a
//! single `OK`/`ERR` line or a whole `BEGIN n … END` block — is printed to
//! stdout. Blank lines and `#` comments are skipped, so scripts can be
//! annotated. After a `BATCH <stream> <n>` header the next `n` script
//! lines are forwarded verbatim as the batch payload (the server replies
//! once, after the whole batch).
//!
//! The exit code is 0 when every command got an `OK` (or block) response
//! and 2 if any command was answered with `ERR`, so shell scripts and e2e
//! tests can assert on protocol success without parsing output.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use crate::args::Parsed;
use crate::{emit_lines, exit};

/// Options the `client` subcommand accepts.
pub const OPTIONS: &[&str] = &["addr", "timeout"];

/// Connects, honouring `--timeout` for both name resolution targets and
/// the TCP handshake (a plain `connect` otherwise).
fn connect(addr: &str, timeout: Option<Duration>) -> Result<TcpStream, String> {
    let Some(limit) = timeout else {
        return TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"));
    };
    let targets: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| format!("connect {addr}: {e}"))?
        .collect();
    let mut last = None;
    for target in &targets {
        match TcpStream::connect_timeout(target, limit) {
            Ok(sock) => return Ok(sock),
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => format!("connect {addr}: {e} (within {limit:.1?})"),
        None => format!("connect {addr}: no usable address"),
    })
}

pub fn run(p: &Parsed) -> Result<ExitCode, String> {
    let addr = p
        .get("addr")
        .ok_or_else(|| "pass --addr HOST:PORT (the serve process's address)".to_string())?;
    let timeout = match p.opt_num::<f64>("timeout")? {
        Some(secs) if !secs.is_finite() || secs <= 0.0 || secs > 1e9 => {
            return Err(format!(
                "--timeout: `{secs}` is not a usable number of seconds"
            ));
        }
        Some(secs) => Some(Duration::from_secs_f64(secs)),
        None => None,
    };
    let script: Box<dyn Read> = match p.positional.as_slice() {
        [] => Box::new(std::io::stdin()),
        [path] if path == "-" => Box::new(std::io::stdin()),
        [path] => Box::new(std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?),
        _ => return Err("expected at most one script file".into()),
    };
    let sock = connect(addr, timeout)?;
    sock.set_read_timeout(timeout).map_err(|e| e.to_string())?;
    let mut replies = BufReader::new(sock.try_clone().map_err(|e| e.to_string())?);
    let mut sock = sock;

    let mut any_err = false;
    let mut script = BufReader::new(script);
    let mut line = String::new();
    loop {
        line.clear();
        match script.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("script: {e}")),
        }
        let command = line.trim_end();
        if command.is_empty() || command.starts_with('#') {
            continue;
        }
        sock.write_all(command.as_bytes())
            .and_then(|()| sock.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        // A BATCH header promises n payload lines before the server
        // answers; forward them from the script without reading replies.
        if let Some(count) = batch_count(command) {
            let mut payload = String::new();
            for _ in 0..count {
                payload.clear();
                match script.read_line(&mut payload) {
                    Ok(0) => return Err(format!("script ended inside a BATCH of {count} lines")),
                    Ok(_) => {}
                    Err(e) => return Err(format!("script: {e}")),
                }
                let trimmed = payload.trim_end();
                sock.write_all(trimmed.as_bytes())
                    .and_then(|()| sock.write_all(b"\n"))
                    .map_err(|e| format!("send: {e}"))?;
            }
        }
        any_err |= print_response(&mut replies, timeout)?;
        if command.to_ascii_uppercase().starts_with("QUIT") {
            break;
        }
    }
    if any_err {
        Ok(ExitCode::from(exit::USAGE))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// The payload line count of a `BATCH <stream> <n>` command, if it is one.
fn batch_count(command: &str) -> Option<usize> {
    let mut words = command.split_whitespace();
    if !words.next()?.eq_ignore_ascii_case("BATCH") {
        return None;
    }
    let _stream = words.next()?;
    words.next()?.parse().ok()
}

/// Reads one response unit and prints it; returns whether it was an `ERR`.
/// `REV` push lines arriving ahead of the response (possible with an
/// active `SUBSCRIBE`) are printed and skipped — they are never part of a
/// response unit.
fn print_response(
    replies: &mut BufReader<TcpStream>,
    timeout: Option<Duration>,
) -> Result<bool, String> {
    let mut head = read_reply_line(replies, timeout)?;
    while head.starts_with("REV ") {
        emit_lines(std::iter::once(head))?;
        head = read_reply_line(replies, timeout)?;
    }
    let is_err = head.starts_with("ERR");
    let mut out = vec![head.clone()];
    if let Some(rest) = head.strip_prefix("BEGIN ") {
        let count: usize = rest
            .split_whitespace()
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("malformed BEGIN header: {head}"))?;
        for _ in 0..count {
            out.push(read_reply_line(replies, timeout)?);
        }
        let end = read_reply_line(replies, timeout)?;
        if end != "END" {
            return Err(format!("unterminated block: expected END, got {end:?}"));
        }
        out.push(end);
    }
    emit_lines(out.into_iter())?;
    Ok(is_err)
}

fn read_reply_line(
    replies: &mut BufReader<TcpStream>,
    timeout: Option<Duration>,
) -> Result<String, String> {
    let mut line = String::new();
    match replies.read_line(&mut line) {
        Ok(0) => Err("server closed the connection".into()),
        Ok(_) => Ok(line.trim_end().to_owned()),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(format!(
                "recv: no response within {} — server hung or unreachable (--timeout)",
                timeout.map_or_else(|| "the timeout".to_owned(), |t| format!("{t:.1?}")),
            ))
        }
        Err(e) => Err(format!("recv: {e}")),
    }
}
