//! Process exit codes, shared by every subcommand.
//!
//! The codes form the CLI's machine-readable contract for degraded
//! operation (see the crate docs): anything other than [`SUCCESS`] that
//! still printed output printed a *sound partial result*.

use interval_core::Termination;
use std::process::ExitCode;

/// The run completed and the printed result is exhaustive.
pub const SUCCESS: u8 = 0;
/// The command line could not be understood (unknown command or option,
/// unreadable input, …). Nothing was mined.
pub const USAGE: u8 = 2;
/// A resource budget (deadline or node cap) was exhausted — a sound
/// partial result was printed.
pub const BUDGET: u8 = 3;
/// A worker thread failed — the surviving partitions were printed.
pub const WORKER_FAILED: u8 = 4;
/// The run itself completed, but durability degraded: the write-ahead log
/// stopped accepting writes (or a recovered log had corrupt records) and
/// the printed result covers in-memory state only. See
/// `docs/DURABILITY.md`, "Degraded mode".
pub const DEGRADED: u8 = 5;
/// Interrupted by Ctrl-C — a sound partial result was printed.
pub const INTERRUPTED: u8 = 130;

/// Maps how a mining run ended to the process exit code.
pub fn from_termination(termination: &Termination) -> ExitCode {
    match termination {
        Termination::Complete => ExitCode::from(SUCCESS),
        Termination::Cancelled => ExitCode::from(INTERRUPTED),
        Termination::WorkerFailed { .. } => ExitCode::from(WORKER_FAILED),
        _ => ExitCode::from(BUDGET),
    }
}

/// [`from_termination`], with the stream's sticky WAL-degraded flag folded
/// in. Degradation only upgrades a *successful* exit: a harder failure
/// (budget, worker death, Ctrl-C) keeps its own code — it already implies
/// the run needs attention, and those codes carry more information.
pub fn from_termination_degraded(termination: &Termination, wal_degraded: bool) -> ExitCode {
    if wal_degraded && matches!(termination, Termination::Complete) {
        ExitCode::from(DEGRADED)
    } else {
        from_termination(termination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let codes = [SUCCESS, USAGE, BUDGET, WORKER_FAILED, DEGRADED, INTERRUPTED];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(SUCCESS, 0);
        assert_eq!(DEGRADED, 5);
        assert_eq!(INTERRUPTED, 130, "128 + SIGINT by convention");
    }

    #[test]
    fn complete_maps_to_success() {
        assert_eq!(from_termination(&Termination::Complete), ExitCode::SUCCESS);
    }

    #[test]
    fn degradation_upgrades_success_but_not_harder_failures() {
        assert_eq!(
            from_termination_degraded(&Termination::Complete, true),
            ExitCode::from(DEGRADED)
        );
        assert_eq!(
            from_termination_degraded(&Termination::Complete, false),
            ExitCode::SUCCESS
        );
        assert_eq!(
            from_termination_degraded(&Termination::Cancelled, true),
            ExitCode::from(INTERRUPTED)
        );
        assert_eq!(
            from_termination_degraded(&Termination::WorkerFailed { roots: Vec::new() }, true),
            ExitCode::from(WORKER_FAILED)
        );
    }
}
