//! Ctrl-C handling via cooperative cancellation.
//!
//! The CLI does not pull in a signal-handling crate; on Unix it registers a
//! handler through the C `signal(2)` entry point declared here directly.
//! The handler does the only async-signal-safe thing possible — one atomic
//! store through a process-global [`CancellationToken`] — and every miner
//! observes the token at its next budget check, unwinds cleanly and lets
//! the CLI print the partial result before exiting with code 130.
//!
//! A second Ctrl-C while the first is still being honored falls back to the
//! default disposition (process termination), so a wedged run can always be
//! killed.

use interval_core::CancellationToken;
use std::sync::OnceLock;

static TOKEN: OnceLock<CancellationToken> = OnceLock::new();

/// Installs the SIGINT handler (idempotent) and returns the token it flips.
///
/// On non-Unix platforms this returns a token nothing ever cancels.
pub fn install() -> CancellationToken {
    let token = TOKEN.get_or_init(CancellationToken::new).clone();
    #[cfg(unix)]
    // SAFETY: `signal` is the C library entry point with the documented
    // signature, so the FFI call itself is sound. The registered handler
    // must restrict itself to async-signal-safe operations because it can
    // interrupt the process at any instruction — including inside malloc —
    // so it must not allocate, lock, or panic. `handle_sigint` honors this:
    // it performs one relaxed-ordering atomic store through the token and
    // re-registers a disposition, both async-signal-safe (POSIX
    // signal-safety(7)). The `TOKEN` cell is initialized by
    // `get_or_init` above *before* this registration, so the handler can
    // never observe an uninitialized cell, and `OnceLock::get` on the
    // initialized cell is a non-blocking read (no lock is taken once set).
    unsafe {
        signal(SIGINT, handle_sigint as *const () as usize);
    }
    token
}

#[cfg(unix)]
const SIGINT: i32 = 2;

#[cfg(unix)]
const SIG_DFL: usize = 0;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn handle_sigint(_signum: i32) {
    if let Some(token) = TOKEN.get() {
        token.cancel();
    }
    // Restore the default disposition: the *next* Ctrl-C kills the process
    // outright instead of re-requesting a cancellation already under way.
    // SAFETY: we are executing *inside* a signal handler, where only
    // async-signal-safe calls are permitted; `signal()` is on the POSIX
    // signal-safety(7) list, takes no locks and allocates nothing. SIG_DFL
    // is a constant disposition, not a callable, so no further handler code
    // runs after this line.
    unsafe {
        signal(SIGINT, SIG_DFL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_returns_the_same_token() {
        let a = install();
        let b = install();
        assert!(!a.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled(), "both handles must share one flag");
    }
}
