//! The `stream` subcommand: tail a file (or stdin) of interval events and
//! keep the frequent-pattern set continuously up to date.
//!
//! Each input line is one [`StreamEvent`] in the wire format of
//! [`interval_core::event`] (`open`/`close`/`interval`/`watermark` records;
//! blank lines and `#` comments are skipped). Events feed a
//! [`SlidingWindowDatabase`]; every `--refresh-every` watermarks a refresh
//! trigger fires and the [`IncrementalMiner`] re-mines the dirty partitions,
//! printing a one-line snapshot summary to stderr. `--max-lag T` replaces
//! the periodic trigger with an adaptive one: refresh only once the
//! published snapshot trails the live watermark by more than `T` time
//! units. At end of input (or on Ctrl-C / `--timeout`) the final pattern
//! set is printed to stdout and throughput statistics to stderr.
//!
//! # Pipelined refreshes (default)
//!
//! By default refreshes run on a background [`RefreshWorker`] while
//! ingestion continues: a trigger freezes the window (cheap, `Arc`-shared
//! indexes) and hands the epoch to the worker; triggers arriving while a
//! refresh is still in flight are *coalesced* into the next epoch (see
//! `docs/STREAMING.md`). `--refresh-workers N` shards each refresh's
//! dirty roots across a pool of `N` mining workers (LPT-balanced,
//! bit-identical output; see `docs/STREAMING.md` for sizing). `--sync-refresh` restores the PR 2 behaviour
//! (ingestion stalls during each refresh) — useful for debugging and as
//! the equivalence baseline; `--pipeline` names the default explicitly.
//! The final pattern set is identical either way.
//!
//! Degraded operation matches the batch commands: a truncated run still
//! prints a sound partial result (exact supports, possibly incomplete) and
//! reports the truncation through the exit code. SIGINT and `--timeout`
//! cancel an in-flight background refresh through its budget token and
//! join the worker before exiting.
//!
//! # Durability (`--wal-dir`)
//!
//! With `--wal-dir DIR` every event is appended to a checksummed
//! write-ahead log *before* ingestion ([`stream::Journal`]), so a crashed
//! stream can be rebuilt with `recover DIR --window W`. `--fsync` picks
//! the durability/throughput trade-off (`always`, `epoch`, `never` — see
//! `docs/DURABILITY.md`). If the log stops accepting writes the stream
//! keeps running from memory and reports the degradation via a sticky
//! warning, the `wal:` summary and exit code 5.
//!
//! # Cold storage (`--segment-dir`)
//!
//! With `--segment-dir DIR` everything the watermark evicts is *sealed*
//! instead of lost: evicted (and late-dropped) intervals buffer in a
//! [`segment::SegmentStore`] and seal into immutable checksummed segment
//! files once `--segment-bytes` worth accumulates (plus a forced seal at
//! shutdown covering the final window contents). WAL reclaim is then
//! re-tied to what is **sealed and fsynced** — never merely evicted — so
//! the union of WAL + segments always holds every event. Historical
//! ranges mine back out of DIR with the `history` subcommand. See
//! `docs/STORAGE.md`.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use durability::FsyncPolicy;
use interval_core::{CancellationToken, MiningBudget, StreamEvent, Termination};
use segment::{SegmentOptions, SegmentStore};
use stream::{
    IncrementalMiner, Journal, PatternSnapshot, PipelineStats, RefreshJob, RefreshWorker,
    SlidingWindowDatabase, SnapshotCell,
};
use tpminer::MinerConfig;

use crate::args::{self, Parsed};
use crate::{emit_lines, exit, sigint};

/// Options every `stream` invocation may use (checked by `expect_options`).
pub const OPTIONS: &[&str] = &[
    "window",
    "min-support",
    "abs-support",
    "max-arity",
    "gap",
    "refresh-every",
    "refresh-workers",
    "max-lag",
    "threads",
    "timeout",
    "json",
    "pipeline",
    "sync-refresh",
    "wal-dir",
    "fsync",
    "segment-dir",
    "segment-bytes",
    "stats-json",
];

/// How the support threshold is chosen at each refresh.
pub(crate) enum Threshold {
    /// A fixed absolute count.
    Absolute(usize),
    /// A fraction of the sequences currently in the window, re-derived at
    /// every refresh (at least 1). Changing thresholds force a full
    /// re-mine, so a refresh after a window-size change may be full.
    Fraction(f64),
}

impl Threshold {
    pub(crate) fn absolute_for(&self, sequences: usize) -> usize {
        match *self {
            Threshold::Absolute(n) => n,
            Threshold::Fraction(f) => ((f * sequences as f64).ceil() as usize).max(1),
        }
    }
}

/// The fsync policy from `--fsync`, with did-you-mean suggestions for
/// typos. Shared by `stream` (per-run WAL) and `serve` (per-stream WALs).
pub(crate) fn fsync_from(p: &Parsed) -> Result<FsyncPolicy, String> {
    match p.get("fsync") {
        None => Ok(FsyncPolicy::Epoch),
        Some(value) => FsyncPolicy::parse(value).ok_or_else(|| {
            let mut message = format!(
                "--fsync: unknown policy `{value}` (one of: {})",
                FsyncPolicy::NAMES.join(", ")
            );
            if let Some(suggestion) = args::suggest_value(value, FsyncPolicy::NAMES) {
                message.push_str(&format!(" (did you mean `{suggestion}`?)"));
            }
            message
        }),
    }
}

/// The support threshold from `--abs-support` / `--min-support`, if either
/// was given (`stream` requires one; `recover` mines only when asked).
pub(crate) fn threshold_from(p: &Parsed) -> Result<Option<Threshold>, String> {
    match (
        p.opt_num::<usize>("abs-support")?,
        p.opt_num::<f64>("min-support")?,
    ) {
        (Some(n), _) => Ok(Some(Threshold::Absolute(n))),
        (None, Some(frac)) => Ok(Some(Threshold::Fraction(frac))),
        (None, None) => Ok(None),
    }
}

/// Where refreshes run: inline on the ingest thread, or on the background
/// worker with the ingest thread only freezing epochs.
enum Engine {
    Sync(IncrementalMiner),
    Pipelined(RefreshWorker),
}

pub fn run(p: &Parsed) -> Result<ExitCode, String> {
    let window_len: i64 = p
        .opt_num::<i64>("window")?
        .ok_or_else(|| "pass --window W (sliding-window length in time units)".to_string())?;
    if window_len <= 0 {
        return Err(format!("--window: `{window_len}` must be positive"));
    }
    let threshold = threshold_from(p)?
        .ok_or_else(|| "pass --min-support FRAC or --abs-support N".to_string())?;
    let refresh_every = p.num::<u64>("refresh-every", 1)?;
    if refresh_every == 0 {
        return Err("--refresh-every: must be at least 1".into());
    }
    let max_lag = p.opt_num::<i64>("max-lag")?;
    if max_lag.is_some_and(|l| l < 0) {
        return Err("--max-lag: must be non-negative".into());
    }
    if max_lag.is_some() && p.get("refresh-every").is_some() {
        return Err(
            "--max-lag and --refresh-every are mutually exclusive (adaptive vs periodic trigger)"
                .into(),
        );
    }
    if p.flag("pipeline") && p.flag("sync-refresh") {
        return Err("--pipeline and --sync-refresh are mutually exclusive".into());
    }
    let pipelined = !p.flag("sync-refresh");
    let refresh_workers = p.num::<usize>("refresh-workers", 1)?.max(1);
    if refresh_workers > 1 && !pipelined {
        return Err("--refresh-workers needs the pipelined engine (drop --sync-refresh)".into());
    }
    let fsync_policy = fsync_from(p)?;
    if p.get("fsync").is_some() && p.get("wal-dir").is_none() {
        return Err("--fsync needs --wal-dir (there is no log to sync without one)".into());
    }
    if p.get("segment-bytes").is_some() && p.get("segment-dir").is_none() {
        return Err(
            "--segment-bytes needs --segment-dir (there is no store to seal without one)".into(),
        );
    }
    let mut config = MinerConfig::default();
    if let Some(k) = p.opt_num::<usize>("max-arity")? {
        config = config.max_arity(k);
    }
    if let Some(g) = p.opt_num::<i64>("gap")? {
        config = config.max_gap(g);
    }

    let token = sigint::install();
    let deadline = match p.opt_num::<f64>("timeout")? {
        Some(secs) if !secs.is_finite() || secs < 0.0 || secs > 1e15 => {
            return Err(format!(
                "--timeout: `{secs}` is not a usable number of seconds"
            ));
        }
        Some(secs) => Some(Instant::now() + Duration::from_secs_f64(secs)),
        None => None,
    };

    let path = p.input()?;
    let mut reader: Box<dyn BufRead> = if path == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        Box::new(std::io::BufReader::new(file))
    };

    let mut window = SlidingWindowDatabase::new(window_len);
    let mut journal: Option<Journal> = match p.get("wal-dir") {
        Some(dir) => Some(
            Journal::open(dir, window_len, fsync_policy)
                .map_err(|e| format!("--wal-dir {dir}: {e}"))?,
        ),
        None => None,
    };
    let mut store: Option<SegmentStore> = match p.get("segment-dir") {
        Some(dir) => {
            let mut options = SegmentOptions::default();
            if let Some(bytes) = p.opt_num::<usize>("segment-bytes")? {
                if bytes == 0 {
                    return Err("--segment-bytes: must be at least 1".into());
                }
                options.seal_bytes = bytes;
            }
            Some(
                SegmentStore::open(dir, options)
                    .map_err(|e| format!("--segment-dir {dir}: {e}"))?,
            )
        }
        None => None,
    };
    if store.is_some() {
        window.retain_evicted(true);
    }
    let mut seal_warned = false;
    let miner = IncrementalMiner::new(config, p.num::<usize>("threads", 0)?);
    let cell = Arc::new(SnapshotCell::new());
    let mut engine = if pipelined {
        Engine::Pipelined(RefreshWorker::spawn_pool(
            miner,
            Arc::clone(&cell),
            refresh_workers,
        ))
    } else {
        Engine::Sync(miner.with_cell(Arc::clone(&cell)))
    };
    let started = Instant::now();
    let mut watermarks = 0u64;
    let mut full_refreshes = 0u64;
    let mut latest: Option<Arc<PatternSnapshot>> = None;
    // Why the tail stopped before end of input, if it did.
    let mut stopped: Option<Termination> = None;

    let mut line = String::new();
    let mut idx = 0usize;
    loop {
        if token.is_cancelled() {
            stopped = Some(Termination::Cancelled);
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            stopped = Some(Termination::DeadlineExceeded);
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            // A zero-byte read is end of input — the file ended or the
            // writer closed the pipe. It is *final*: break straight to the
            // wind-down (WAL flush + final refresh); retrying would spin
            // on zero-byte reads forever.
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A non-blocking stdin (inherited from some process
                // managers) signals "no data yet", not EOF: back off
                // briefly instead of busy-polling.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => {
                // A hard read error mid-tail behaves like EOF with a
                // warning: everything accepted so far still gets its
                // final flush + refresh instead of being thrown away.
                eprintln!("warning: {path}: {e} — treating as end of input");
                break;
            }
        }
        idx += 1;
        let Some(event) = StreamEvent::parse_line(&line, idx).map_err(|e| e.to_string())? else {
            continue;
        };
        let is_watermark = matches!(event, StreamEvent::Watermark(_));
        // Write-ahead: the journal sees the event before the window does,
        // so the durable log is always a superset of ingested state.
        if let Some(journal) = journal.as_mut() {
            let was_degraded = journal.is_degraded();
            if !journal.append(&event) && !was_degraded {
                eprintln!(
                    "warning: WAL degraded — continuing in-memory only ({})",
                    journal.degraded_reason().unwrap_or("unknown failure"),
                );
                if let Engine::Pipelined(worker) = &engine {
                    worker.note_wal_degraded();
                }
            }
        }
        window
            .ingest(event)
            .map_err(|e| format!("line {idx}: {e}"))?;
        if let Engine::Pipelined(worker) = &engine {
            if worker.is_busy() {
                worker.note_events_during_refresh(1);
            }
        }
        if is_watermark {
            watermarks += 1;
            // Cold storage first: the intervals this watermark evicted
            // spill into the segment store, which may seal; only then may
            // the WAL reclaim — and never past what the store has sealed
            // and fsynced (`reclaim_bound`), so the union of WAL +
            // segments always covers every event.
            if let Some(store) = store.as_mut() {
                spill_evicted(store, &mut window);
                seal_and_note(store, &engine, false, &mut seal_warned);
            }
            if let (Some(journal), Some(cutoff)) = (journal.as_mut(), window.cutoff()) {
                let bound = match store.as_mut() {
                    Some(store) => store.reclaim_bound(cutoff),
                    None => cutoff,
                };
                journal.reclaim(bound);
            }
            // With --max-lag the trigger is adaptive: refresh only once
            // the published snapshot trails the live watermark by more
            // than the bound (a never-published stream qualifies at
            // once). Otherwise every --refresh-every'th watermark fires.
            let due = match max_lag {
                Some(bound) => match (window.watermark(), cell.load().watermark) {
                    (Some(live), Some(done)) => live.saturating_sub(done) > bound,
                    (Some(_), None) => true,
                    (None, _) => false,
                },
                None => watermarks % refresh_every == 0,
            };
            if due {
                match &mut engine {
                    Engine::Sync(miner) => {
                        let snapshot = refresh(miner, &mut window, &threshold, &token, deadline);
                        collect(p, started, snapshot, &mut full_refreshes, &mut latest)?;
                    }
                    Engine::Pipelined(worker) => {
                        for snapshot in worker.drain_completed() {
                            collect(p, started, snapshot, &mut full_refreshes, &mut latest)?;
                        }
                        worker.submit_or_coalesce(|| RefreshJob {
                            min_support: Some(threshold.absolute_for(window.len())),
                            view: window.freeze(),
                            budget: budget_for(&token, deadline),
                        });
                    }
                }
            }
        }
    }

    // Shutdown spill: the window's remaining contents will never be
    // evicted now, so persist them (plus any undrained evictions) and
    // force a final seal — the segment directory then covers every
    // completed interval the stream saw, and `history` over it matches
    // an offline `mine` of the same events.
    if let Some(store) = store.as_mut() {
        spill_evicted(store, &mut window);
        let live: Vec<_> = window.completed_intervals().collect();
        for (sequence, iv) in live {
            store.append(sequence, window.symbols().name(iv.symbol), iv.start, iv.end);
        }
        seal_and_note(store, &engine, true, &mut seal_warned);
    }

    // Wind the pipeline down: the worker finishes (or, with a cancelled
    // token / expired deadline, promptly aborts) its in-flight refresh,
    // then hands the miner back for the finale on this thread.
    let (mut miner, pipeline_stats): (Option<IncrementalMiner>, Option<PipelineStats>) =
        match engine {
            Engine::Sync(miner) => {
                // The sync path has no worker to flush through; push the
                // buffered tail to stable storage before the finale.
                if let Some(journal) = journal.as_mut() {
                    journal.flush();
                }
                (Some(miner), None)
            }
            Engine::Pipelined(worker) => {
                let outcome = match journal.as_mut() {
                    Some(journal) => worker.shutdown_flushing(journal),
                    None => worker.shutdown(),
                };
                for snapshot in outcome.unreported {
                    collect(p, started, snapshot, &mut full_refreshes, &mut latest)?;
                }
                (outcome.miner, Some(outcome.stats))
            }
        };
    let worker_failed = pipelined && miner.is_none();

    // A final refresh folds in everything after the last refresh point —
    // unless the tail was interrupted, where re-mining would be pointless
    // (the budget is already spent); the last published snapshot stands.
    // If the background worker died, the last published snapshot is all
    // there is.
    let finale = if let Some(miner) = miner.as_mut() {
        match (&stopped, latest) {
            (None, _) | (Some(_), None) => {
                let snapshot = refresh(miner, &mut window, &threshold, &token, deadline);
                if snapshot.refresh.full {
                    full_refreshes += 1;
                }
                report_refresh(p, &snapshot, started)?;
                snapshot
            }
            (Some(_), Some(snapshot)) => snapshot,
        }
    } else {
        latest.unwrap_or_else(|| cell.load())
    };

    let elapsed = started.elapsed();
    let stats = window.stats();
    let rate = stats.events as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "ingested {} events ({} intervals, {} late-dropped, {} evicted) in {:.2?} — {:.0} events/s",
        stats.events,
        stats.intervals_completed,
        stats.late_intervals_dropped,
        stats.intervals_evicted,
        elapsed,
        rate,
    );
    let revisions = miner
        .as_ref()
        .map_or_else(|| cell.load().revision, |m| m.revision());
    eprintln!(
        "{} refreshes ({} full); window now holds {} sequences, {} open intervals",
        revisions,
        full_refreshes,
        window.len(),
        window.open_intervals(),
    );
    if let Some(pstats) = &pipeline_stats {
        let lag = match (window.watermark(), finale.watermark) {
            (Some(live), Some(done)) => (live.saturating_sub(done)).to_string(),
            _ => "-".into(),
        };
        let wal_suffix = if journal.is_some() {
            let marker = if pstats.wal_degraded {
                " [WAL DEGRADED]"
            } else {
                ""
            };
            format!(", {} wal flushes{marker}", pstats.wal_flushes)
        } else {
            String::new()
        };
        eprintln!(
            "pipeline: {} background refreshes ({} coalesced), {} events during refresh, \
             refresh lag {lag}{wal_suffix}",
            pstats.completed_refreshes, pstats.coalesced_refreshes, pstats.events_during_refresh,
        );
    }
    if let Some(journal) = &journal {
        let js = journal.stats();
        eprintln!(
            "wal: {} records ({} bytes, {} writes, {} fsyncs, {} retries), \
             {} segments sealed ({} reclaimed), {} flushes — {}",
            js.wal.records_appended,
            js.wal.bytes_written,
            js.wal.writes,
            js.wal.syncs,
            js.wal.retries,
            js.wal.segments_sealed,
            js.wal.segments_reclaimed,
            js.flushes,
            if js.degraded { "DEGRADED" } else { "healthy" },
        );
    }
    if let Some(store) = &store {
        let ss = store.stats();
        eprintln!(
            "segments: {} sealed ({} records, {} bytes, {} failures, {} skipped), \
             sealed through {} — {}",
            ss.segments_sealed,
            ss.records_sealed,
            ss.bytes_sealed,
            ss.seal_failures,
            ss.appends_skipped,
            store
                .sealed_through()
                .map_or_else(|| "-".into(), |t| t.to_string()),
            if store.is_degraded() {
                "DEGRADED"
            } else {
                "healthy"
            },
        );
    }
    if worker_failed {
        eprintln!("warning: background refresh worker failed; last published snapshot stands");
    }
    if p.flag("stats-json") {
        // Hand-built JSON (numbers and booleans only, so no escaping is
        // needed): one machine-readable line for integration tests and
        // ops tooling, instead of scraping the human summary above.
        let pipeline = match &pipeline_stats {
            None => "null".to_owned(),
            Some(ps) => format!(
                "{{\"submitted\":{},\"completed\":{},\"coalesced\":{},\
                 \"events_during_refresh\":{},\"refresh_lag\":{},\
                 \"subscribers\":{},\"subscriber_delivered\":{},\
                 \"subscriber_dropped\":{},\"subscriber_max_lag\":{},\
                 \"wal_flushes\":{},\"wal_degraded\":{},\
                 \"segments_sealed\":{},\"segment_records\":{},\
                 \"segment_bytes\":{},\"segment_seal_failures\":{}}}",
                ps.submitted_refreshes,
                ps.completed_refreshes,
                ps.coalesced_refreshes,
                ps.events_during_refresh,
                ps.refresh_lag
                    .map_or_else(|| "null".to_owned(), |l| l.to_string()),
                ps.subscribers,
                ps.subscriber_delivered,
                ps.subscriber_dropped,
                ps.subscriber_max_lag,
                ps.wal_flushes,
                ps.wal_degraded,
                ps.segments_sealed,
                ps.segment_records,
                ps.segment_bytes,
                ps.segment_seal_failures,
            ),
        };
        let seg = match &store {
            None => "null".to_owned(),
            Some(store) => {
                let ss = store.stats();
                format!(
                    "{{\"segments_sealed\":{},\"records_sealed\":{},\"bytes_sealed\":{},\
                     \"seal_failures\":{},\"appends_skipped\":{},\"segments_adopted\":{},\
                     \"partials_deleted\":{},\"seal_micros\":{},\"sealed_through\":{},\
                     \"degraded\":{}}}",
                    ss.segments_sealed,
                    ss.records_sealed,
                    ss.bytes_sealed,
                    ss.seal_failures,
                    ss.appends_skipped,
                    ss.segments_adopted,
                    ss.partials_deleted,
                    ss.seal_micros,
                    store
                        .sealed_through()
                        .map_or_else(|| "null".to_owned(), |t| t.to_string()),
                    store.is_degraded(),
                )
            }
        };
        let wal = match &journal {
            None => "null".to_owned(),
            Some(j) => {
                let js = j.stats();
                format!(
                    "{{\"records\":{},\"bytes\":{},\"syncs\":{},\"segments_sealed\":{},\
                     \"segments_reclaimed\":{},\"flushes\":{},\"degraded\":{}}}",
                    js.wal.records_appended,
                    js.wal.bytes_written,
                    js.wal.syncs,
                    js.wal.segments_sealed,
                    js.wal.segments_reclaimed,
                    js.flushes,
                    js.degraded,
                )
            }
        };
        eprintln!(
            "{{\"events\":{},\"intervals\":{},\"late_dropped\":{},\"evicted\":{},\
             \"watermarks\":{watermarks},\"sequences\":{},\"open_intervals\":{},\
             \"revision\":{},\"patterns\":{},\"full_refreshes\":{full_refreshes},\
             \"elapsed_ms\":{},\"worker_failed\":{worker_failed},\
             \"pipeline\":{pipeline},\"wal\":{wal},\"segment\":{seg}}}",
            stats.events,
            stats.intervals_completed,
            stats.late_intervals_dropped,
            stats.intervals_evicted,
            window.len(),
            window.open_intervals(),
            finale.revision,
            finale.result.len(),
            elapsed.as_millis(),
        );
    }

    render_final(p, &finale)?;
    let termination = if worker_failed {
        Termination::WorkerFailed { roots: Vec::new() }
    } else {
        stopped.unwrap_or_else(|| finale.result.termination().clone())
    };
    if !termination.is_complete() {
        eprintln!(
            "note: {termination} — partial result: reported supports are exact, \
             but the pattern set may be incomplete"
        );
    }
    let wal_degraded = journal.as_ref().map_or(false, |j| j.is_degraded());
    if wal_degraded && termination.is_complete() {
        eprintln!(
            "note: durability degraded — the printed result is complete in memory, \
             but events after the WAL failure were not persisted (exit code {})",
            exit::DEGRADED,
        );
    }
    let seg_degraded = store.as_ref().map_or(false, |s| s.is_degraded());
    if seg_degraded && !wal_degraded && termination.is_complete() {
        eprintln!(
            "note: segment store degraded — evicted intervals after the seal failure \
             were not persisted to cold storage; the WAL (reclaim frozen at the durable \
             floor) still holds them (exit code {})",
            exit::DEGRADED,
        );
    }
    Ok(exit::from_termination_degraded(
        &termination,
        wal_degraded || seg_degraded,
    ))
}

/// Drains the window's captured evictions (watermark evictions and
/// late-arrival drops) into the segment store.
fn spill_evicted(store: &mut SegmentStore, window: &mut SlidingWindowDatabase) {
    for (sequence, iv) in window.take_evicted() {
        store.append(sequence, window.symbols().name(iv.symbol), iv.start, iv.end);
    }
}

/// Runs a seal (forced at shutdown, threshold-gated otherwise) and
/// forwards the per-seal deltas to the pipeline counters; warns once on
/// the first failure.
fn seal_and_note(store: &mut SegmentStore, engine: &Engine, force: bool, warned: &mut bool) {
    let before = store.stats().clone();
    let ran = if force {
        store.seal();
        true
    } else {
        store.maybe_seal()
    };
    if !ran {
        return;
    }
    let after = store.stats();
    if let Engine::Pipelined(worker) = engine {
        if after.segments_sealed > before.segments_sealed {
            worker.note_segment_seal(
                after.records_sealed - before.records_sealed,
                after.bytes_sealed - before.bytes_sealed,
            );
        }
        if after.seal_failures > before.seal_failures {
            worker.note_segment_seal_failure();
        }
    }
    if store.is_degraded() && !*warned {
        *warned = true;
        eprintln!(
            "warning: segment store degraded — WAL reclaim frozen at the durable floor ({})",
            store.degraded_reason().unwrap_or("unknown failure"),
        );
    }
}

/// Counts and reports one refreshed snapshot, remembering it as the latest.
fn collect(
    p: &Parsed,
    started: Instant,
    snapshot: Arc<PatternSnapshot>,
    full_refreshes: &mut u64,
    latest: &mut Option<Arc<PatternSnapshot>>,
) -> Result<(), String> {
    if snapshot.refresh.full {
        *full_refreshes += 1;
    }
    report_refresh(p, &snapshot, started)?;
    *latest = Some(snapshot);
    Ok(())
}

/// The budget for one refresh: the shared SIGINT token plus whatever is
/// left of the `--timeout` deadline.
fn budget_for(token: &CancellationToken, deadline: Option<Instant>) -> MiningBudget {
    let mut budget = MiningBudget::unlimited().with_token(token.clone());
    if let Some(d) = deadline {
        budget = budget.with_timeout(d.saturating_duration_since(Instant::now()));
    }
    budget
}

/// One incremental refresh under the remaining budget, with the support
/// threshold re-derived from the current window size.
fn refresh(
    miner: &mut IncrementalMiner,
    window: &mut SlidingWindowDatabase,
    threshold: &Threshold,
    token: &CancellationToken,
    deadline: Option<Instant>,
) -> Arc<PatternSnapshot> {
    miner.set_min_support(threshold.absolute_for(window.len()));
    miner.refresh_with_budget(window, budget_for(token, deadline))
}

/// One stderr line per refresh: what the window looked like and how much
/// work the refresh needed.
fn report_refresh(p: &Parsed, s: &PatternSnapshot, started: Instant) -> Result<(), String> {
    if p.flag("json") {
        let line = serde_json::json!({
            "revision": s.revision,
            "watermark": s.watermark,
            "window_start": s.window_start,
            "sequences": s.sequences,
            "patterns": s.result.len(),
            "full": s.refresh.full,
            "dirty_roots": s.refresh.dirty_roots,
            "carried_patterns": s.refresh.carried_patterns,
            "mined_patterns": s.refresh.mined_patterns,
            "elapsed_ms": started.elapsed().as_millis() as u64,
        })
        .to_string();
        eprintln!("{line}");
    } else {
        let kind = if s.refresh.full {
            "full"
        } else {
            "incremental"
        };
        eprintln!(
            "[rev {}] watermark {} | {} sequences, {} patterns ({kind}: {} dirty roots, \
             {} mined, {} carried)",
            s.revision,
            s.watermark.map_or_else(|| "-".into(), |w| w.to_string()),
            s.sequences,
            s.result.len(),
            s.refresh.dirty_roots,
            s.refresh.mined_patterns,
            s.refresh.carried_patterns,
        );
    }
    Ok(())
}

/// The final pattern set, on stdout, in the same shape as `mine`. Also
/// used by `recover` when asked to mine the rebuilt window.
pub(crate) fn render_final(p: &Parsed, s: &PatternSnapshot) -> Result<(), String> {
    if p.flag("json") {
        emit_lines(s.result.patterns().iter().map(|fp| {
            serde_json::json!({
                "pattern": fp.pattern.display(&s.symbols).to_string(),
                "support": fp.support,
                "arity": fp.pattern.arity(),
                "kind": "frequent",
            })
            .to_string()
        }))
    } else {
        let header = format!("frequent patterns: {}", s.result.len());
        emit_lines(
            std::iter::once(header).chain(s.result.patterns().iter().map(|fp| {
                format!(
                    "  {}   (support {})",
                    fp.pattern.display(&s.symbols),
                    fp.support
                )
            })),
        )
    }
}
