//! The `recover` subcommand: rebuild a crashed stream's sliding window
//! from its write-ahead log.
//!
//! `recover DIR --window W` replays the log segments under `DIR` (written
//! by `stream --wal-dir DIR`) through the exact ingest semantics of the
//! live stream, so the rebuilt window is bit-identical to the pre-crash
//! one over the durable prefix. A torn final record — the normal signature
//! of a crash mid-write — is truncated silently; a bad checksum *inside*
//! the log stops replay at the last trustworthy record and reports what
//! was dropped. `--verify` scans integrity without replaying (no
//! `--window` needed), and `--min-support`/`--abs-support` additionally
//! mine the recovered window, printing patterns in the same shape as
//! `mine`. See `docs/DURABILITY.md` for the full recovery semantics.
//!
//! Exit codes: 0 when the log was clean (a torn tail alone still counts
//! as clean — nothing durable was lost), 5 when corruption made recovery
//! stop early (the printed result covers the prefix only).

use std::path::Path;
use std::process::ExitCode;

use durability::{scan_wal, RecoveryReport, StdFs};
use interval_core::StreamEvent;
use stream::IncrementalMiner;
use tpminer::MinerConfig;

use crate::args::Parsed;
use crate::{exit, stream_cmd};

/// Options every `recover` invocation may use (checked by `expect_options`).
pub const OPTIONS: &[&str] = &[
    "window",
    "min-support",
    "abs-support",
    "max-arity",
    "gap",
    "threads",
    "json",
    "verify",
];

pub fn run(p: &Parsed) -> Result<ExitCode, String> {
    let dir = p.input()?;

    if p.flag("verify") {
        // Integrity scan only: decode every record, check every checksum,
        // touch nothing.
        let (events, report) =
            scan_wal(&StdFs, Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
        report_scan(dir, &report);
        // The segment-reclaim watermark documented in docs/DURABILITY.md
        // §2: the highest watermark in the durable prefix. WAL segments
        // wholly below the eviction cutoff this watermark implies are the
        // ones a live stream would have reclaimed.
        let watermark = events.iter().rev().find_map(|e| match e {
            StreamEvent::Watermark(t) => Some(*t),
            _ => None,
        });
        eprintln!(
            "segment-reclaim watermark: {}",
            watermark.map_or_else(|| "-".to_owned(), |t| t.to_string()),
        );
        println!(
            "verify: {} records decode cleanly across {} segments{}",
            events.len(),
            report.segments,
            if report.is_clean() {
                ""
            } else {
                " (log is NOT clean — see above)"
            },
        );
        return Ok(exit_for(&report));
    }

    let window_len: i64 = p.opt_num::<i64>("window")?.ok_or_else(|| {
        "pass --window W (the live stream's window length) or --verify to scan only".to_string()
    })?;
    if window_len <= 0 {
        return Err(format!("--window: `{window_len}` must be positive"));
    }

    let mut outcome =
        stream::durable::replay(dir, window_len).map_err(|e| format!("{dir}: {e}"))?;
    report_scan(dir, &outcome.report);
    if outcome.records_rejected > 0 {
        eprintln!(
            "recover: {} records decoded but were refused by ingest semantics \
             (the live run refused them identically)",
            outcome.records_rejected,
        );
    }
    let stats = outcome.window.stats();
    eprintln!(
        "recovered window: {} sequences, {} open intervals, watermark {} \
         ({} events replayed: {} intervals, {} late-dropped, {} evicted)",
        outcome.window.len(),
        outcome.window.open_intervals(),
        outcome
            .window
            .watermark()
            .map_or_else(|| "-".into(), |w| w.to_string()),
        stats.events,
        stats.intervals_completed,
        stats.late_intervals_dropped,
        stats.intervals_evicted,
    );

    // Mine the rebuilt window when a threshold was given — the same
    // snapshot the crashed stream's next refresh would have published.
    if let Some(threshold) = stream_cmd::threshold_from(p)? {
        let mut config = MinerConfig::default();
        if let Some(k) = p.opt_num::<usize>("max-arity")? {
            config = config.max_arity(k);
        }
        if let Some(g) = p.opt_num::<i64>("gap")? {
            config = config.max_gap(g);
        }
        let mut miner = IncrementalMiner::new(config, p.num::<usize>("threads", 0)?);
        miner.set_min_support(threshold.absolute_for(outcome.window.len()));
        let snapshot = miner.refresh(&mut outcome.window);
        stream_cmd::render_final(p, &snapshot)?;
    }

    Ok(exit_for(&outcome.report))
}

/// What the scan found, on stderr: one summary line, plus detail lines for
/// a torn tail (normal after a crash) and for corruption (data loss).
fn report_scan(dir: &str, report: &RecoveryReport) {
    eprintln!(
        "scanned {}: {} segments, {} bytes, {} records",
        dir, report.segments, report.bytes_scanned, report.records_replayed,
    );
    if report.torn_tail_bytes > 0 {
        eprintln!(
            "torn tail: final {} bytes end inside a frame (normal after a crash \
             mid-write) — truncated",
            report.torn_tail_bytes,
        );
    }
    if let Some(corruption) = &report.corruption {
        eprintln!(
            "CORRUPTION in {} at offset {}: {}",
            corruption.segment.display(),
            corruption.offset,
            corruption.reason,
        );
        eprintln!(
            "replay stopped at the last trustworthy record; {} later records \
             ({} bytes) dropped",
            report.records_dropped, report.bytes_dropped,
        );
    }
}

/// Clean (torn tail included) → success; corruption → degraded.
fn exit_for(report: &RecoveryReport) -> ExitCode {
    if report.corruption.is_some() {
        ExitCode::from(exit::DEGRADED)
    } else {
        ExitCode::from(exit::SUCCESS)
    }
}
