//! `ptpminer-cli` — command-line interface to the P-TPMiner system.
//!
//! ```text
//! ptpminer-cli generate --sequences 1000 --symbols 100 --seed 7 --out data.txt
//! ptpminer-cli stats data.txt
//! ptpminer-cli mine data.txt --min-support 0.1 --closed
//! ptpminer-cli mine data.txt --top-k 20
//! ptpminer-cli mine-prob data.csv --min-esup 0.1
//! ```
//!
//! Input formats are auto-detected: `.csv` files use the long format
//! (`sequence,symbol,start,end[,probability]`); anything else uses the
//! native text format (one sequence per line; see `datasets::io`).

mod args;

use args::Parsed;
use interval_core::{IntervalDatabase, UncertainDatabase};
use std::path::Path;
use std::process::ExitCode;
use tpminer::{
    closed_patterns, maximal_patterns, mine_top_k, MinerConfig, ProbabilisticConfig,
    ProbabilisticMiner, TopKConfig, TpMiner,
};

const USAGE: &str = "\
usage: ptpminer-cli <command> [options]

commands:
  generate   produce a QUEST-style synthetic dataset
             --sequences N --intervals C --symbols N --patterns N --seed S
             --uncertain  --format text|csv  --out FILE (stdout otherwise)
  stats      summarize a dataset
             <file> [--json]
  mine       mine frequent temporal patterns
             <file> --min-support FRAC | --abs-support N
             [--max-arity K] [--window W] [--gap G] [--closed] [--maximal]
             [--top-k K] [--rules CONF] [--explain] [--json]
  mine-prob  mine probabilistic patterns from uncertain data
             <file> --min-esup FRAC [--json]
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let parsed = args::parse(argv)?;
    if parsed.flag("help") || parsed.command.is_empty() {
        print!("{USAGE}");
        return Ok(());
    }
    match parsed.command.as_str() {
        "generate" => {
            parsed.expect_options(&[
                "sequences", "intervals", "symbols", "patterns", "seed", "uncertain", "format",
                "out",
            ])?;
            generate(&parsed)
        }
        "stats" => {
            parsed.expect_options(&["json"])?;
            stats(&parsed)
        }
        "mine" => {
            parsed.expect_options(&[
                "min-support", "abs-support", "max-arity", "window", "gap", "closed", "maximal",
                "top-k", "rules", "explain", "json",
            ])?;
            mine(&parsed)
        }
        "mine-prob" => {
            parsed.expect_options(&["min-esup", "json"])?;
            mine_prob(&parsed)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_database(path: &str) -> Result<IntervalDatabase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let db = if Path::new(path).extension().is_some_and(|e| e == "csv") {
        datasets::csv::read_long_csv(&text)
    } else {
        datasets::io::read_database(&text)
    };
    db.map_err(|e| format!("{path}: {e}"))
}

fn load_uncertain(path: &str) -> Result<UncertainDatabase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let db = if Path::new(path).extension().is_some_and(|e| e == "csv") {
        datasets::csv::read_long_csv_uncertain(&text)
    } else {
        datasets::io::read_uncertain_database(&text)
    };
    db.map_err(|e| format!("{path}: {e}"))
}

fn generate(p: &Parsed) -> Result<(), String> {
    let config = synthgen::QuestConfig::small()
        .sequences(p.num("sequences", 1_000usize)?)
        .intervals_per_sequence(p.num("intervals", 8.0f64)?)
        .symbols(p.num("symbols", 100usize)?)
        .seed(p.num("seed", 1u64)?);
    let config = synthgen::QuestConfig {
        num_potential_patterns: p.num("patterns", 20usize)?,
        ..config
    };
    let generator = synthgen::QuestGenerator::new(config);
    let format = p.get("format").unwrap_or("text");
    let output = if p.flag("uncertain") {
        let udb = generator.generate_uncertain(&synthgen::UncertaintyConfig::default());
        match format {
            "text" => datasets::io::write_uncertain_database(&udb),
            other => return Err(format!("--format {other} not supported with --uncertain")),
        }
    } else {
        let db = generator.generate();
        match format {
            "text" => datasets::io::write_database(&db),
            "csv" => datasets::csv::write_long_csv(&db),
            other => return Err(format!("unknown --format `{other}`")),
        }
    };
    match p.get("out") {
        Some(path) => std::fs::write(path, output).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{output}"),
    }
    eprintln!("generated {}", config.name());
    Ok(())
}

fn stats(p: &Parsed) -> Result<(), String> {
    let db = load_database(p.input()?)?;
    let profile = datasets::DatasetProfile::of(&db);
    if p.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&profile).map_err(|e| e.to_string())?
        );
    } else {
        print!("{profile}");
    }
    Ok(())
}

fn mine(p: &Parsed) -> Result<(), String> {
    let db = load_database(p.input()?)?;
    let mut config = MinerConfig::default();
    if let Some(k) = p.opt_num::<usize>("max-arity")? {
        config = config.max_arity(k);
    }
    if let Some(w) = p.opt_num::<i64>("window")? {
        config = config.max_window(w);
    }
    if let Some(g) = p.opt_num::<i64>("gap")? {
        config = config.max_gap(g);
    }

    if let Some(k) = p.opt_num::<usize>("top-k")? {
        let top = mine_top_k(
            &db,
            TopKConfig {
                k,
                min_arity: 2,
                base: config,
            },
        );
        return render(p, &db, &top, "top-k");
    }

    config.min_support = match (
        p.opt_num::<usize>("abs-support")?,
        p.opt_num::<f64>("min-support")?,
    ) {
        (Some(n), _) => n,
        (None, Some(frac)) => db.absolute_support(frac),
        (None, None) => return Err("pass --min-support FRAC or --abs-support N".into()),
    };
    let result = TpMiner::new(config).mine(&db);
    eprintln!(
        "mined {} patterns in {:?} ({} nodes explored)",
        result.len(),
        result.stats().elapsed,
        result.stats().nodes_explored
    );

    if let Some(min_confidence) = p.opt_num::<f64>("rules")? {
        let rules = tpminer::generate_rules(
            result.patterns(),
            &tpminer::RuleConfig {
                min_confidence,
                single_extension_only: true,
            },
        );
        return emit_lines(
            std::iter::once(format!(
                "{} rules at confidence >= {min_confidence}",
                rules.len()
            ))
            .chain(
                rules
                    .iter()
                    .map(|r| format!("  {}", r.display(db.symbols()))),
            ),
        );
    }
    let patterns: Vec<tpminer::FrequentPattern> = if p.flag("maximal") {
        maximal_patterns(result.patterns())
    } else if p.flag("closed") {
        closed_patterns(result.patterns())
    } else {
        result.patterns().to_vec()
    };
    let kind = if p.flag("maximal") {
        "maximal"
    } else if p.flag("closed") {
        "closed"
    } else {
        "frequent"
    };
    render(p, &db, &patterns, kind)?;

    if p.flag("explain") {
        explain(&db, &patterns)?;
    }
    Ok(())
}

/// Prints, for the largest pattern found, an ASCII timeline and one concrete
/// witness embedding from the first supporting sequence.
fn explain(db: &IntervalDatabase, patterns: &[tpminer::FrequentPattern]) -> Result<(), String> {
    let Some(best) = patterns
        .iter()
        .max_by_key(|p| (p.pattern.arity(), p.support))
    else {
        return Ok(());
    };
    let mut lines = vec![
        String::new(),
        format!(
            "largest pattern ({} intervals, support {}):",
            best.pattern.arity(),
            best.support
        ),
        best.pattern.ascii_timeline(db.symbols()),
    ];
    for (i, seq) in db.sequences().iter().enumerate() {
        if let Some(witness) = interval_core::matcher::find_embedding(
            seq,
            &best.pattern,
            interval_core::MatchConstraints::none(),
        ) {
            lines.push(format!("witness in sequence {i}:"));
            for (slot, iv) in witness.iter().enumerate() {
                lines.push(format!(
                    "  slot {slot}: {} [{}, {})",
                    db.symbols().name(iv.symbol),
                    iv.start,
                    iv.end
                ));
            }
            break;
        }
    }
    emit_lines(lines.into_iter())
}

/// Writes lines to stdout, treating a broken pipe (e.g. `| head`) as a
/// graceful end of output rather than a panic.
fn emit_lines(lines: impl Iterator<Item = String>) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for line in lines {
        match writeln!(lock, "{line}") {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
            Err(e) => return Err(format!("stdout: {e}")),
        }
    }
    Ok(())
}

fn render(
    p: &Parsed,
    db: &IntervalDatabase,
    patterns: &[tpminer::FrequentPattern],
    kind: &str,
) -> Result<(), String> {
    if p.flag("json") {
        emit_lines(patterns.iter().map(|fp| {
            serde_json::json!({
                "pattern": fp.pattern.display(db.symbols()).to_string(),
                "support": fp.support,
                "arity": fp.pattern.arity(),
                "kind": kind,
            })
            .to_string()
        }))
    } else {
        let header = format!("{kind} patterns: {}", patterns.len());
        emit_lines(std::iter::once(header).chain(patterns.iter().map(|fp| {
            format!(
                "  {}   (support {})",
                fp.pattern.display(db.symbols()),
                fp.support
            )
        })))
    }
}

fn mine_prob(p: &Parsed) -> Result<(), String> {
    let udb = load_uncertain(p.input()?)?;
    let frac: f64 = p
        .opt_num("min-esup")?
        .ok_or_else(|| "pass --min-esup FRAC".to_string())?;
    let min_esup = frac * udb.len() as f64;
    let result = ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(min_esup))
        .mine(&udb);
    eprintln!(
        "{} probabilistic patterns (candidates {}, screened {})",
        result.len(),
        result.stats().candidates,
        result.stats().pruned_by_bound
    );
    if p.flag("json") {
        emit_lines(result.patterns().iter().map(|pp| {
            serde_json::json!({
                "pattern": pp.pattern.display(udb.symbols()).to_string(),
                "expected_support": pp.expected_support,
                "world_support": pp.world_support,
            })
            .to_string()
        }))
    } else {
        emit_lines(result.patterns().iter().map(|pp| {
            format!(
                "  {}   E[support] {:.2} (full world {})",
                pp.pattern.display(udb.symbols()),
                pp.expected_support,
                pp.world_support
            )
        }))
    }
}
