//! `ptpminer-cli` — command-line interface to the P-TPMiner system.
//!
//! ```text
//! ptpminer-cli generate --sequences 1000 --symbols 100 --seed 7 --out data.txt
//! ptpminer-cli stats data.txt
//! ptpminer-cli mine data.txt --min-support 0.1 --closed
//! ptpminer-cli mine data.txt --top-k 20
//! ptpminer-cli mine-prob data.csv --min-esup 0.1
//! ```
//!
//! Input formats are auto-detected: `.csv` files use the long format
//! (`sequence,symbol,start,end[,probability]`); anything else uses the
//! native text format (one sequence per line; see `datasets::io`).
//!
//! # Degraded operation
//!
//! `mine` and `mine-prob` accept `--timeout SECS` and `--max-nodes N`, and
//! Ctrl-C requests a cooperative stop instead of killing the process. In
//! all three cases the command prints the **sound partial result** computed
//! so far (every reported support is exact; only completeness is lost) and
//! signals the truncation through its exit code:
//!
//! | code | meaning |
//! |-----:|---------|
//! | 0    | complete result |
//! | 2    | usage error |
//! | 3    | budget exhausted (deadline or node cap) — partial result |
//! | 4    | a worker thread failed — surviving partitions reported |
//! | 5    | durability degraded — WAL stopped accepting writes (or a recovered log was corrupt); the in-memory result is complete |
//! | 130  | interrupted by Ctrl-C — partial result |

mod args;
mod client_cmd;
mod exit;
mod history_cmd;
mod recover_cmd;
mod serve_cmd;
mod sigint;
mod stream_cmd;

use args::Parsed;
use interval_core::{IntervalDatabase, UncertainDatabase};
use std::path::Path;
use std::process::ExitCode;
use tpminer::{
    closed_patterns, maximal_patterns, mine_top_k_budgeted, MinerConfig, MiningBudget,
    ParallelTpMiner, ProbabilisticConfig, ProbabilisticMiner, Termination, TopKConfig, TpMiner,
};

const USAGE: &str = "\
usage: ptpminer-cli <command> [options]

commands:
  generate   produce a QUEST-style synthetic dataset
             --sequences N --intervals C --symbols N --patterns N --seed S
             --uncertain  --format text|csv  --out FILE (stdout otherwise)
  stats      summarize a dataset
             <file> [--json]
  mine       mine frequent temporal patterns
             <file> --min-support FRAC | --abs-support N
             [--max-arity K] [--window W] [--gap G] [--closed] [--maximal]
             [--top-k K] [--rules CONF] [--explain] [--json] [--stats]
             [--timeout SECS] [--max-nodes N] [--threads N]
  mine-prob  mine probabilistic patterns from uncertain data
             <file> --min-esup FRAC [--json] [--timeout SECS] [--max-nodes N]
  stream     tail interval events from a file (or `-` for stdin) and keep
             the pattern set continuously mined over a sliding window
             <file|-> --window W  --min-support FRAC | --abs-support N
             [--refresh-every N] [--max-arity K] [--gap G]
             [--threads N] [--timeout SECS] [--json]
             [--pipeline | --sync-refresh]  (default: pipelined — refreshes
             run on a background worker while ingestion continues)
             [--wal-dir DIR [--fsync always|epoch|never]]  (write-ahead log
             every event before ingesting it; recover after a crash with
             `recover DIR`)
             [--segment-dir DIR [--segment-bytes N]]  (seal evicted
             intervals into cold segment files; re-mine any past range
             with `history DIR`)
  history    re-mine a historical time range from a segment directory
             <segment-dir> --from T1 --to T2
             [--min-support FRAC | --abs-support N]  (default: all
             patterns with support >= 1)  [--max-arity K] [--gap G]
             [--threads N] [--timeout SECS] [--max-nodes N] [--json]
  recover    rebuild a crashed stream's window from its write-ahead log
             <wal-dir> --window W | --verify  (scan integrity only)
             [--min-support FRAC | --abs-support N]  (also mine the
             recovered window)  [--max-arity K] [--gap G] [--threads N]
             [--json]
  serve      run the multi-tenant pattern-mining service (docs/SERVER.md)
             [--addr HOST:PORT] [--wal-root DIR [--fsync always|epoch|never]]
             [--segment-dir DIR]  (per-stream cold segment stores; enables
             the HISTORY wire verb, see docs/STORAGE.md)
             [--threads N] [--port-file PATH] [--stats-json]
             streams are CREATEd over the wire; SIGINT or SHUTDOWN drains
             every stream gracefully (WAL flushed, final refresh folded in)
  client     script the service protocol over one connection
             --addr HOST:PORT [script|-]  (commands from file or stdin;
             responses on stdout; exit 2 if any command got ERR)

exit codes:
  0 complete   2 usage error   3 budget exhausted (partial result)
  4 worker failed (partial result)   130 interrupted (partial result)
  5 durability degraded (WAL failed or corrupt; in-memory result complete)
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(exit::USAGE)
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    if parsed.flag("help") || parsed.command.is_empty() {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    match parsed.command.as_str() {
        "generate" => {
            parsed.expect_options(&[
                "sequences",
                "intervals",
                "symbols",
                "patterns",
                "seed",
                "uncertain",
                "format",
                "out",
            ])?;
            generate(&parsed).map(|()| ExitCode::SUCCESS)
        }
        "stats" => {
            parsed.expect_options(&["json"])?;
            stats(&parsed).map(|()| ExitCode::SUCCESS)
        }
        "mine" => {
            parsed.expect_options(&[
                "min-support",
                "abs-support",
                "max-arity",
                "window",
                "gap",
                "closed",
                "maximal",
                "top-k",
                "rules",
                "explain",
                "json",
                "stats",
                "timeout",
                "max-nodes",
                "threads",
            ])?;
            mine(&parsed)
        }
        "mine-prob" => {
            parsed.expect_options(&["min-esup", "json", "timeout", "max-nodes"])?;
            mine_prob(&parsed)
        }
        "stream" => {
            parsed.expect_options(stream_cmd::OPTIONS)?;
            stream_cmd::run(&parsed)
        }
        "history" => {
            parsed.expect_options(history_cmd::OPTIONS)?;
            history_cmd::run(&parsed)
        }
        "recover" => {
            parsed.expect_options(recover_cmd::OPTIONS)?;
            recover_cmd::run(&parsed)
        }
        "serve" => {
            parsed.expect_options(serve_cmd::OPTIONS)?;
            serve_cmd::run(&parsed)
        }
        "client" => {
            parsed.expect_options(client_cmd::OPTIONS)?;
            client_cmd::run(&parsed)
        }
        other => {
            let mut message = format!("unknown command `{other}`");
            if let Some(suggestion) = args::suggest_command(other) {
                message.push_str(&format!(" (did you mean `{suggestion}`?)"));
            }
            Err(message)
        }
    }
}

/// Builds the run's resource budget from `--timeout` / `--max-nodes` and
/// wires in the Ctrl-C cancellation token.
fn budget_from(p: &Parsed) -> Result<MiningBudget, String> {
    let mut budget = MiningBudget::unlimited().with_token(sigint::install());
    if let Some(secs) = p.opt_num::<f64>("timeout")? {
        if !secs.is_finite() || secs < 0.0 || secs > 1e15 {
            return Err(format!(
                "--timeout: `{secs}` is not a usable number of seconds"
            ));
        }
        budget = budget.with_timeout(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(n) = p.opt_num::<u64>("max-nodes")? {
        budget = budget.with_max_nodes(n);
    }
    Ok(budget)
}

/// Tells the user (on stderr) that the printed result is partial.
/// Dumps the full work-counter block behind `mine --stats`: search effort,
/// pruning effectiveness, and the allocation proxies of the flat search
/// core (live-arena high-water mark, recycled-buffer hit count).
fn report_miner_stats(stats: &tpminer::MinerStats) {
    eprintln!("miner stats:");
    eprintln!("  nodes explored        {}", stats.nodes_explored);
    eprintln!("  patterns emitted      {}", stats.patterns_emitted);
    eprintln!("  candidates counted    {}", stats.candidates_counted);
    eprintln!("  states created        {}", stats.states_created);
    eprintln!("  peak node states      {}", stats.peak_node_states);
    eprintln!("  states pruned (dead)  {}", stats.states_pruned_dead);
    eprintln!("  exts pruned (pair)    {}", stats.exts_pruned_pair);
    eprintln!("  exts pruned (symbol)  {}", stats.exts_pruned_symbol);
    eprintln!("  frontier cap hits     {}", stats.frontier_cap_hits);
    eprintln!("  arena peak bytes      {}", stats.arena_peak_bytes);
    eprintln!("  scratch reuse hits    {}", stats.scratch_reuse_hits);
}

fn report_truncation(termination: &Termination) {
    if !termination.is_complete() {
        eprintln!(
            "note: {termination} — partial result: reported supports are exact, \
             but the pattern set may be incomplete"
        );
    }
}

fn load_database(path: &str) -> Result<IntervalDatabase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let db = if Path::new(path).extension().is_some_and(|e| e == "csv") {
        datasets::csv::read_long_csv(&text)
    } else {
        datasets::io::read_database(&text)
    };
    db.map_err(|e| format!("{path}: {e}"))
}

fn load_uncertain(path: &str) -> Result<UncertainDatabase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let db = if Path::new(path).extension().is_some_and(|e| e == "csv") {
        datasets::csv::read_long_csv_uncertain(&text)
    } else {
        datasets::io::read_uncertain_database(&text)
    };
    db.map_err(|e| format!("{path}: {e}"))
}

fn generate(p: &Parsed) -> Result<(), String> {
    let config = synthgen::QuestConfig::small()
        .sequences(p.num("sequences", 1_000usize)?)
        .intervals_per_sequence(p.num("intervals", 8.0f64)?)
        .symbols(p.num("symbols", 100usize)?)
        .seed(p.num("seed", 1u64)?);
    let config = synthgen::QuestConfig {
        num_potential_patterns: p.num("patterns", 20usize)?,
        ..config
    };
    let generator = synthgen::QuestGenerator::new(config);
    let format = p.get("format").unwrap_or("text");
    let output = if p.flag("uncertain") {
        let udb = generator.generate_uncertain(&synthgen::UncertaintyConfig::default());
        match format {
            "text" => datasets::io::write_uncertain_database(&udb),
            other => return Err(format!("--format {other} not supported with --uncertain")),
        }
    } else {
        let db = generator.generate();
        match format {
            "text" => datasets::io::write_database(&db),
            "csv" => datasets::csv::write_long_csv(&db),
            other => return Err(format!("unknown --format `{other}`")),
        }
    };
    match p.get("out") {
        Some(path) => std::fs::write(path, output).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{output}"),
    }
    eprintln!("generated {}", config.name());
    Ok(())
}

fn stats(p: &Parsed) -> Result<(), String> {
    let db = load_database(p.input()?)?;
    let profile = datasets::DatasetProfile::of(&db);
    let text = if p.flag("json") {
        serde_json::to_string_pretty(&profile).map_err(|e| e.to_string())?
    } else {
        profile.to_string()
    };
    emit_lines(text.lines().map(str::to_owned))
}

fn mine(p: &Parsed) -> Result<ExitCode, String> {
    let db = load_database(p.input()?)?;
    let mut config = MinerConfig::default();
    if let Some(k) = p.opt_num::<usize>("max-arity")? {
        config = config.max_arity(k);
    }
    if let Some(w) = p.opt_num::<i64>("window")? {
        config = config.max_window(w);
    }
    if let Some(g) = p.opt_num::<i64>("gap")? {
        config = config.max_gap(g);
    }
    let budget = budget_from(p)?;

    if let Some(k) = p.opt_num::<usize>("top-k")? {
        let (top, termination) = mine_top_k_budgeted(
            &db,
            TopKConfig {
                k,
                min_arity: 2,
                base: config,
            },
            budget,
        );
        report_truncation(&termination);
        render(p, &db, &top, "top-k")?;
        return Ok(exit::from_termination(&termination));
    }

    config.min_support = match (
        p.opt_num::<usize>("abs-support")?,
        p.opt_num::<f64>("min-support")?,
    ) {
        (Some(n), _) => n,
        (None, Some(frac)) => db.absolute_support(frac),
        (None, None) => return Err("pass --min-support FRAC or --abs-support N".into()),
    };
    let result = match p.opt_num::<usize>("threads")? {
        Some(threads) => ParallelTpMiner::new(config, threads)
            .with_budget(budget)
            .mine(&db),
        None => TpMiner::new(config).with_budget(budget).mine(&db),
    };
    eprintln!(
        "mined {} patterns in {:?} ({} nodes explored)",
        result.len(),
        result.stats().elapsed,
        result.stats().nodes_explored
    );
    if p.flag("stats") {
        report_miner_stats(result.stats());
    }
    report_truncation(result.termination());

    if let Some(min_confidence) = p.opt_num::<f64>("rules")? {
        let rules = tpminer::generate_rules(
            result.patterns(),
            &tpminer::RuleConfig {
                min_confidence,
                single_extension_only: true,
            },
        );
        emit_lines(
            std::iter::once(format!(
                "{} rules at confidence >= {min_confidence}",
                rules.len()
            ))
            .chain(
                rules
                    .iter()
                    .map(|r| format!("  {}", r.display(db.symbols()))),
            ),
        )?;
        return Ok(exit::from_termination(result.termination()));
    }
    if (p.flag("maximal") || p.flag("closed")) && !result.is_exhaustive() {
        eprintln!(
            "warning: --closed/--maximal filter a *complete* frequent set; \
             on this partial result the labels may be wrong (a missing \
             super-pattern cannot subsume anything)"
        );
    }
    let patterns: Vec<tpminer::FrequentPattern> = if p.flag("maximal") {
        maximal_patterns(result.patterns())
    } else if p.flag("closed") {
        closed_patterns(result.patterns())
    } else {
        result.patterns().to_vec()
    };
    let kind = if p.flag("maximal") {
        "maximal"
    } else if p.flag("closed") {
        "closed"
    } else {
        "frequent"
    };
    render(p, &db, &patterns, kind)?;

    if p.flag("explain") {
        explain(&db, &patterns)?;
    }
    Ok(exit::from_termination(result.termination()))
}

/// Prints, for the largest pattern found, an ASCII timeline and one concrete
/// witness embedding from the first supporting sequence.
fn explain(db: &IntervalDatabase, patterns: &[tpminer::FrequentPattern]) -> Result<(), String> {
    let Some(best) = patterns
        .iter()
        .max_by_key(|p| (p.pattern.arity(), p.support))
    else {
        return Ok(());
    };
    let mut lines = vec![
        String::new(),
        format!(
            "largest pattern ({} intervals, support {}):",
            best.pattern.arity(),
            best.support
        ),
        best.pattern.ascii_timeline(db.symbols()),
    ];
    for (i, seq) in db.sequences().iter().enumerate() {
        if let Some(witness) = interval_core::matcher::find_embedding(
            seq,
            &best.pattern,
            interval_core::MatchConstraints::none(),
        ) {
            lines.push(format!("witness in sequence {i}:"));
            for (slot, iv) in witness.iter().enumerate() {
                lines.push(format!(
                    "  slot {slot}: {} [{}, {})",
                    db.symbols().name(iv.symbol),
                    iv.start,
                    iv.end
                ));
            }
            break;
        }
    }
    emit_lines(lines.into_iter())
}

/// Writes lines to stdout, treating a broken pipe (e.g. `| head`) as a
/// graceful end of output rather than a panic.
pub(crate) fn emit_lines(lines: impl Iterator<Item = String>) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for line in lines {
        match writeln!(lock, "{line}") {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
            Err(e) => return Err(format!("stdout: {e}")),
        }
    }
    Ok(())
}

fn render(
    p: &Parsed,
    db: &IntervalDatabase,
    patterns: &[tpminer::FrequentPattern],
    kind: &str,
) -> Result<(), String> {
    if p.flag("json") {
        emit_lines(patterns.iter().map(|fp| {
            serde_json::json!({
                "pattern": fp.pattern.display(db.symbols()).to_string(),
                "support": fp.support,
                "arity": fp.pattern.arity(),
                "kind": kind,
            })
            .to_string()
        }))
    } else {
        let header = format!("{kind} patterns: {}", patterns.len());
        emit_lines(std::iter::once(header).chain(patterns.iter().map(|fp| {
            format!(
                "  {}   (support {})",
                fp.pattern.display(db.symbols()),
                fp.support
            )
        })))
    }
}

fn mine_prob(p: &Parsed) -> Result<ExitCode, String> {
    let udb = load_uncertain(p.input()?)?;
    let frac: f64 = p
        .opt_num("min-esup")?
        .ok_or_else(|| "pass --min-esup FRAC".to_string())?;
    let min_esup = frac * udb.len() as f64;
    let result = ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(min_esup))
        .with_budget(budget_from(p)?)
        .mine(&udb);
    eprintln!(
        "{} probabilistic patterns (candidates {}, screened {})",
        result.len(),
        result.stats().candidates,
        result.stats().pruned_by_bound
    );
    report_truncation(result.termination());
    if p.flag("json") {
        emit_lines(result.patterns().iter().map(|pp| {
            serde_json::json!({
                "pattern": pp.pattern.display(udb.symbols()).to_string(),
                "expected_support": pp.expected_support,
                "world_support": pp.world_support,
            })
            .to_string()
        }))?;
    } else {
        emit_lines(result.patterns().iter().map(|pp| {
            format!(
                "  {}   E[support] {:.2} (full world {})",
                pp.pattern.display(udb.symbols()),
                pp.expected_support,
                pp.world_support
            )
        }))?;
    }
    Ok(exit::from_termination(result.termination()))
}
