//! The `history` subcommand: re-mine a historical time range out of the
//! cold segment store a `stream --segment-dir` run left behind.
//!
//! `history DIR --from T1 --to T2` opens DIR read-only with a
//! [`SegmentReader`], loads every sealed interval whose end falls in
//! `[T1, T2]` (segments whose footer bounds miss the range are skipped
//! without being read), rebuilds the same frozen state a live refresh
//! would see, and mines it with the unchanged [`IncrementalMiner`] under
//! the usual `--timeout` / `--max-nodes` / Ctrl-C budget. Memory is
//! bounded by one segment image plus the loaded range, so windows far
//! larger than the live in-RAM cap mine fine — see `docs/STORAGE.md`
//! "Out-of-core mining".
//!
//! The output is the `mine` format (text or `--json`), and the pattern
//! set over a sealed range is identical to an offline `mine` of the same
//! events (property-tested in `tests/history_parity.rs`). Against a
//! *live* segment directory the answer covers everything sealed so far;
//! intervals still in the window or pending seal appear once sealed.

use std::process::ExitCode;

use interval_core::SymbolId;
use segment::SegmentReader;
use stream::{FrozenView, IncrementalMiner};
use tpminer::MinerConfig;

use crate::args::Parsed;
use crate::stream_cmd::{render_final, threshold_from};
use crate::{budget_from, exit, report_truncation};

/// Options every `history` invocation may use (checked by `expect_options`).
pub const OPTIONS: &[&str] = &[
    "from",
    "to",
    "min-support",
    "abs-support",
    "max-arity",
    "gap",
    "threads",
    "timeout",
    "max-nodes",
    "json",
];

pub fn run(p: &Parsed) -> Result<ExitCode, String> {
    let dir = p.input()?;
    let from = p
        .opt_num::<i64>("from")?
        .ok_or_else(|| "pass --from T1 (start of the historical range)".to_string())?;
    let to = p
        .opt_num::<i64>("to")?
        .ok_or_else(|| "pass --to T2 (end of the historical range)".to_string())?;
    if from > to {
        return Err(format!("--from {from} is after --to {to}"));
    }
    let mut config = MinerConfig::default();
    if let Some(k) = p.opt_num::<usize>("max-arity")? {
        config = config.max_arity(k);
    }
    if let Some(g) = p.opt_num::<i64>("gap")? {
        config = config.max_gap(g);
    }
    let budget = budget_from(p)?;

    let reader = SegmentReader::open(dir).map_err(|e| format!("{dir}: {e}"))?;
    let load = reader
        .load_range(from, to)
        .map_err(|e| format!("{dir}: {e}"))?;
    eprintln!(
        "history [{from}, {to}]: {} segments read ({} skipped by time bounds), \
         {} sequences, {} intervals",
        load.segments_read, load.segments_skipped, load.sequences, load.intervals,
    );
    config.min_support = match threshold_from(p)? {
        Some(threshold) => threshold.absolute_for(load.sequences),
        None => 1,
    };

    // Every symbol is "dirty": a historical mine has no carried state to
    // be incremental against, so the whole range is mined fresh.
    let dirty: Vec<SymbolId> = load.symbols.iter().map(|(id, _)| id).collect();
    let view = FrozenView::from_parts(dirty, load.seq_indexes, Some(to), Some(from), load.symbols);
    let mut miner = IncrementalMiner::new(config, p.num::<usize>("threads", 0)?);
    let snapshot = miner.refresh_frozen(&view, budget);

    report_truncation(snapshot.result.termination());
    render_final(p, &snapshot)?;
    Ok(exit::from_termination(snapshot.result.termination()))
}
