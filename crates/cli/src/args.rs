//! Minimal dependency-free argument parsing for the CLI.

use std::collections::HashMap;

// Typo suggestions share the server wire protocol's edit-distance machinery
// so the CLI and the protocol grammar suggest with identical behavior.
use interval_core::wire::closest;

/// Parsed command line: subcommand, positional arguments, `--key value` /
/// `--flag` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options; bare `--flag`s map to an empty string.
    pub options: HashMap<String, String>,
}

/// Option keys that are flags (take no value).
const FLAGS: &[&str] = &[
    "uncertain",
    "closed",
    "maximal",
    "json",
    "help",
    "explain",
    "stats",
    "pipeline",
    "sync-refresh",
    "verify",
    "stats-json",
];

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if key.is_empty() {
                return Err("empty option name `--`".into());
            }
            if FLAGS.contains(&key) {
                parsed.options.insert(key.to_owned(), String::new());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                parsed.options.insert(key.to_owned(), value.clone());
            }
        } else if parsed.command.is_empty() {
            parsed.command = arg.clone();
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// Whether a flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    /// A parsed numeric option without a default.
    pub fn opt_num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    /// Rejects options outside the subcommand's known set, so a typo like
    /// `--min-suport` fails loudly instead of being silently ignored.
    pub fn expect_options(&self, known: &[&str]) -> Result<(), String> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                let mut message = format!("unknown option --{key}");
                if let Some(suggestion) = closest(key, known) {
                    message.push_str(&format!(" (did you mean --{suggestion}?)"));
                }
                return Err(message);
            }
        }
        Ok(())
    }

    /// The single required positional argument.
    pub fn input(&self) -> Result<&str, String> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            [] => Err("missing input file".into()),
            _ => Err("expected exactly one input file".into()),
        }
    }
}

/// Every subcommand the CLI understands, for did-you-mean suggestions.
pub const COMMANDS: &[&str] = &[
    "generate",
    "stats",
    "mine",
    "mine-prob",
    "stream",
    "history",
    "recover",
    "serve",
    "client",
];

/// The known subcommand closest to a mistyped one (`min` → `mine`), if any
/// is close enough to be a plausible typo.
pub fn suggest_command(command: &str) -> Option<&'static str> {
    closest(command, COMMANDS)
}

/// The known *value* closest to a mistyped enumerated option value
/// (`--fsync epcoh` → `epoch`) — the same edit-distance machinery the
/// option and command suggestions use.
pub fn suggest_value<'a>(value: &str, known: &[&'a str]) -> Option<&'a str> {
    closest(value, known)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_command_positional_and_options() {
        let p = parse(&argv("mine data.txt --min-support 0.1 --closed")).unwrap();
        assert_eq!(p.command, "mine");
        assert_eq!(p.positional, vec!["data.txt"]);
        assert_eq!(p.get("min-support"), Some("0.1"));
        assert!(p.flag("closed"));
        assert!(!p.flag("maximal"));
    }

    #[test]
    fn numeric_helpers() {
        let p = parse(&argv("mine f --min-support 0.25 --top-k 10")).unwrap();
        assert_eq!(p.num::<f64>("min-support", 1.0).unwrap(), 0.25);
        assert_eq!(p.opt_num::<usize>("top-k").unwrap(), Some(10));
        assert_eq!(p.opt_num::<usize>("max-arity").unwrap(), None);
        assert!(p.num::<usize>("min-support", 1).is_err()); // 0.25 is not usize
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv("mine f --min-support")).is_err());
        assert!(parse(&argv("mine --")).is_err());
    }

    #[test]
    fn unknown_options_are_rejected_with_suggestion() {
        let p = parse(&argv("mine f --min-suport 0.1")).unwrap();
        let err = p
            .expect_options(&["min-support", "abs-support", "top-k"])
            .unwrap_err();
        assert!(err.contains("--min-suport"), "{err}");
        assert!(err.contains("did you mean --min-support"), "{err}");
        // known options pass
        let p = parse(&argv("mine f --min-support 0.1")).unwrap();
        assert!(p.expect_options(&["min-support"]).is_ok());
        // wildly wrong options get no suggestion
        let p = parse(&argv("mine f --zzz 1")).unwrap();
        let err = p.expect_options(&["min-support"]).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn budget_option_typos_get_suggestions() {
        let known = &["min-support", "timeout", "max-nodes", "threads"];
        let p = parse(&argv("mine f --timout 5")).unwrap();
        let err = p.expect_options(known).unwrap_err();
        assert!(err.contains("did you mean --timeout"), "{err}");
        let p = parse(&argv("mine f --max-node 10")).unwrap();
        let err = p.expect_options(known).unwrap_err();
        assert!(err.contains("did you mean --max-nodes"), "{err}");
        let p = parse(&argv("mine f --timeout 5 --max-nodes 10 --threads 4")).unwrap();
        assert!(p.expect_options(known).is_ok());
    }

    #[test]
    fn enumerated_value_typos_get_suggestions() {
        let names = &["always", "epoch", "never"];
        assert_eq!(suggest_value("epcoh", names), Some("epoch"));
        assert_eq!(suggest_value("alway", names), Some("always"));
        assert_eq!(suggest_value("nevr", names), Some("never"));
        assert_eq!(
            suggest_value("quarterly", names),
            None,
            "far-off gets nothing"
        );
    }

    #[test]
    fn command_typos_get_suggestions() {
        assert_eq!(suggest_command("min"), Some("mine"));
        assert_eq!(suggest_command("mien"), Some("mine"));
        assert_eq!(suggest_command("stat"), Some("stats"));
        assert_eq!(suggest_command("stremm"), Some("stream"));
        assert_eq!(suggest_command("generat"), Some("generate"));
        assert_eq!(suggest_command("mine-porb"), Some("mine-prob"));
        assert_eq!(suggest_command("recove"), Some("recover"));
        assert_eq!(suggest_command("frobnicate"), None, "far-off gets nothing");
        // An exact command never reaches the suggester in practice, but the
        // suggestion it would produce is still the command itself.
        assert_eq!(suggest_command("mine"), Some("mine"));
    }

    #[test]
    fn edit_distance_basics() {
        use interval_core::wire::edit_distance;
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("min-suport", "min-support"), 1);
    }

    #[test]
    fn input_validation() {
        assert!(parse(&argv("stats")).unwrap().input().is_err());
        assert!(parse(&argv("stats a b")).unwrap().input().is_err());
        assert_eq!(parse(&argv("stats a")).unwrap().input().unwrap(), "a");
    }
}
