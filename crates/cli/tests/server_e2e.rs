//! End-to-end tests for `serve`: two concurrent named streams ingesting
//! over real TCP connections while queries are served from published
//! snapshots, query results bit-identical to an offline `mine` over the
//! same window, and a SIGINT drain that flushes the WAL and loses no
//! accepted event (verified by replaying the log with `recover`).

use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptpminer-cli"))
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ptpminer-server-e2e-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts `serve` on a free port and waits for the port file.
fn launch_serve(dir: &Path, extra: &[&str]) -> (Child, String) {
    let port_file = dir.join("port.txt");
    let stderr_file = File::create(dir.join("server.log")).unwrap();
    let child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--port-file"])
        .arg(&port_file)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::from(stderr_file))
        .spawn()
        .unwrap();
    for _ in 0..300 {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            let addr = addr.trim().to_owned();
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("serve did not write its port file");
}

/// One line-oriented protocol connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let sock = TcpStream::connect(addr).unwrap();
        Conn {
            reader: BufReader::new(sock.try_clone().unwrap()),
            writer: sock,
        }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_owned()
    }

    /// Sends a command; returns the whole response unit (line or block).
    /// `REV` push lines arriving ahead of the response (possible on a
    /// subscribed connection) are skipped.
    fn send(&mut self, command: &str) -> Vec<String> {
        self.writer
            .write_all(format!("{command}\n").as_bytes())
            .unwrap();
        let mut head = self.read_line();
        while head.starts_with("REV ") {
            head = self.read_line();
        }
        let mut out = vec![head.clone()];
        if let Some(rest) = head.strip_prefix("BEGIN ") {
            let count: usize = rest.split_whitespace().next().unwrap().parse().unwrap();
            for _ in 0..count {
                out.push(self.read_line());
            }
            let end = self.read_line();
            assert_eq!(end, "END");
            out.push(end);
        }
        out
    }

    /// Reads one asynchronous push line, or `None` if the connection stays
    /// quiet for `timeout`.
    fn read_push(&mut self, timeout: Duration) -> Option<String> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(timeout))
            .unwrap();
        let mut line = String::new();
        let got = match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line.trim_end().to_owned()),
        };
        self.reader.get_ref().set_read_timeout(None).unwrap();
        got
    }

    fn ok(&mut self, command: &str) {
        let reply = self.send(command);
        assert!(reply[0].starts_with("OK"), "{command} -> {reply:?}");
    }
}

/// The interval workload for one stream: `(sequence, symbol, start, end)`.
/// Watermarks are sent after each sequence when ingesting over TCP but are
/// control records, so they do not appear in the offline database.
fn workload(symbols: [&str; 2], sequences: i64) -> Vec<(i64, String, i64, i64)> {
    let mut events = Vec::new();
    for seq in 0..sequences {
        let base = seq * 40;
        events.push((seq, symbols[0].to_owned(), base, base + 6));
        events.push((seq, symbols[1].to_owned(), base + 3, base + 9));
        if seq % 2 == 0 {
            // An extra interval in even sequences keeps some patterns
            // below threshold, so filtering actually does something.
            events.push((seq, symbols[0].to_owned(), base + 10, base + 14));
        }
    }
    events
}

/// Ingests a workload over one connection, one watermark per sequence.
fn ingest(conn: &mut Conn, stream: &str, events: &[(i64, String, i64, i64)]) {
    let mut current_seq = None;
    for (seq, sym, start, end) in events {
        if current_seq.is_some_and(|s| s != *seq) {
            conn.ok(&format!("EVENT {stream} watermark {}", seq * 40 - 1));
        }
        current_seq = Some(*seq);
        conn.ok(&format!(
            "EVENT {stream} interval {seq} {sym} {start} {end}"
        ));
    }
    if let Some(seq) = current_seq {
        conn.ok(&format!("EVENT {stream} watermark {}", (seq + 1) * 40 - 1));
    }
}

/// Canonical form of a pattern set: `(support desc, pattern asc)` pairs.
fn canonical(mut pairs: Vec<(usize, String)>) -> Vec<(usize, String)> {
    pairs.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    pairs
}

/// Parses a `QUERY` block body (`support\tpattern` lines).
fn parse_query(reply: &[String]) -> Vec<(usize, String)> {
    assert!(reply[0].starts_with("BEGIN "), "{reply:?}");
    reply[1..reply.len() - 1]
        .iter()
        .map(|line| {
            let (support, pattern) = line.split_once('\t').unwrap();
            (support.parse().unwrap(), pattern.to_owned())
        })
        .collect()
}

/// Parses `mine`/`recover` stdout (`  <pattern>   (support N)` lines).
fn parse_mine(stdout: &str) -> Vec<(usize, String)> {
    stdout
        .lines()
        .filter_map(|line| {
            let line = line.strip_prefix("  ")?;
            let (pattern, support) = line.rsplit_once("   (support ")?;
            Some((support.strip_suffix(')')?.parse().ok()?, pattern.to_owned()))
        })
        .collect()
}

/// Writes a workload as the long-CSV offline format.
fn write_csv(path: &Path, events: &[(i64, String, i64, i64)]) {
    let mut text = String::from("sequence,symbol,start,end\n");
    for (seq, sym, start, end) in events {
        text.push_str(&format!("{seq},{sym},{start},{end}\n"));
    }
    std::fs::write(path, text).unwrap();
}

/// Offline `mine` over the same window, canonicalized.
fn mine_offline(csv: &Path, abs_support: usize) -> Vec<(usize, String)> {
    let out = bin()
        .arg("mine")
        .arg(csv)
        .args(["--abs-support", &abs_support.to_string()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "mine: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    canonical(parse_mine(&String::from_utf8_lossy(&out.stdout)))
}

#[test]
fn two_streams_over_tcp_match_offline_mine_and_sigint_drains_cleanly() {
    let dir = temp_dir("full");
    let wal_root = dir.join("wal");
    let (mut child, addr) = launch_serve(
        &dir,
        &["--wal-root", wal_root.to_str().unwrap(), "--stats-json"],
    );

    let alpha = workload(["a", "b"], 6);
    let beta = workload(["x", "y"], 4);

    // Two tenants ingest concurrently on their own connections — alpha
    // durable, beta memory-only — while this thread queries both.
    let mut admin = Conn::open(&addr);
    admin.ok("CREATE alpha WINDOW 100000 ABS-SUPPORT 4 REFRESH-EVERY 1 WAL");
    admin.ok("CREATE beta WINDOW 100000 ABS-SUPPORT 2 REFRESH-EVERY 1");

    let total_events;
    {
        let addr_a = addr.clone();
        let events_a = alpha.clone();
        let writer_a = std::thread::spawn(move || {
            let mut conn = Conn::open(&addr_a);
            ingest(&mut conn, "alpha", &events_a);
        });
        let addr_b = addr.clone();
        let events_b = beta.clone();
        let writer_b = std::thread::spawn(move || {
            let mut conn = Conn::open(&addr_b);
            ingest(&mut conn, "beta", &events_b);
        });
        // Interleaved reads: every reply must be a well-formed block no
        // matter where ingestion currently stands.
        for _ in 0..20 {
            let reply = admin.send("QUERY alpha");
            assert!(reply[0].starts_with("BEGIN "), "{reply:?}");
            let reply = admin.send("QUERY beta TOP 3");
            assert!(reply[0].starts_with("BEGIN "), "{reply:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        writer_a.join().unwrap();
        writer_b.join().unwrap();
        // Watermark control records ride along with the intervals.
        total_events = (alpha.len() + 6) + (beta.len() + 4);
    }

    // Settle both pipelines, then compare against the offline miner over
    // the exact same window contents.
    admin.ok("SYNC alpha");
    admin.ok("SYNC beta");
    let query_alpha = canonical(parse_query(&admin.send("QUERY alpha")));
    let query_beta = canonical(parse_query(&admin.send("QUERY beta")));
    assert!(!query_alpha.is_empty(), "alpha mined nothing");
    assert!(!query_beta.is_empty(), "beta mined nothing");

    let alpha_csv = dir.join("alpha.csv");
    write_csv(&alpha_csv, &alpha);
    assert_eq!(
        query_alpha,
        mine_offline(&alpha_csv, 4),
        "alpha: served snapshot diverges from offline mine"
    );
    let beta_csv = dir.join("beta.csv");
    write_csv(&beta_csv, &beta);
    assert_eq!(
        query_beta,
        mine_offline(&beta_csv, 2),
        "beta: served snapshot diverges from offline mine"
    );

    // Prefix filtering stays a strict subset of the full answer.
    let filtered = canonical(parse_query(&admin.send("QUERY alpha PREFIX a")));
    assert!(!filtered.is_empty());
    assert!(filtered.iter().all(|p| query_alpha.contains(p)));

    drop(admin);

    // SIGINT → graceful drain: exit 0, both streams reported, and the
    // machine-readable stats account for every accepted event.
    let pid = child.id().to_string();
    let status = Command::new("kill").args(["-INT", &pid]).status().unwrap();
    assert!(status.success());
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "drain must exit 0");
    let log = std::fs::read_to_string(dir.join("server.log")).unwrap();
    assert!(log.contains("drained 2 stream(s)"), "{log}");
    assert!(log.contains("\"wal_degraded\":false"), "{log}");
    assert!(
        log.contains(&format!("\"events_accepted\":{total_events}")),
        "expected {total_events} accepted events in: {log}"
    );

    // No accepted event lost: replaying alpha's WAL rebuilds the same
    // window and mines the same patterns the live server served.
    let out = bin()
        .arg("recover")
        .arg(wal_root.join("alpha"))
        .args(["--window", "100000", "--abs-support", "4"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "recover: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let recovered = canonical(parse_mine(&String::from_utf8_lossy(&out.stdout)));
    assert_eq!(
        recovered, query_alpha,
        "replayed WAL diverges from the served snapshot"
    );
}

#[test]
fn subscribe_streams_revision_pushes_until_unsubscribe() {
    let dir = temp_dir("subscribe");
    let (mut child, addr) = launch_serve(&dir, &["--refresh-workers", "2"]);
    let mut writer = Conn::open(&addr);
    writer.ok("CREATE s WINDOW 100000 ABS-SUPPORT 2 REFRESH-EVERY 1");

    let mut sub = Conn::open(&addr);
    // Grammar-valid but unusable subscriptions are clean errors.
    assert!(
        sub.send("SUBSCRIBE nope")[0].starts_with("ERR"),
        "unknown stream"
    );
    assert!(
        sub.send("UNSUBSCRIBE")[0].starts_with("ERR"),
        "nothing active"
    );
    let reply = sub.send("SUBSCRIBE s");
    assert!(reply[0].starts_with("OK subscribed stream=s"), "{reply:?}");
    let reply = sub.send("SUBSCRIBE s");
    assert!(reply[0].starts_with("ERR already subscribed"), "{reply:?}");

    // Ingest on another connection: every published refresh must reach
    // the subscriber as a REV push without the subscriber asking.
    ingest(&mut writer, "s", &workload(["a", "b"], 4));
    writer.ok("SYNC s");
    let mut revisions: Vec<u64> = Vec::new();
    while let Some(line) = sub.read_push(Duration::from_secs(2)) {
        assert!(line.starts_with("REV stream=s revision="), "{line}");
        let revision = line
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("revision="))
            .unwrap()
            .parse()
            .unwrap();
        revisions.push(revision);
        if revisions.len() > 64 {
            break;
        }
    }
    assert!(!revisions.is_empty(), "no REV push arrived after SYNC");
    assert!(
        revisions.windows(2).all(|w| w[0] < w[1]),
        "pushed revisions must be strictly increasing: {revisions:?}"
    );

    // The subscription is observable per-tenant in STATS.
    let stats = writer.send("STATS s");
    assert!(
        stats.iter().any(|l| l.contains("subscribers=1")),
        "{stats:?}"
    );

    // UNSUBSCRIBE must name the active stream (when it names one), then
    // reports the subscriber's delivery accounting.
    assert!(sub.send("UNSUBSCRIBE other")[0].starts_with("ERR"));
    let reply = sub.send("UNSUBSCRIBE s");
    assert!(
        reply[0].starts_with("OK unsubscribed stream=s delivered="),
        "{reply:?}"
    );
    // Disconnected subscribers are pruned at the next publication (not
    // eagerly), so force one refresh before checking the count.
    writer.ok("SYNC s");
    let stats = writer.send("STATS s");
    assert!(
        stats.iter().any(|l| l.contains("subscribers=0")),
        "gone after UNSUBSCRIBE + publish: {stats:?}"
    );

    writer.ok("SHUTDOWN");
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn client_times_out_cleanly_against_a_hung_server() {
    // A socket that accepts and then never responds: the client must fail
    // with a timeout error, not block forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        let held = listener.accept().ok();
        std::thread::sleep(Duration::from_secs(5));
        drop(held);
    });

    let dir = temp_dir("client-timeout");
    let script = dir.join("script.txt");
    std::fs::write(&script, "PING\n").unwrap();
    let out = bin()
        .args(["client", "--addr", &addr, "--timeout", "0.5"])
        .arg(&script)
        .output()
        .unwrap();
    assert_ne!(out.status.code(), Some(0), "a hung server must not exit 0");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no response within"),
        "expected a timeout error, got: {stderr}"
    );
    drop(hold); // detached on purpose: it outlives the client by design
}

#[test]
fn recreating_a_durable_stream_recovers_it_by_replay() {
    let dir = temp_dir("recover");
    let wal_root = dir.join("wal");

    // First server lifetime: ingest durably, drain via SHUTDOWN.
    let (mut child, addr) = launch_serve(&dir, &["--wal-root", wal_root.to_str().unwrap()]);
    let events = workload(["p", "q"], 4);
    {
        let mut conn = Conn::open(&addr);
        conn.ok("CREATE s WINDOW 100000 ABS-SUPPORT 2 REFRESH-EVERY 1 WAL");
        ingest(&mut conn, "s", &events);
        conn.ok("SYNC s");
        conn.ok("SHUTDOWN");
    }
    assert_eq!(child.wait().unwrap().code(), Some(0));

    // Second lifetime: CREATE of the same name finds the WAL and replays.
    std::fs::remove_file(dir.join("port.txt")).unwrap();
    let (mut child, addr) = launch_serve(&dir, &["--wal-root", wal_root.to_str().unwrap()]);
    let mut conn = Conn::open(&addr);
    let reply = conn.send("CREATE s WINDOW 100000 ABS-SUPPORT 2 REFRESH-EVERY 1 WAL");
    assert!(
        reply[0].starts_with("OK recovered"),
        "expected recovery, got {reply:?}"
    );
    conn.ok("SYNC s");
    let query = canonical(parse_query(&conn.send("QUERY s")));
    let csv = dir.join("s.csv");
    write_csv(&csv, &events);
    assert_eq!(
        query,
        mine_offline(&csv, 2),
        "recovered stream diverges from offline mine"
    );
    conn.ok("SHUTDOWN");
    assert_eq!(child.wait().unwrap().code(), Some(0));
}
