//! End-to-end exit-code and wiring tests for `stream --wal-dir` and
//! `recover`, driving the real binary against the committed WAL fixtures
//! under `tests/fixtures/wal/` (repo root) and against logs it writes
//! itself.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptpminer-cli"))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/wal")
        .join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ptpminer-recover-cli-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn recover_replays_the_torn_tail_fixture_cleanly() {
    let out = bin()
        .arg("recover")
        .arg(fixture("torn_tail"))
        .args(["--window", "20", "--abs-support", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("torn tail"), "{err}");
    assert!(err.contains("recovered window: 2 sequences"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("frequent patterns"), "{stdout}");
}

#[test]
fn recover_maps_corruption_to_the_degraded_exit_code() {
    let out = bin()
        .arg("recover")
        .arg(fixture("bit_flip"))
        .args(["--window", "20"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("CORRUPTION"), "{err}");
    assert!(err.contains("CRC mismatch"), "{err}");
}

#[test]
fn recover_verify_scans_without_a_window() {
    let out = bin()
        .arg("recover")
        .arg(fixture("bit_flip"))
        .arg("--verify")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "stderr: {}", stderr(&out));

    let out = bin()
        .arg("recover")
        .arg(fixture("torn_tail"))
        .arg("--verify")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    // Golden: the verify summary reports the segment-reclaim watermark
    // documented in docs/DURABILITY.md §2 (the torn-tail fixture's durable
    // prefix ends at watermark 12).
    let err = stderr(&out);
    assert!(err.contains("segment-reclaim watermark: 12"), "{err}");
}

#[test]
fn stream_journals_and_recover_rebuilds_the_same_patterns() {
    let dir = temp_dir("roundtrip");
    let wal = dir.join("wal");
    let input = dir.join("events.txt");
    std::fs::write(
        &input,
        "interval 1 fever 0 5\n\
         interval 2 fever 1 6\n\
         interval 1 rash 3 9\n\
         interval 2 rash 4 8\n\
         watermark 12\n",
    )
    .unwrap();

    let streamed = bin()
        .arg("stream")
        .arg(&input)
        .args(["--window", "20", "--abs-support", "2", "--sync-refresh"])
        .arg("--wal-dir")
        .arg(&wal)
        .args(["--fsync", "always"])
        .output()
        .unwrap();
    assert_eq!(
        streamed.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&streamed)
    );
    let err = stderr(&streamed);
    assert!(err.contains("wal: 5 records"), "{err}");
    assert!(err.contains("healthy"), "{err}");

    let recovered = bin()
        .arg("recover")
        .arg(&wal)
        .args(["--window", "20", "--abs-support", "2"])
        .output()
        .unwrap();
    assert_eq!(
        recovered.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&recovered)
    );
    assert_eq!(
        String::from_utf8_lossy(&recovered.stdout),
        String::from_utf8_lossy(&streamed.stdout),
        "replay must reproduce the crashed stream's final pattern set"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsync_typos_get_suggestions_and_fsync_requires_a_wal_dir() {
    let dir = temp_dir("usage");
    let input = dir.join("events.txt");
    std::fs::write(&input, "watermark 1\n").unwrap();

    let out = bin()
        .arg("stream")
        .arg(&input)
        .args(["--window", "20", "--abs-support", "1"])
        .arg("--wal-dir")
        .arg(dir.join("wal"))
        .args(["--fsync", "epcoh"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("did you mean `epoch`?"), "{err}");

    let out = bin()
        .arg("stream")
        .arg(&input)
        .args(["--window", "20", "--abs-support", "1", "--fsync", "epoch"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--fsync needs --wal-dir"),
        "{}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}
