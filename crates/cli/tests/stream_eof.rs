//! Regression tests for `stream -` end-of-input handling: a closed stdin
//! pipe must wind the run down (WAL flush + final refresh + summary)
//! promptly instead of spinning on zero-byte reads, and `--stats-json`
//! must report the run in machine-readable form.

use std::io::Write;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptpminer-cli"))
}

const EVENTS: &str = "\
interval 0 a 0 5
interval 0 b 3 8
watermark 9
interval 1 a 10 15
interval 1 b 13 18
watermark 19
";

/// Waits for exit with a hard deadline — if EOF handling regresses into a
/// spin, the child never exits and this fails instead of hanging the suite.
fn wait_bounded(child: &mut Child) -> std::process::ExitStatus {
    for _ in 0..600 {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    panic!("stream did not exit after stdin closed (EOF spin regression)");
}

fn run_stream(extra: &[&str]) -> (std::process::ExitStatus, String, String) {
    let mut child = bin()
        .args([
            "stream",
            "-",
            "--window",
            "1000",
            "--abs-support",
            "2",
            "--refresh-every",
            "1",
        ])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    {
        let mut stdin = child.stdin.take().unwrap();
        stdin.write_all(EVENTS.as_bytes()).unwrap();
        // Dropping stdin closes the pipe: the next read returns 0 bytes.
    }
    let status = wait_bounded(&mut child);
    let out = child.wait_with_output().unwrap();
    (
        status,
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn closed_stdin_pipe_triggers_final_refresh_and_clean_exit() {
    let (status, stdout, stderr) = run_stream(&[]);
    assert_eq!(status.code(), Some(0), "stderr: {stderr}");
    // The wind-down ran: ingest summary on stderr, final patterns on
    // stdout (the post-EOF refresh folded in the tail after the last
    // watermark trigger).
    assert!(stderr.contains("ingested 6 events"), "{stderr}");
    assert!(stdout.contains("frequent patterns:"), "{stdout}");
    assert!(stdout.contains("a+ | b+ | a- | b-"), "{stdout}");
}

#[test]
fn stats_json_reports_the_run_machine_readably() {
    let (status, _stdout, stderr) = run_stream(&["--stats-json"]);
    assert_eq!(status.code(), Some(0), "stderr: {stderr}");
    let json_line = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON stats line in: {stderr}"));
    for needle in [
        "\"events\":6",
        "\"watermarks\":2",
        "\"worker_failed\":false",
        "\"pipeline\":{",
        "\"wal\":null",
    ] {
        assert!(json_line.contains(needle), "missing {needle}: {json_line}");
    }
}

#[test]
fn sync_refresh_path_handles_eof_identically() {
    let (status, stdout, stderr) = run_stream(&["--sync-refresh"]);
    assert_eq!(status.code(), Some(0), "stderr: {stderr}");
    assert!(stdout.contains("a+ | b+ | a- | b-"), "{stdout}");
    assert!(stderr.contains("ingested 6 events"), "{stderr}");
}
