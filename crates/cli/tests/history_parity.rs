//! The out-of-core acceptance property: `history --from T1 --to T2` over
//! a sealed segment directory produces the same pattern set as an offline
//! `mine` over the same event slice — for the whole stream and for
//! sub-ranges — both through the CLI and through the server's `HISTORY`
//! wire verb over real TCP.
//!
//! The CLI half is a seeded-random property check (several deterministic
//! pseudo-random workloads, full range + sub-range each); the TCP half
//! drives `serve --segment-dir`, drops the stream so the drain seals
//! everything, and compares the `HISTORY` reply against offline `mine`.

use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptpminer-cli"))
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ptpminer-history-parity-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic pseudo-random workload: `(sequence, symbol, start, end)`
/// tuples, deduplicated (a duplicate interval would be one record to the
/// window but two rows to the offline miner).
fn gen_workload(seed: u64, sequences: i64) -> Vec<(i64, String, i64, i64)> {
    let mut state = seed;
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let symbols = ["a", "b", "c", "d"];
    let mut events = Vec::new();
    for seq in 0..sequences {
        for _ in 0..(2 + next(3)) {
            let start = next(150) as i64;
            let end = start + 1 + next(20) as i64;
            let symbol = symbols[next(4) as usize].to_owned();
            let row = (seq, symbol, start, end);
            if !events.contains(&row) {
                events.push(row);
            }
        }
    }
    events
}

/// Writes a workload as stream-event lines plus one final watermark far
/// past every interval, so the run ends with everything evictable.
fn write_events(path: &Path, events: &[(i64, String, i64, i64)], final_watermark: i64) {
    let mut text = String::new();
    for (seq, sym, start, end) in events {
        text.push_str(&format!("interval {seq} {sym} {start} {end}\n"));
    }
    text.push_str(&format!("watermark {final_watermark}\n"));
    std::fs::write(path, text).unwrap();
}

/// Writes a workload as the long-CSV offline format.
fn write_csv(path: &Path, events: &[(i64, String, i64, i64)]) {
    let mut text = String::from("sequence,symbol,start,end\n");
    for (seq, sym, start, end) in events {
        text.push_str(&format!("{seq},{sym},{start},{end}\n"));
    }
    std::fs::write(path, text).unwrap();
}

/// Canonical form of a pattern set: `(support desc, pattern asc)` pairs.
fn canonical(mut pairs: Vec<(usize, String)>) -> Vec<(usize, String)> {
    pairs.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    pairs
}

/// Parses `mine`/`history` stdout (`  <pattern>   (support N)` lines).
fn parse_mine(stdout: &str) -> Vec<(usize, String)> {
    stdout
        .lines()
        .filter_map(|line| {
            let line = line.strip_prefix("  ")?;
            let (pattern, support) = line.rsplit_once("   (support ")?;
            Some((support.strip_suffix(')')?.parse().ok()?, pattern.to_owned()))
        })
        .collect()
}

/// Offline `mine` over a workload slice, canonicalized.
fn mine_offline(csv: &Path, abs_support: usize) -> Vec<(usize, String)> {
    let out = bin()
        .arg("mine")
        .arg(csv)
        .args(["--abs-support", &abs_support.to_string()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "mine: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    canonical(parse_mine(&String::from_utf8_lossy(&out.stdout)))
}

/// `history` over a sealed segment directory, canonicalized.
fn history(seg: &Path, from: i64, to: i64, abs_support: usize) -> Vec<(usize, String)> {
    let out = bin()
        .arg("history")
        .arg(seg)
        .args([
            "--from",
            &from.to_string(),
            "--to",
            &to.to_string(),
            "--abs-support",
            &abs_support.to_string(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "history: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    canonical(parse_mine(&String::from_utf8_lossy(&out.stdout)))
}

/// The rows of a workload whose interval end falls in `[from, to]` — the
/// range rule `load_range` applies (matching window eviction: an interval
/// belongs to the span that still held it).
fn slice(events: &[(i64, String, i64, i64)], from: i64, to: i64) -> Vec<(i64, String, i64, i64)> {
    events
        .iter()
        .filter(|(_, _, _, end)| from <= *end && *end <= to)
        .cloned()
        .collect()
}

#[test]
fn history_equals_offline_mine_over_sealed_ranges() {
    for (case, seed) in [(0u32, 0xB10C_5EEDu64), (1, 0xDEAD_BEE5), (2, 0x5EA1_5EED)] {
        let dir = temp_dir(&format!("prop-{case}"));
        let events = gen_workload(seed, 6);
        let input = dir.join("events.txt");
        write_events(&input, &events, 1_000);
        let seg = dir.join("seg");

        // Seal everything: tiny seal threshold, window small enough that
        // the final watermark evicts the lot before shutdown.
        let streamed = bin()
            .arg("stream")
            .arg(&input)
            .args(["--window", "10", "--abs-support", "1", "--sync-refresh"])
            .arg("--segment-dir")
            .arg(&seg)
            .args(["--segment-bytes", "1"])
            .output()
            .unwrap();
        assert_eq!(
            streamed.status.code(),
            Some(0),
            "stream: {}",
            String::from_utf8_lossy(&streamed.stderr)
        );
        let err = String::from_utf8_lossy(&streamed.stderr);
        assert!(err.contains("segments:"), "{err}");
        assert!(!err.contains("DEGRADED"), "{err}");

        // Full range: bit-identical to offline mine over every event.
        let csv = dir.join("all.csv");
        write_csv(&csv, &events);
        let full = history(&seg, -1_000, 1_000, 2);
        assert_eq!(
            full,
            mine_offline(&csv, 2),
            "case {case}: full-range history diverges from offline mine"
        );
        assert!(!full.is_empty(), "case {case}: degenerate workload");

        // Sub-range: history [from, to] == offline mine over the slice of
        // events whose end falls in [from, to].
        let (from, to) = (40, 120);
        let sliced = slice(&events, from, to);
        let slice_csv = dir.join("slice.csv");
        write_csv(&slice_csv, &sliced);
        assert_eq!(
            history(&seg, from, to, 2),
            mine_offline(&slice_csv, 2),
            "case {case}: sub-range history diverges from offline mine over the slice"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn history_usage_errors_are_clean() {
    let dir = temp_dir("usage");
    let out = bin()
        .arg("history")
        .arg(&dir)
        .args(["--from", "10", "--to", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--from 10 is after --to 5"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin().arg("history").arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing --from/--to is usage");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// TCP half: the HISTORY verb against a real `serve --segment-dir`.

/// Starts `serve` on a free port and waits for the port file.
fn launch_serve(dir: &Path, extra: &[&str]) -> (Child, String) {
    let port_file = dir.join("port.txt");
    let stderr_file = File::create(dir.join("server.log")).unwrap();
    let child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--port-file"])
        .arg(&port_file)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::from(stderr_file))
        .spawn()
        .unwrap();
    for _ in 0..300 {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            let addr = addr.trim().to_owned();
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("serve did not write its port file");
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let sock = TcpStream::connect(addr).unwrap();
        Conn {
            reader: BufReader::new(sock.try_clone().unwrap()),
            writer: sock,
        }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_owned()
    }

    fn send(&mut self, command: &str) -> Vec<String> {
        self.writer
            .write_all(format!("{command}\n").as_bytes())
            .unwrap();
        let head = self.read_line();
        let mut out = vec![head.clone()];
        if let Some(rest) = head.strip_prefix("BEGIN ") {
            let count: usize = rest.split_whitespace().next().unwrap().parse().unwrap();
            for _ in 0..count {
                out.push(self.read_line());
            }
            let end = self.read_line();
            assert_eq!(end, "END");
            out.push(end);
        }
        out
    }

    fn ok(&mut self, command: &str) {
        let reply = self.send(command);
        assert!(reply[0].starts_with("OK"), "{command} -> {reply:?}");
    }
}

/// Parses a `QUERY`/`HISTORY` block body (`support\tpattern` lines).
fn parse_block(reply: &[String]) -> Vec<(usize, String)> {
    assert!(reply[0].starts_with("BEGIN "), "{reply:?}");
    reply[1..reply.len() - 1]
        .iter()
        .map(|line| {
            let (support, pattern) = line.split_once('\t').unwrap();
            (support.parse().unwrap(), pattern.to_owned())
        })
        .collect()
}

#[test]
fn history_verb_matches_offline_mine_over_tcp() {
    let dir = temp_dir("tcp");
    let seg_root = dir.join("seg");
    let (mut child, addr) = launch_serve(&dir, &["--segment-dir", seg_root.to_str().unwrap()]);

    let events = gen_workload(0x7C9_5EED, 6);
    let max_end = events.iter().map(|e| e.3).max().unwrap();
    let mut conn = Conn::open(&addr);
    conn.ok("CREATE s WINDOW 40 ABS-SUPPORT 1 REFRESH-EVERY 1");
    for (seq, sym, start, end) in &events {
        conn.ok(&format!("EVENT s interval {seq} {sym} {start} {end}"));
    }
    conn.ok(&format!("EVENT s watermark {}", max_end + 50));
    conn.ok("SYNC s");

    // DROP seals the stream's cold store: the drain spills the evicted
    // backlog plus every completed interval still in the window, then
    // forces a seal. HISTORY keeps answering for the dropped stream.
    conn.ok("DROP s");
    let reply = conn.send(&format!(
        "HISTORY s FROM -1000 TO {} ABS-SUPPORT 2",
        max_end + 50
    ));
    let served = canonical(parse_block(&reply));
    let csv = dir.join("s.csv");
    write_csv(&csv, &events);
    let offline = mine_offline(&csv, 2);
    assert!(!offline.is_empty(), "degenerate workload");
    assert_eq!(
        served, offline,
        "HISTORY over TCP diverges from offline mine"
    );

    // A stream with no segment directory is a clean error, not a hang.
    let reply = conn.send("HISTORY nosuch FROM 0 TO 10");
    assert!(reply[0].starts_with("ERR"), "{reply:?}");

    conn.ok("SHUTDOWN");
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

#[test]
fn history_without_segment_dir_is_refused() {
    let dir = temp_dir("nodir");
    let (mut child, addr) = launch_serve(&dir, &[]);
    let mut conn = Conn::open(&addr);
    let reply = conn.send("HISTORY s FROM 0 TO 10");
    assert!(
        reply[0].starts_with("ERR") && reply[0].contains("segment-dir"),
        "{reply:?}"
    );
    conn.ok("SHUTDOWN");
    assert_eq!(child.wait().unwrap().code(), Some(0));
}
