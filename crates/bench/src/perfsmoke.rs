//! Perf-smoke suite: a handful of fixed-seed, laptop-quick workloads whose
//! wall-clock and memory numbers are committed as `BENCH_baseline.json` and
//! re-checked by CI with loose regression thresholds (>2x wall clock,
//! >1.5x peak RSS). This is a smoke gate against order-of-magnitude
//! regressions, not a microbenchmark; run it via
//! `repro --quick [--json] [--against BENCH_baseline.json]`.
//!
//! The JSON is written and parsed by hand (flat `"key": integer` pairs
//! only) so the suite also runs in the offline dev-stub container, where
//! `serde_json` is a panicking stub.

use crate::alloc_meter;
use durability::FsyncPolicy;
use interval_core::{DatabaseBuilder, IntervalDatabase, MiningBudget, StreamEvent, SymbolId};
use segment::{SegmentOptions, SegmentReader, SegmentStore};
use std::sync::Arc;
use std::time::Instant;
use stream::{
    FrozenView, IncrementalMiner, PatternSnapshot, RefreshJob, RefreshWorker, ShardPool,
    SlidingWindowDatabase, SnapshotCell,
};
use synthgen::{QuestConfig, QuestGenerator};
use tpminer::{DbIndex, MinerConfig, ParallelTpMiner, TpMiner};

/// Wall-clock regression threshold (current / baseline) that fails the gate.
pub const MAX_WALL_RATIO: f64 = 2.0;
/// Peak-RSS regression threshold (current / baseline) that fails the gate.
pub const MAX_RSS_RATIO: f64 = 1.5;
/// Journaled ingest must stay within this factor of bare ingest — gated
/// *within* a run (see [`wal_gate`]), so it never depends on the baseline
/// host's disk. The journaled side measures the WAL's software tax
/// (framing, CRC, buffered OS writes); the fsync to stable storage is a
/// separate, informational metric. The measured tax sits around x1.5 on
/// this container, and the bare-loop denominator swings a few percent
/// with the codegen of unrelated crates, so the limit carries headroom:
/// it still catches order-of-regression bugs (an accidental
/// fsync-per-append is >10x) without flaking on binary layout.
pub const MAX_WAL_RATIO: f64 = 1.6;
/// A 4-worker sharded refresh must be at least this much faster than one
/// worker over the same multi-root workload — gated *within* a run (see
/// [`shard_gate`]), and only on hosts with enough cores to actually run
/// four shard workers at once.
pub const MIN_SHARD_SPEEDUP: f64 = 1.5;
/// Cores below which [`shard_gate`] is informational: a pool's real
/// threads cannot beat one worker without hardware to run them on.
pub const SHARD_GATE_MIN_CORES: usize = 4;

/// Flat metric report: ordered `(name, value)` pairs.
#[derive(Debug, Default)]
pub struct SmokeReport {
    entries: Vec<(String, u64)>,
}

impl SmokeReport {
    fn push(&mut self, key: &str, value: u64) {
        self.entries.push((key.to_owned(), value));
    }

    /// The recorded metrics in insertion order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Value of `key`, if recorded.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Renders the report as a flat JSON object (one `"key": value` line per
    /// metric; no serde involved so it works under the offline stubs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!("  \"{k}\": {v}{comma}\n"));
        }
        out.push('}');
        out
    }

    /// Parses the flat JSON produced by [`SmokeReport::to_json`]. Tolerates
    /// whitespace and ordering changes; anything that is not a
    /// `"key": integer` pair is ignored.
    pub fn from_json(text: &str) -> SmokeReport {
        let mut report = SmokeReport::default();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some(rest) = line.strip_prefix('"') else {
                continue;
            };
            let Some((key, value)) = rest.split_once('"') else {
                continue;
            };
            let value = value.trim_start().trim_start_matches(':').trim();
            if let Ok(v) = value.parse::<u64>() {
                report.push(key, v);
            }
        }
        report
    }
}

/// The dense sequential workload: a small QUEST-style database whose
/// frontier projections dominate the runtime (the hot path the SoA
/// frontier targets).
pub fn dense_db() -> IntervalDatabase {
    QuestGenerator::new(QuestConfig {
        num_sequences: 600,
        avg_intervals_per_sequence: 12.0,
        avg_pattern_arity: 4.0,
        num_symbols: 40,
        num_potential_patterns: 20,
        corruption: 0.25,
        noise: 0.15,
        avg_duration: 20.0,
        horizon: 400,
        seed: 7,
    })
    .generate()
}

/// The skewed-roots parallel workload: two heavy root symbols (many
/// overlapping same-symbol instances → deep subtrees) that a round-robin
/// partition over sorted symbol ids lands on the *same* worker at 2
/// threads, plus light filler roots. A weight-ordered work queue spreads
/// the heavy subtrees across workers instead.
pub fn skewed_db() -> IntervalDatabase {
    let mut b = DatabaseBuilder::new();
    for s in 0..48i64 {
        let t = s % 7;
        let mut sb = b.sequence();
        // Heavy symbol H0 (interned first → even symbol id 0).
        for k in 0..5 {
            sb = sb.interval("H0", t + k, t + k + 6);
        }
        sb = sb.interval("L1", t + 13, t + 15);
        // Heavy symbol H2 (even symbol id 2: round-robin pairs it with H0).
        for k in 0..5 {
            sb = sb.interval("H2", t + k + 1, t + k + 7);
        }
        // The light roots start after every heavy instance has finished:
        // patterns only grow forward, so light-rooted subtrees stay tiny
        // while the heavy roots absorb the whole tail.
        sb.interval("L3", t + 14, t + 16)
            .interval("L5", t + 15, t + 17)
            .interval("L7", t + 16, t + 18);
    }
    b.build()
}

/// Runs the suite and collects the metric report. Prints a short progress
/// line per workload to stderr.
pub fn run() -> SmokeReport {
    let mut report = SmokeReport::default();

    // --- dense sequential mine ---
    let db = dense_db();
    let min_sup = db.absolute_support(0.05);
    let config = MinerConfig::with_min_support(min_sup);
    let (result, rss) = alloc_meter::measure_peak(|| {
        let started = Instant::now();
        let result = TpMiner::new(config).mine(&db);
        (started.elapsed().as_micros() as u64, result)
    });
    let (dense_us, result) = result;
    let stats = result.stats().clone();
    eprintln!(
        "perf-smoke: dense sequential mine — {} patterns in {} us",
        result.len(),
        dense_us
    );
    report.push("dense_patterns", result.len() as u64);
    report.push("dense_mine_us", dense_us);
    report.push("dense_peak_rss_bytes", rss.unwrap_or(0));
    report.push("dense_peak_node_states", stats.peak_node_states);
    report.push("dense_states_created", stats.states_created);
    report.push("dense_arena_peak_bytes", stats.arena_peak_bytes);
    report.push("dense_scratch_reuse_hits", stats.scratch_reuse_hits);

    // --- skewed-root parallel mine ---
    let db = skewed_db();
    let min_sup = db.absolute_support(0.60);
    let config = MinerConfig::with_min_support(min_sup).max_arity(6);
    let started = Instant::now();
    let seq = TpMiner::new(config).mine(&db);
    let skew_seq_us = started.elapsed().as_micros() as u64;
    let par = ParallelTpMiner::new(config, 2).mine(&db);
    assert_eq!(
        seq.patterns(),
        par.patterns(),
        "perf-smoke parity violation: parallel output diverged"
    );

    // Per-root subtree times, then the two schedulers' makespans at 2
    // workers. Measuring each root alone and *simulating* the assignments
    // keeps this meaningful on single-core hosts (and under the offline
    // crossbeam stub, whose scoped "threads" run sequentially), where a
    // wall-clock comparison of the two schedulers would read as a tie.
    let index = DbIndex::build(&db);
    let roots = index.frequent_symbols(min_sup);
    let single = ParallelTpMiner::new(config, 1);
    let root_times: Vec<u64> = roots
        .iter()
        .map(|&r| {
            let started = Instant::now();
            let _ = single.mine_partitions(&index, &[r]);
            started.elapsed().as_micros() as u64
        })
        .collect();
    let rr_makespan = round_robin_makespan(&root_times, 2);
    let wq_makespan = work_queue_makespan(&roots, &root_times, &index, 2);
    eprintln!(
        "perf-smoke: skewed mine — {} patterns, seq {} us; 2-worker makespan \
         round-robin {} us vs work-queue {} us",
        par.len(),
        skew_seq_us,
        rr_makespan,
        wq_makespan
    );
    report.push("skew_patterns", par.len() as u64);
    report.push("skew_seq_us", skew_seq_us);
    report.push("skew_rr_makespan_us", rr_makespan);
    report.push("skew_wq_makespan_us", wq_makespan);

    // --- streaming: synchronous vs pipelined refresh ---
    // The gated number is the *ingest* wall time: how long the ingest loop
    // is occupied until the last event is accepted. Synchronous refreshes
    // stall the loop for every re-mine; the pipelined worker only charges
    // it a freeze, so the gap is the throughput the pipeline wins back.
    let events = stream_workload();
    let config = MinerConfig::with_min_support(4).max_arity(3);

    let started = Instant::now();
    let mut window = SlidingWindowDatabase::new(STREAM_WINDOW);
    let mut miner = IncrementalMiner::new(config, 1);
    for event in &events {
        let is_watermark = matches!(event, StreamEvent::Watermark(_));
        window
            .ingest(event.clone())
            .expect("workload is well-formed");
        if is_watermark {
            miner.refresh(&mut window);
        }
    }
    let sync_final = miner.refresh(&mut window);
    let sync_total_us = started.elapsed().as_micros() as u64;

    let started = Instant::now();
    let mut window = SlidingWindowDatabase::new(STREAM_WINDOW);
    let cell = Arc::new(SnapshotCell::new());
    let worker = RefreshWorker::spawn(IncrementalMiner::new(config, 1), Arc::clone(&cell));
    for event in &events {
        let is_watermark = matches!(event, StreamEvent::Watermark(_));
        window
            .ingest(event.clone())
            .expect("workload is well-formed");
        if is_watermark {
            worker.submit_or_coalesce(|| RefreshJob {
                min_support: None,
                view: window.freeze(),
                budget: MiningBudget::unlimited(),
            });
        }
    }
    let pipe_ingest_stall_ns = started.elapsed().as_nanos() as u64;
    let outcome = worker.shutdown();
    let mut miner = outcome.miner.expect("refresh worker must join");
    let pipe_final = miner.refresh(&mut window);
    let pipe_total_us = started.elapsed().as_micros() as u64;
    assert_eq!(
        sync_final.result.patterns(),
        pipe_final.result.patterns(),
        "perf-smoke parity violation: pipelined stream output diverged"
    );
    eprintln!(
        "perf-smoke: streaming {} events — total {} us sync vs {} us pipelined; \
         pipelined ingest loop stalled only {} ns \
         ({} background refreshes, {} coalesced)",
        events.len(),
        sync_total_us,
        pipe_total_us,
        pipe_ingest_stall_ns,
        outcome.stats.completed_refreshes,
        outcome.stats.coalesced_refreshes,
    );
    report.push("stream_events", events.len() as u64);
    report.push("stream_patterns", pipe_final.result.len() as u64);
    report.push("stream_sync_total_us", sync_total_us);
    report.push("stream_pipe_total_us", pipe_total_us);
    report.push("stream_pipe_ingest_stall_ns", pipe_ingest_stall_ns);
    report.push("stream_pipe_refreshes", outcome.stats.completed_refreshes);
    report.push("stream_pipe_coalesced", outcome.stats.coalesced_refreshes);

    // --- streaming: the WAL's ingest tax ---
    // An ingest-only loop (no refreshes — the journal taxes ingest, so
    // that is what gets timed) runs bare and journaled under the epoch
    // fsync policy, over [`wal_workload`] rather than the refresh-oriented
    // toy stream above: the gate's denominator must reflect what ingest
    // costs at realistic window scale, not an L1-resident microbenchmark.
    // The *gated* number is the WAL's steady-state software tax — framing,
    // checksumming, buffered writes into the OS — because that is what a
    // code change can regress. Pushing the bytes to stable storage is disk
    // bandwidth: on hosts whose in-memory ingest outruns the disk (this
    // container: ~300 MB/s of events vs a ~160 MB/s disk), no
    // implementation could keep fsync-inclusive time within any small
    // factor of bare ingest. So the epoch fsync lands in a separate,
    // informational `stream_wal_flush_us` metric (see [`INFORMATIONAL`]),
    // and the timed loop spans a single epoch (no mid-loop seal).
    // Best-of-N samples, several workload replays per sample, so the
    // measurement is not timer-resolution noise.
    let wal_events = wal_workload();
    let wal_off_ingest_us = best_of(3, || {
        let started = Instant::now();
        for _ in 0..WAL_REPS {
            let mut window = SlidingWindowDatabase::new(STREAM_WINDOW);
            for event in &wal_events {
                window
                    .ingest(event.clone())
                    .expect("workload is well-formed");
            }
        }
        started.elapsed().as_micros() as u64
    });
    let mut sample = 0u64;
    let mut wal_flush_us = 0u64;
    let wal_on_ingest_us = best_of(3, || {
        sample += 1;
        let dir = std::env::temp_dir().join(format!(
            "ptpminer-perfsmoke-wal-{}-{sample}",
            std::process::id()
        ));
        // A rotation horizon past the whole run keeps the loop inside one
        // epoch; the end-of-epoch fsync is timed separately below.
        let mut journal = stream::Journal::open(&dir, i64::MAX / 2, FsyncPolicy::Epoch)
            .expect("temp WAL dir must open");
        let started = Instant::now();
        for _ in 0..WAL_REPS {
            let mut window = SlidingWindowDatabase::new(STREAM_WINDOW);
            for event in &wal_events {
                journal.append(event);
                window
                    .ingest(event.clone())
                    .expect("workload is well-formed");
            }
        }
        let us = started.elapsed().as_micros() as u64;
        let flush_started = Instant::now();
        assert!(journal.flush(), "perf-smoke journal must stay healthy");
        wal_flush_us = wal_flush_us.max(flush_started.elapsed().as_micros() as u64);
        std::fs::remove_dir_all(&dir).ok();
        us
    });
    eprintln!(
        "perf-smoke: streaming ingest {} us bare vs {} us journaled \
         (+{} us epoch flush to stable storage)",
        wal_off_ingest_us, wal_on_ingest_us, wal_flush_us
    );
    report.push("stream_wal_off_ingest_us", wal_off_ingest_us);
    report.push("stream_wal_on_ingest_us", wal_on_ingest_us);
    report.push("stream_wal_flush_us", wal_flush_us);

    // --- segment store: out-of-core spill + historical re-mine ---
    // The WAL workload again, but through the cold path: a window a
    // quarter of the WAL run's size (50 time units against a ~200-unit
    // stream — the mined historical range spans 4x the in-RAM cap, so
    // this genuinely exercises out-of-core re-mining, not a cache hit),
    // every watermark eviction spilled into a `SegmentStore`, sealed into
    // checksummed segment files, and the whole span re-mined from disk
    // through `SegmentReader` — the same path `history` and the `HISTORY`
    // wire verb take (see docs/STORAGE.md).
    const SEGMENT_WINDOW: i64 = 50;
    let seg_events = wal_workload();
    let seg_dir =
        std::env::temp_dir().join(format!("ptpminer-perfsmoke-seg-{}", std::process::id()));
    std::fs::remove_dir_all(&seg_dir).ok();
    let mut seg_store = SegmentStore::open(
        &seg_dir,
        SegmentOptions {
            seal_bytes: 256 << 10, // several seals over this workload
            ..SegmentOptions::default()
        },
    )
    .expect("temp segment dir must open");
    let mut window = SlidingWindowDatabase::new(SEGMENT_WINDOW);
    window.retain_evicted(true);
    let started = Instant::now();
    for event in &seg_events {
        let is_watermark = matches!(event, StreamEvent::Watermark(_));
        window
            .ingest(event.clone())
            .expect("workload is well-formed");
        if is_watermark {
            for (sequence, iv) in window.take_evicted() {
                seg_store.append(sequence, window.symbols().name(iv.symbol), iv.start, iv.end);
            }
            seg_store.maybe_seal();
        }
    }
    let tail: Vec<_> = window.completed_intervals().collect();
    for (sequence, iv) in tail {
        seg_store.append(sequence, window.symbols().name(iv.symbol), iv.start, iv.end);
    }
    seg_store.seal();
    let segment_spill_us = started.elapsed().as_micros() as u64;
    assert!(
        !seg_store.is_degraded(),
        "perf-smoke segment store must stay healthy"
    );
    let seg_stats = seg_store.stats().clone();
    drop(seg_store);

    let started = Instant::now();
    let reader = SegmentReader::open(&seg_dir).expect("sealed store must reopen");
    let load = reader
        .load_range(0, 1_000)
        .expect("sealed segments must read back");
    let segment_load_us = started.elapsed().as_micros() as u64;
    let min_sup = load.sequences / 4;
    let dirty: Vec<SymbolId> = load.symbols.iter().map(|(id, _)| id).collect();
    let view = FrozenView::from_parts(dirty, load.seq_indexes, Some(1_000), Some(0), load.symbols);
    let started = Instant::now();
    let mut miner = IncrementalMiner::new(MinerConfig::with_min_support(min_sup), 0);
    let history = miner.refresh_frozen(&view, MiningBudget::unlimited());
    let segment_mine_us = started.elapsed().as_micros() as u64;
    assert!(
        !history.result.patterns().is_empty(),
        "out-of-core re-mine found no patterns — workload degenerated"
    );
    eprintln!(
        "perf-smoke: segment store — spilled {} records into {} segments \
         ({} bytes) in {} us; reloaded {} intervals across {} sequences in \
         {} us; re-mined {} patterns in {} us",
        seg_stats.records_sealed,
        seg_stats.segments_sealed,
        seg_stats.bytes_sealed,
        segment_spill_us,
        load.intervals,
        load.sequences,
        segment_load_us,
        history.result.len(),
        segment_mine_us,
    );
    report.push("segment_spill_ingest_us", segment_spill_us);
    report.push("segment_segments_sealed", seg_stats.segments_sealed);
    report.push("segment_records_sealed", seg_stats.records_sealed);
    report.push("segment_bytes_sealed", seg_stats.bytes_sealed);
    report.push("segment_history_load_us", segment_load_us);
    report.push("segment_history_mine_us", segment_mine_us);
    report.push("segment_history_patterns", history.result.len() as u64);
    std::fs::remove_dir_all(&seg_dir).ok();

    // --- service tier: TCP ingest throughput ---
    // The same streaming workload, pushed through `serve`'s full network
    // path: wire parsing, per-connection framing, session locking and the
    // pipelined refresh worker. The gated number is the wall time from the
    // first `BATCH` byte to its acknowledgement (the server acks only
    // after every payload event is ingested), so it bounds protocol +
    // ingest overhead without gating the miner twice.
    let (serve_ingest_us, serve_patterns) = serve_ingest_throughput(&events);
    let serve_rate = events.len() as f64 * 1e6 / serve_ingest_us.max(1) as f64;
    eprintln!(
        "perf-smoke: serve TCP ingest — {} events in {} us ({:.0} events/s), \
         {} patterns after sync",
        events.len(),
        serve_ingest_us,
        serve_rate,
        serve_patterns,
    );
    report.push("serve_events", events.len() as u64);
    report.push("serve_batch_ingest_us", serve_ingest_us);
    report.push("serve_synced_patterns", serve_patterns);

    // --- streaming: sharded refresh pool ---
    // One full refresh's mining work (every root dirty) through the
    // [`ShardPool`], at 1 worker vs 4, over the multi-root dense workload.
    // The intra-run speedup is gated by [`shard_gate`] — only on hosts
    // with at least [`SHARD_GATE_MIN_CORES`] cores, since the pool runs
    // real threads and cannot beat one worker without cores to run on.
    let db = dense_db();
    let min_sup = db.absolute_support(0.05);
    let config = MinerConfig::with_min_support(min_sup);
    let index = Arc::new(DbIndex::build(&db));
    let roots = index.frequent_symbols(min_sup);
    let pool1 = ShardPool::new(1);
    let pool4 = ShardPool::new(4);
    let one = pool1.mine_sharded(&index, &roots, config, MiningBudget::unlimited());
    let four = pool4.mine_sharded(&index, &roots, config, MiningBudget::unlimited());
    assert_eq!(
        one.patterns(),
        four.patterns(),
        "perf-smoke parity violation: sharded refresh output diverged"
    );
    let shard1_us = best_of(3, || {
        let started = Instant::now();
        let _ = pool1.mine_sharded(&index, &roots, config, MiningBudget::unlimited());
        started.elapsed().as_micros() as u64
    });
    let shard4_us = best_of(3, || {
        let started = Instant::now();
        let _ = pool4.mine_sharded(&index, &roots, config, MiningBudget::unlimited());
        started.elapsed().as_micros() as u64
    });
    eprintln!(
        "perf-smoke: sharded refresh — {} roots, {} patterns; {} us at 1 worker \
         vs {} us at 4",
        roots.len(),
        one.len(),
        shard1_us,
        shard4_us,
    );
    report.push("stream_shard_roots", roots.len() as u64);
    report.push("stream_shard1_refresh_us", shard1_us);
    report.push("stream_shard4_refresh_us", shard4_us);

    // --- streaming: subscriber fan-out ---
    // Publication with subscribers attached must stay a pointer swap plus
    // one bounded `try_send` per subscriber. Queues are sized to the whole
    // run, so every revision reaches every subscriber and the timed loop
    // measures fan-out, not drop handling.
    const FANOUT_SUBSCRIBERS: usize = 8;
    const FANOUT_REVISIONS: u64 = 1_000;
    let cell = SnapshotCell::new();
    let subscribers: Vec<_> = (0..FANOUT_SUBSCRIBERS)
        .map(|_| cell.subscribe(FANOUT_REVISIONS as usize))
        .collect();
    let started = Instant::now();
    for revision in 1..=FANOUT_REVISIONS {
        cell.store(Arc::new(PatternSnapshot {
            revision,
            ..PatternSnapshot::empty()
        }));
    }
    let fanout_publish_us = started.elapsed().as_micros() as u64;
    for sub in &subscribers {
        let mut drained = 0u64;
        while sub.try_next().is_some() {
            drained += 1;
        }
        assert_eq!(drained, FANOUT_REVISIONS, "fan-out lost revisions");
        assert_eq!(sub.dropped(), 0, "sized-to-run queue must not drop");
    }
    let fanout_rate = (FANOUT_REVISIONS * FANOUT_SUBSCRIBERS as u64) as f64 * 1e6
        / fanout_publish_us.max(1) as f64;
    eprintln!(
        "perf-smoke: subscriber fan-out — {} revisions to {} subscribers in {} us \
         ({:.0} deliveries/s)",
        FANOUT_REVISIONS, FANOUT_SUBSCRIBERS, fanout_publish_us, fanout_rate,
    );
    report.push("stream_fanout_publish_us", fanout_publish_us);

    report
}

/// The intra-run sharded-refresh gate: 4 pool workers at least
/// [`MIN_SHARD_SPEEDUP`]x faster than 1 over the same roots. Enforced only
/// on hosts with [`SHARD_GATE_MIN_CORES`]+ cores — a 1- or 2-core host
/// runs the pool's threads (mostly) sequentially, so the comparison is
/// printed for information but cannot fail the gate there. Returns the
/// failure message, if any.
pub fn shard_gate(report: &SmokeReport) -> Option<String> {
    let one = report.get("stream_shard1_refresh_us")?;
    let four = report.get("stream_shard4_refresh_us")?;
    if one == 0 || four == 0 {
        return None; // timer too coarse to judge
    }
    let speedup = one as f64 / four as f64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let enforced = cores >= SHARD_GATE_MIN_CORES;
    let verdict = if speedup >= MIN_SHARD_SPEEDUP {
        "ok"
    } else if enforced {
        "FAIL"
    } else {
        "ok (informational: too few cores)"
    };
    eprintln!(
        "perf-smoke: shard speedup x{speedup:.2} (1 worker {one} us vs 4 workers {four} us, \
         need x{MIN_SHARD_SPEEDUP} on {SHARD_GATE_MIN_CORES}+ cores, host has {cores}) {verdict}"
    );
    (enforced && speedup < MIN_SHARD_SPEEDUP).then(|| {
        format!(
            "4-worker sharded refresh only x{speedup:.2} faster than 1 worker \
             ({four} us vs {one} us, need x{MIN_SHARD_SPEEDUP} on this {cores}-core host)"
        )
    })
}

/// Drives one `BATCH` of `events` through an in-process [`server`] over a
/// real socket; returns (ack wall time in us, patterns after `SYNC`).
fn serve_ingest_throughput(events: &[StreamEvent]) -> (u64, u64) {
    use std::io::{BufRead, BufReader, Write};

    let handle = server::ServerHandle::launch("127.0.0.1:0", server::ServerConfig::default())
        .expect("perf-smoke server must bind a loopback port");
    let sock = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut writer = sock;
    fn roundtrip(
        writer: &mut std::net::TcpStream,
        reader: &mut BufReader<std::net::TcpStream>,
        line: &str,
    ) -> String {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        assert!(reply.starts_with("OK"), "{line} -> {reply}");
        reply.trim_end().to_owned()
    }

    roundtrip(
        &mut writer,
        &mut reader,
        "CREATE perf WINDOW 100 ABS-SUPPORT 4 MAX-ARITY 3 REFRESH-EVERY 1",
    );
    let mut batch = format!("BATCH perf {}\n", events.len());
    for event in events {
        batch.push_str(&event.to_string());
        batch.push('\n');
    }
    let started = Instant::now();
    writer.write_all(batch.as_bytes()).expect("send batch");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("batch ack");
    let ingest_us = started.elapsed().as_micros() as u64;
    assert!(
        reply.starts_with("OK batch accepted="),
        "batch must be fully accepted: {reply}"
    );
    assert!(reply.contains("rejected=0"), "{reply}");

    let synced = roundtrip(&mut writer, &mut reader, "SYNC perf");
    let patterns: u64 = synced
        .rsplit_once("patterns=")
        .and_then(|(_, n)| n.parse().ok())
        .expect("SYNC reply carries a pattern count");
    drop(writer);
    drop(reader);
    let drain = handle.shutdown().expect("perf-smoke server must drain");
    assert!(!drain.any_worker_failed(), "refresh worker died under load");
    (ingest_us, patterns)
}

/// Replays of the WAL workload per timing sample (keeps each sample in the
/// tens of milliseconds, well above timer noise).
const WAL_REPS: usize = 5;

/// The WAL gate's workload: 512 sequences carrying 8 co-occurring symbols
/// per round from a 32-symbol alphabet, one watermark per round — big
/// enough that the window's per-event hash and eviction work runs at a
/// realistic cache footprint instead of entirely in L1. The toy
/// [`stream_workload`] would understate bare ingest cost and make the
/// gate's ratio meaninglessly harsh.
fn wal_workload() -> Vec<StreamEvent> {
    let (seqs, syms, rounds) = (512u64, 8usize, 20i64);
    let mut events = Vec::with_capacity((seqs as usize * syms + 1) * rounds as usize);
    for round in 0..rounds {
        let t0 = round * 10;
        for seq in 0..seqs {
            for s in 0..syms {
                events.push(StreamEvent::Interval {
                    sequence: seq,
                    symbol: format!("s{:02}", (seq as usize + s) % (syms * 4)),
                    start: t0 + s as i64,
                    end: t0 + s as i64 + 5,
                });
            }
        }
        events.push(StreamEvent::Watermark(t0 + 9));
    }
    events
}

/// Smallest of `samples` runs — the least-disturbed measurement.
fn best_of(samples: usize, mut run: impl FnMut() -> u64) -> u64 {
    (0..samples).map(|_| run()).min().unwrap_or(0)
}

/// The intra-run WAL gate: journaled ingest within [`MAX_WAL_RATIO`] of
/// bare ingest, compared inside one run on one host (a cross-host baseline
/// would gate the disk, not the code). Returns the failure message, if any.
pub fn wal_gate(report: &SmokeReport) -> Option<String> {
    let off = report.get("stream_wal_off_ingest_us")?;
    let on = report.get("stream_wal_on_ingest_us")?;
    if off == 0 {
        return None; // timer too coarse to judge
    }
    let ratio = on as f64 / off as f64;
    let verdict = if ratio > MAX_WAL_RATIO { "FAIL" } else { "ok" };
    eprintln!(
        "perf-smoke: wal tax x{ratio:.2} (journaled {on} us vs bare {off} us, \
         limit x{MAX_WAL_RATIO}) {verdict}"
    );
    (ratio > MAX_WAL_RATIO).then(|| {
        format!(
            "WAL-on ingest regressed to x{ratio:.2} of WAL-off \
             (journaled {on} us, bare {off} us, limit x{MAX_WAL_RATIO})"
        )
    })
}

/// Window length for the streaming workload (about 10 rounds stay live).
const STREAM_WINDOW: i64 = 100;

/// The streaming workload: a fixed, dense event stream — 8 sequences
/// carrying 5 co-occurring symbols per round, one watermark (= one refresh
/// trigger) per round — sized so a refresh costs far more than an ingest.
pub fn stream_workload() -> Vec<StreamEvent> {
    let symbols = ["a", "b", "c", "d", "e"];
    let mut events = Vec::new();
    for round in 0i64..100 {
        for seq in 0..8u64 {
            for (i, sym) in symbols.iter().enumerate() {
                let start = round * 10 + i as i64;
                events.push(StreamEvent::Interval {
                    sequence: seq,
                    symbol: (*sym).into(),
                    start,
                    end: start + 5,
                });
            }
        }
        events.push(StreamEvent::Watermark(round * 10 + 9));
    }
    events
}

/// Makespan of the legacy static round-robin partition: worker `w` owns
/// roots `w, w + workers, …` and their times simply sum.
fn round_robin_makespan(root_times: &[u64], threads: usize) -> u64 {
    let workers = threads.min(root_times.len()).max(1);
    (0..workers)
        .map(|w| root_times.iter().skip(w).step_by(workers).sum())
        .max()
        .unwrap_or(0)
}

/// Makespan of the shared work queue: roots are ordered by estimated
/// subtree weight (total instance count, heaviest first, ties by symbol id)
/// and each idle worker claims the next unclaimed root — i.e. greedy list
/// scheduling, which is what the atomic-cursor queue in
/// `tpminer::parallel` executes.
fn work_queue_makespan(
    roots: &[SymbolId],
    root_times: &[u64],
    index: &DbIndex,
    threads: usize,
) -> u64 {
    let workers = threads.min(roots.len()).max(1);
    let mut order: Vec<usize> = (0..roots.len()).collect();
    order.sort_by_key(|&i| {
        let weight: usize = index
            .sequences
            .iter()
            .map(|s| s.instances_of(roots[i]).len())
            .sum();
        (std::cmp::Reverse(weight), roots[i])
    });
    let mut loads = vec![0u64; workers];
    for &i in &order {
        let w = (0..workers)
            .min_by_key(|&w| loads[w])
            .expect("workers >= 1");
        loads[w] += root_times[i];
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Metrics recorded for information only, never gated: these are bound by
/// disk hardware (an fsync's cost swings ~3x with page-cache state), so a
/// cross-run ratio would flake without telling us anything about the code.
const INFORMATIONAL: &[&str] = &["stream_wal_flush_us"];

/// Compares `current` against a committed `baseline`, printing one line per
/// gated metric. Returns the list of regression messages (empty = pass).
/// Wall-clock keys (`*_us`) gate at [`MAX_WALL_RATIO`], RSS keys
/// (`*_rss_bytes`) at [`MAX_RSS_RATIO`]; other keys are informational.
pub fn compare(current: &SmokeReport, baseline: &SmokeReport) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, &base) in baseline.entries.iter().map(|(k, v)| (k, v)) {
        let Some(cur) = current.get(key) else {
            failures.push(format!("metric `{key}` missing from current run"));
            continue;
        };
        if INFORMATIONAL.contains(&key.as_str()) {
            continue;
        }
        let threshold = if key.ends_with("_us") {
            Some(MAX_WALL_RATIO)
        } else if key.ends_with("_rss_bytes") {
            Some(MAX_RSS_RATIO)
        } else {
            None
        };
        let Some(threshold) = threshold else {
            continue;
        };
        if base == 0 {
            // Unmeasurable on the baseline host (e.g. no /proc); skip.
            continue;
        }
        let ratio = cur as f64 / base as f64;
        let verdict = if ratio > threshold { "FAIL" } else { "ok" };
        eprintln!("perf-smoke: {key}: {cur} vs baseline {base} (x{ratio:.2}) {verdict}");
        if ratio > threshold {
            failures.push(format!(
                "{key} regressed x{ratio:.2} (current {cur}, baseline {base}, limit x{threshold})"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let mut report = SmokeReport::default();
        report.push("dense_mine_us", 12345);
        report.push("dense_peak_rss_bytes", 67890);
        let parsed = SmokeReport::from_json(&report.to_json());
        assert_eq!(parsed.entries(), report.entries());
    }

    #[test]
    fn compare_flags_only_regressions() {
        let mut base = SmokeReport::default();
        base.push("a_us", 100);
        base.push("b_rss_bytes", 1000);
        base.push("c_patterns", 5);
        let mut fast = SmokeReport::default();
        fast.push("a_us", 150); // x1.5 < 2.0
        fast.push("b_rss_bytes", 1400); // x1.4 < 1.5
        fast.push("c_patterns", 9); // informational
        assert!(compare(&fast, &base).is_empty());
        let mut slow = SmokeReport::default();
        slow.push("a_us", 250); // x2.5 > 2.0
        slow.push("b_rss_bytes", 1600); // x1.6 > 1.5
        slow.push("c_patterns", 5);
        assert_eq!(compare(&slow, &base).len(), 2);
    }

    #[test]
    fn fsync_cost_is_informational_never_gated() {
        let mut base = SmokeReport::default();
        base.push("stream_wal_flush_us", 40_000);
        let mut slow = SmokeReport::default();
        // A 3x swing is normal page-cache weather, not a regression.
        slow.push("stream_wal_flush_us", 120_000);
        assert!(compare(&slow, &base).is_empty());
    }

    #[test]
    fn wal_gate_fails_only_past_the_ratio() {
        let mut ok = SmokeReport::default();
        ok.push("stream_wal_off_ingest_us", 1000);
        ok.push("stream_wal_on_ingest_us", 1500); // x1.5 < 1.6
        assert!(wal_gate(&ok).is_none());
        let mut slow = SmokeReport::default();
        slow.push("stream_wal_off_ingest_us", 1000);
        slow.push("stream_wal_on_ingest_us", 1700); // x1.7 > 1.6
        assert!(wal_gate(&slow).is_some());
        // Missing metrics (an old baseline) never fail the gate.
        assert!(wal_gate(&SmokeReport::default()).is_none());
    }

    #[test]
    fn shard_gate_is_hardware_conditional() {
        let mut slow = SmokeReport::default();
        slow.push("stream_shard1_refresh_us", 1000);
        slow.push("stream_shard4_refresh_us", 900); // x1.11 < 1.5
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= SHARD_GATE_MIN_CORES {
            assert!(shard_gate(&slow).is_some(), "must fail on a wide host");
        } else {
            assert!(
                shard_gate(&slow).is_none(),
                "informational on {cores} cores"
            );
        }
        let mut fast = SmokeReport::default();
        fast.push("stream_shard1_refresh_us", 1000);
        fast.push("stream_shard4_refresh_us", 500); // x2.0 >= 1.5
        assert!(shard_gate(&fast).is_none(), "a real speedup always passes");
        // Missing metrics (an old baseline) never fail the gate.
        assert!(shard_gate(&SmokeReport::default()).is_none());
    }

    #[test]
    fn skewed_db_interns_heavy_symbols_at_even_ids() {
        let db = skewed_db();
        assert_eq!(db.symbols().lookup("H0").map(|s| s.0), Some(0));
        assert_eq!(db.symbols().lookup("H2").map(|s| s.0), Some(2));
    }
}
