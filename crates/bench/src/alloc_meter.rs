//! Peak-memory measurement for the memory experiment (E4).
//!
//! Uses the Linux `VmHWM` peak-RSS counter, resettable through
//! `/proc/self/clear_refs`, so each mining run can be measured in isolation
//! without a custom global allocator. On other platforms (or when `/proc` is
//! unavailable) the functions return `None` and the experiment falls back to
//! the miners' own allocation-free proxies (frontier states, occurrence
//! lists).

use std::fs;

/// Resets the process's peak-RSS water mark. Returns `false` when the
/// platform does not support it.
pub fn reset_peak_rss() -> bool {
    fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// The current peak RSS in bytes, if readable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Measures the peak RSS increase caused by `f`, in bytes (best effort).
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    let supported = reset_peak_rss();
    let before = peak_rss_bytes();
    let value = f();
    let after = peak_rss_bytes();
    let peak = match (supported, before, after) {
        // clear_refs resets the water mark to current usage, so the delta is
        // the run's additional peak; fall back to the absolute peak.
        (true, Some(b), Some(a)) => Some(a.saturating_sub(b)),
        _ => None,
    };
    (value, peak.or(after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_readable_on_linux() {
        // The repository's benchmarks run on Linux; elsewhere None is fine.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().is_some());
        }
    }

    #[test]
    fn measure_peak_returns_value() {
        let (v, _peak) = measure_peak(|| {
            let big: Vec<u8> = vec![1; 4 << 20];
            big.len()
        });
        assert_eq!(v, 4 << 20);
    }
}
