//! Result-table rendering and machine-readable row output.
//!
//! Every experiment prints a fixed-width table (what the paper's figure
//! would plot) and appends JSON rows to `results/<experiment>.jsonl` so
//! `EXPERIMENTS.md` numbers can be regenerated mechanically.

use serde_json::Value;
use std::fmt::Write as _;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;

/// A fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (i, cell) in cells.iter().enumerate() {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.columns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Appends one JSON row to `results/<experiment>.jsonl` under the workspace
/// root (best effort: failures are reported to stderr, never fatal).
pub fn emit_json_row(experiment: &str, row: &Value) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    let result = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{row}"));
    if let Err(e) = result {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// The `results/` directory (workspace root when running via cargo, current
/// directory otherwise).
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Formats a duration in adaptive units.
pub fn fmt_micros(micros: u64) -> String {
    if micros >= 10_000_000 {
        format!("{:.2}s", micros as f64 / 1e6)
    } else if micros >= 10_000 {
        format!("{:.1}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 100 * 1024 * 1024 {
        format!("{:.2}GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 100 * 1024 {
        format!("{:.2}MiB", bytes as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1}KiB", bytes as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "123456".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("a-much-longer-name"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        // data lines align on the right edge
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row/column mismatch")]
    fn row_length_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_micros(900), "900us");
        assert_eq!(fmt_micros(25_000), "25.0ms");
        assert_eq!(fmt_micros(12_000_000), "12.00s");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert!(fmt_bytes(5 << 20).ends_with("MiB"));
    }
}
