//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- \
//!     [--scale quick|full] [--timeout SECS] [e1 e2 ... e8 | all]
//! ```
//!
//! Each experiment prints the table/series the corresponding paper figure
//! plots and appends machine-readable rows to `results/<exp>.jsonl`.
//!
//! `--timeout SECS` caps each P-TPMiner invocation's wall clock via a
//! [`MiningBudget`]; a run that trips it is flagged `(truncated)` — its
//! pattern set is a sound subset (exact supports), so the timing row and
//! any cross-miner agreement checks for that row are skipped.

use baselines::{HDfsMiner, IeMiner, TPrefixSpan};
use bench::alloc_meter;
use bench::chart::{Chart, Series};
use bench::tables::{emit_json_row, fmt_bytes, fmt_micros, Table};
use bench::workloads::{self, Scale};
use interval_core::{IntervalDatabase, UncertainDatabase};
use serde_json::json;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use tpminer::{
    closed_patterns, DbIndex, MinerConfig, MiningBudget, ProbabilisticConfig, ProbabilisticMiner,
    PruningConfig, Termination, TpMiner,
};

/// Exit codes, mirroring the `cli/src/exit.rs` registry (the bench
/// harness does not depend on the CLI crate; xlint's `exit-code-registry`
/// rule bans re-deriving these as bare numerals). `1` is the generic
/// gate-failure code, distinct from every registry code.
const EXIT_REGRESSION: i32 = 1;
const EXIT_USAGE: i32 = 2;

/// Per-invocation wall-clock cap from `--timeout`, if any.
static RUN_TIMEOUT: OnceLock<Option<Duration>> = OnceLock::new();

/// A fresh budget for one mining invocation (each call restarts the
/// deadline clock, so `--timeout` bounds individual runs, not the whole
/// harness).
fn run_budget() -> MiningBudget {
    match RUN_TIMEOUT.get().copied().flatten() {
        Some(limit) => MiningBudget::unlimited().with_timeout(limit),
        None => MiningBudget::unlimited(),
    }
}

/// Flags a truncated run on stderr; returns whether it was complete.
fn note_truncation(who: &str, termination: &Termination) -> bool {
    if termination.is_complete() {
        true
    } else {
        eprintln!("!! {who}: {termination} — row is truncated, comparisons skipped");
        false
    }
}

fn main() {
    let mut scale = Scale::Quick;
    let mut timeout: Option<Duration> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut perf_quick = false;
    let mut perf_json = false;
    let mut perf_against: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => perf_quick = true,
            "--json" => perf_json = true,
            "--against" => {
                let value = args.next().unwrap_or_default();
                if value.is_empty() {
                    eprintln!("--against needs a baseline file path");
                    std::process::exit(EXIT_USAGE);
                }
                perf_against = Some(value);
            }
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale `{value}` (expected quick|full)");
                    std::process::exit(EXIT_USAGE);
                });
            }
            "--timeout" => {
                let value = args.next().unwrap_or_default();
                match value.parse::<f64>() {
                    Ok(secs) if secs.is_finite() && secs >= 0.0 && secs <= 1e15 => {
                        timeout = Some(Duration::from_secs_f64(secs));
                    }
                    _ => {
                        eprintln!("bad --timeout `{value}` (expected seconds)");
                        std::process::exit(EXIT_USAGE);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale quick|full] [--timeout SECS] [e1 e2 e3 e4 e5 e6 e7 e8 | all]\n\
                            repro --quick [--json] [--against BENCH_baseline.json]   (perf-smoke suite)"
                );
                return;
            }
            other => experiments.push(other.to_owned()),
        }
    }
    RUN_TIMEOUT.set(timeout).expect("set once");
    if perf_quick {
        perf_smoke(perf_json, perf_against.as_deref());
        return;
    }
    if perf_json || perf_against.is_some() {
        eprintln!("--json/--against only apply to the --quick perf-smoke suite");
        std::process::exit(EXIT_USAGE);
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = (1..=8).map(|i| format!("e{i}")).collect();
    }

    println!("P-TPMiner reproduction harness (scale: {scale:?})");
    println!("(see DESIGN.md §4 for the experiment index, EXPERIMENTS.md for recorded results)\n");
    for exp in &experiments {
        match exp.as_str() {
            "e1" => e1(scale),
            "e2" => e2(scale),
            "e3" => e3(scale),
            "e4" => e4(scale),
            "e5" => e5(scale),
            "e6" => e6(scale),
            "e7" => e7(scale),
            "e8" => e8(scale),
            other => eprintln!("unknown experiment `{other}` (expected e1..e8)"),
        }
        println!();
    }
}

/// The `--quick` perf-smoke mode: runs the fixed-seed smoke workloads,
/// optionally emits the flat JSON baseline to stdout, and optionally gates
/// against a committed baseline file (nonzero exit on regression).
fn perf_smoke(json: bool, against: Option<&str>) {
    let report = bench::perfsmoke::run();
    if json {
        println!("{}", report.to_json());
    } else {
        for (key, value) in report.entries() {
            println!("{key}: {value}");
        }
    }
    // The WAL tax and shard speedup gates compare metrics of *this* run,
    // so they apply with or without a committed baseline (the shard gate
    // additionally requires enough cores to be meaningful).
    let mut failures = Vec::new();
    failures.extend(bench::perfsmoke::wal_gate(&report));
    failures.extend(bench::perfsmoke::shard_gate(&report));
    if let Some(path) = against {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline `{path}`: {e}");
            std::process::exit(EXIT_USAGE);
        });
        let baseline = bench::perfsmoke::SmokeReport::from_json(&text);
        if baseline.entries().is_empty() {
            eprintln!("baseline `{path}` contains no metrics");
            std::process::exit(EXIT_USAGE);
        }
        failures.extend(bench::perfsmoke::compare(&report, &baseline));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("perf-smoke REGRESSION: {f}");
        }
        std::process::exit(EXIT_REGRESSION);
    }
    if against.is_some() {
        eprintln!("perf-smoke: all metrics within thresholds");
    }
}

fn run_tpminer(db: &IntervalDatabase, min_sup: usize) -> (u64, Vec<tpminer::FrequentPattern>) {
    let started = Instant::now();
    let result = TpMiner::new(MinerConfig::with_min_support(min_sup))
        .with_budget(run_budget())
        .mine(db);
    note_truncation("P-TPMiner", result.termination());
    (started.elapsed().as_micros() as u64, result.into_patterns())
}

fn check_agreement(
    reference: &[tpminer::FrequentPattern],
    other: &[tpminer::FrequentPattern],
    who: &str,
) {
    if RUN_TIMEOUT.get().copied().flatten().is_some() {
        // Truncated reference sets make disagreement expected, not a bug.
        return;
    }
    if reference != other {
        eprintln!(
            "!! {who} disagrees with P-TPMiner ({} vs {} patterns) — this should never happen",
            other.len(),
            reference.len()
        );
    }
}

// ---------------------------------------------------------------- E1 ----
fn e1(scale: Scale) {
    let db = workloads::e1_database(scale);
    let mut table = Table::new(
        &format!(
            "E1 (Fig: runtime vs minimum support) — {} ({} seqs, {} intervals)",
            workloads::base_quest(scale).name(),
            db.len(),
            db.total_intervals()
        ),
        &[
            "min_sup",
            "abs",
            "patterns",
            "P-TPMiner",
            "TPrefixSpan",
            "IEMiner",
            "H-DFS",
        ],
    );
    let mut x = Vec::new();
    let mut ys: [Vec<f64>; 4] = Default::default();
    for rel in workloads::e1_support_sweep(scale) {
        let min_sup = db.absolute_support(rel);

        let (tp_us, tp_patterns) = run_tpminer(&db, min_sup);

        let started = Instant::now();
        let tps = TPrefixSpan::new(min_sup).mine(&db);
        let tps_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &tps.patterns, "TPrefixSpan");

        let started = Instant::now();
        let ie = IeMiner::new(min_sup).mine(&db);
        let ie_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &ie.patterns, "IEMiner");

        let started = Instant::now();
        let hdfs = HDfsMiner::new(min_sup).mine(&db);
        let hdfs_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &hdfs.patterns, "H-DFS");

        x.push(format!("{:.0}%", rel * 100.0));
        for (y, us) in ys.iter_mut().zip([tp_us, tps_us, ie_us, hdfs_us]) {
            y.push(us as f64);
        }
        table.row(vec![
            format!("{:.0}%", rel * 100.0),
            min_sup.to_string(),
            tp_patterns.len().to_string(),
            fmt_micros(tp_us),
            fmt_micros(tps_us),
            fmt_micros(ie_us),
            fmt_micros(hdfs_us),
        ]);
        emit_json_row(
            "e1",
            &json!({
                "rel_support": rel, "abs_support": min_sup,
                "patterns": tp_patterns.len(),
                "tpminer_us": tp_us, "tprefixspan_us": tps_us,
                "ieminer_us": ie_us, "hdfs_us": hdfs_us,
            }),
        );
    }
    table.print();
    Chart::new("runtime (us, log scale) vs minimum support", x)
        .log_y()
        .series(Series::new("P-TPMiner", &ys[0]))
        .series(Series::new("TPrefixSpan", &ys[1]))
        .series(Series::new("IEMiner", &ys[2]))
        .series(Series::new("H-DFS", &ys[3]))
        .print();
}

// ---------------------------------------------------------------- E2 ----
fn e2(scale: Scale) {
    let rel = workloads::e2_support(scale);
    let mut table = Table::new(
        &format!("E2 (Fig: scalability in |D|) — min_sup {:.0}%", rel * 100.0),
        &[
            "|D|",
            "patterns",
            "P-TPMiner",
            "TPrefixSpan",
            "IEMiner",
            "H-DFS",
        ],
    );
    let mut x = Vec::new();
    let mut ys: [Vec<f64>; 4] = Default::default();
    for n in workloads::e2_sizes(scale) {
        let db = workloads::e2_database(scale, n);
        let min_sup = db.absolute_support(rel);

        let (tp_us, tp_patterns) = run_tpminer(&db, min_sup);

        let started = Instant::now();
        let tps = TPrefixSpan::new(min_sup).mine(&db);
        let tps_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &tps.patterns, "TPrefixSpan");

        let started = Instant::now();
        let ie = IeMiner::new(min_sup).mine(&db);
        let ie_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &ie.patterns, "IEMiner");

        let started = Instant::now();
        let hdfs = HDfsMiner::new(min_sup).mine(&db);
        let hdfs_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &hdfs.patterns, "H-DFS");

        x.push(n.to_string());
        for (y, us) in ys.iter_mut().zip([tp_us, tps_us, ie_us, hdfs_us]) {
            y.push(us as f64);
        }
        table.row(vec![
            n.to_string(),
            tp_patterns.len().to_string(),
            fmt_micros(tp_us),
            fmt_micros(tps_us),
            fmt_micros(ie_us),
            fmt_micros(hdfs_us),
        ]);
        emit_json_row(
            "e2",
            &json!({
                "sequences": n, "patterns": tp_patterns.len(),
                "tpminer_us": tp_us, "tprefixspan_us": tps_us,
                "ieminer_us": ie_us, "hdfs_us": hdfs_us,
            }),
        );
    }
    table.print();
    Chart::new("runtime (us, log scale) vs database size", x)
        .log_y()
        .series(Series::new("P-TPMiner", &ys[0]))
        .series(Series::new("TPrefixSpan", &ys[1]))
        .series(Series::new("IEMiner", &ys[2]))
        .series(Series::new("H-DFS", &ys[3]))
        .print();
}

// ---------------------------------------------------------------- E3 ----
fn e3(scale: Scale) {
    let db = workloads::e1_database(scale);
    let index = DbIndex::build(&db);
    let configs: Vec<(&str, PruningConfig)> = vec![
        ("all", PruningConfig::all()),
        (
            "no-pair",
            PruningConfig {
                pair_pruning: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no-postfix",
            PruningConfig {
                postfix_pruning: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no-symbol",
            PruningConfig {
                symbol_pruning: false,
                ..PruningConfig::all()
            },
        ),
        ("none", PruningConfig::none()),
    ];
    let mut columns: Vec<&str> = vec!["min_sup", "patterns"];
    columns.extend(configs.iter().map(|(n, _)| *n));
    let mut table = Table::new("E3 (Fig: pruning-technique ablation)", &columns);
    let mut x = Vec::new();
    let mut ys: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for rel in workloads::e1_support_sweep(scale) {
        let min_sup = db.absolute_support(rel);
        let mut cells = vec![format!("{:.0}%", rel * 100.0)];
        let mut reference: Option<Vec<tpminer::FrequentPattern>> = None;
        let mut row_json = serde_json::Map::new();
        row_json.insert("rel_support".into(), json!(rel));
        x.push(format!("{:.0}%", rel * 100.0));
        for (ci, (name, pruning)) in configs.iter().enumerate() {
            let started = Instant::now();
            let result = TpMiner::new(MinerConfig::with_min_support(min_sup).pruning(*pruning))
                .with_budget(run_budget())
                .mine_indexed(&index);
            let us = started.elapsed().as_micros() as u64;
            note_truncation(name, result.termination());
            match &reference {
                None => {
                    cells.push(result.len().to_string());
                    reference = Some(result.patterns().to_vec());
                }
                Some(r) => check_agreement(r, result.patterns(), name),
            }
            cells.push(fmt_micros(us));
            ys[ci].push(us as f64);
            row_json.insert(format!("{name}_us"), json!(us));
        }
        table.row(cells);
        emit_json_row("e3", &serde_json::Value::Object(row_json));
    }
    table.print();
    let mut chart = Chart::new("runtime (us, log scale) per pruning configuration", x).log_y();
    for (ci, (name, _)) in configs.iter().enumerate() {
        chart = chart.series(Series::new(name, &ys[ci]));
    }
    chart.print();
}

// ---------------------------------------------------------------- E4 ----
fn e4(scale: Scale) {
    let db = workloads::e1_database(scale);
    // RSS deltas are best-effort (the allocator reuses already-mapped pages
    // across runs); the structural proxies — live embedding states for the
    // projected databases vs. materialized occurrence tuples for the
    // id-lists — are the reliable series, mirroring what the paper's memory
    // figure contrasts.
    let mut table = Table::new(
        "E4 (Fig: peak memory vs minimum support)",
        &[
            "min_sup",
            "P-TPMiner peak states",
            "states created",
            "arena peak",
            "scratch reuse",
            "H-DFS occurrences",
            "P-TPMiner RSS",
            "H-DFS RSS",
        ],
    );
    for rel in workloads::e1_support_sweep(scale) {
        let min_sup = db.absolute_support(rel);
        let (tp, tp_rss) = alloc_meter::measure_peak(|| {
            TpMiner::new(MinerConfig::with_min_support(min_sup))
                .with_budget(run_budget())
                .mine(&db)
        });
        note_truncation("P-TPMiner", tp.termination());
        let (hd, hd_rss) = alloc_meter::measure_peak(|| HDfsMiner::new(min_sup).mine(&db));
        let fmt_rss = |r: Option<u64>| match r {
            Some(0) | None => "n/a".to_string(),
            Some(b) => fmt_bytes(b),
        };
        table.row(vec![
            format!("{:.0}%", rel * 100.0),
            tp.stats().peak_node_states.to_string(),
            tp.stats().states_created.to_string(),
            fmt_bytes(tp.stats().arena_peak_bytes),
            tp.stats().scratch_reuse_hits.to_string(),
            hd.stats.occurrences_materialized.to_string(),
            fmt_rss(tp_rss),
            fmt_rss(hd_rss),
        ]);
        emit_json_row(
            "e4",
            &json!({
                "rel_support": rel,
                "tpminer_rss": tp_rss, "tpminer_peak_states": tp.stats().peak_node_states,
                "tpminer_states_created": tp.stats().states_created,
                "tpminer_arena_peak_bytes": tp.stats().arena_peak_bytes,
                "tpminer_scratch_reuse_hits": tp.stats().scratch_reuse_hits,
                "hdfs_rss": hd_rss, "hdfs_occurrences": hd.stats.occurrences_materialized,
            }),
        );
    }
    table.print();
}

// ---------------------------------------------------------------- E5 ----
fn e5(scale: Scale) {
    let rel = workloads::e2_support(scale);
    let mut table = Table::new(
        &format!(
            "E5 (Fig: runtime vs intervals-per-sequence |C|) — min_sup {:.0}%",
            rel * 100.0
        ),
        &["|C|", "patterns", "P-TPMiner", "TPrefixSpan", "H-DFS"],
    );
    let mut x = Vec::new();
    let mut ys: [Vec<f64>; 3] = Default::default();
    for c in workloads::e5_densities(scale) {
        let db = workloads::e5_database(scale, c);
        let min_sup = db.absolute_support(rel);

        let (tp_us, tp_patterns) = run_tpminer(&db, min_sup);

        let started = Instant::now();
        let tps = TPrefixSpan::new(min_sup).mine(&db);
        let tps_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &tps.patterns, "TPrefixSpan");

        let started = Instant::now();
        let hdfs = HDfsMiner::new(min_sup).mine(&db);
        let hdfs_us = started.elapsed().as_micros() as u64;
        check_agreement(&tp_patterns, &hdfs.patterns, "H-DFS");

        x.push(format!("{c}"));
        for (y, us) in ys.iter_mut().zip([tp_us, tps_us, hdfs_us]) {
            y.push(us as f64);
        }
        table.row(vec![
            format!("{c}"),
            tp_patterns.len().to_string(),
            fmt_micros(tp_us),
            fmt_micros(tps_us),
            fmt_micros(hdfs_us),
        ]);
        emit_json_row(
            "e5",
            &json!({
                "density": c, "patterns": tp_patterns.len(),
                "tpminer_us": tp_us, "tprefixspan_us": tps_us, "hdfs_us": hdfs_us,
            }),
        );
    }
    table.print();
    Chart::new("runtime (us, log scale) vs sequence density", x)
        .log_y()
        .series(Series::new("P-TPMiner", &ys[0]))
        .series(Series::new("TPrefixSpan", &ys[1]))
        .series(Series::new("H-DFS", &ys[2]))
        .print();
}

// ---------------------------------------------------------------- E6 ----
fn e6(scale: Scale) {
    let mut table = Table::new(
        "E6 (Table: realistic datasets case study)",
        &[
            "dataset",
            "seqs",
            "intervals",
            "symbols",
            "min_sup",
            "patterns",
            "closed",
            "runtime",
        ],
    );
    let mut examples: Vec<String> = Vec::new();
    for (name, db, max_arity) in workloads::e6_datasets(scale) {
        for rel in workloads::e6_supports() {
            let min_sup = db.absolute_support(rel);
            let started = Instant::now();
            let result = TpMiner::new(MinerConfig::with_min_support(min_sup).max_arity(max_arity))
                .with_budget(run_budget())
                .mine(&db);
            let us = started.elapsed().as_micros() as u64;
            // Closed filtering needs the complete set; on a truncated run
            // the closed column is best-effort (see tpminer::closed).
            note_truncation(name, result.termination());
            let closed = closed_patterns(result.patterns());
            table.row(vec![
                name.to_string(),
                db.len().to_string(),
                db.total_intervals().to_string(),
                db.symbols().len().to_string(),
                format!("{:.0}%", rel * 100.0),
                result.len().to_string(),
                closed.len().to_string(),
                fmt_micros(us),
            ]);
            emit_json_row(
                "e6",
                &json!({
                    "dataset": name, "rel_support": rel, "abs_support": min_sup,
                    "patterns": result.len(), "closed": closed.len(), "runtime_us": us,
                }),
            );
            if (rel - 0.30).abs() < 1e-9 {
                // Showcase the highest-arity patterns, as the paper's case
                // study does.
                let mut by_arity: Vec<_> = result.patterns().to_vec();
                by_arity.sort_by_key(|p| std::cmp::Reverse((p.pattern.arity(), p.support)));
                for p in by_arity.iter().take(2) {
                    examples.push(format!(
                        "  [{name}] {}   (support {}, {:.0}%)",
                        p.pattern.display(db.symbols()),
                        p.support,
                        100.0 * p.support as f64 / db.len() as f64
                    ));
                }
            }
        }
    }
    table.print();
    println!("example patterns at 30% support:");
    for e in examples {
        println!("{e}");
    }
}

// ---------------------------------------------------------------- E7 ----
fn e7(scale: Scale) {
    let udb: UncertainDatabase = workloads::e7_database(scale);
    let mut table = Table::new(
        &format!(
            "E7 (Fig: probabilistic mining) — uncertain {} seqs, {} intervals",
            udb.len(),
            udb.total_intervals()
        ),
        &[
            "min_esup",
            "patterns",
            "with PT4",
            "without PT4",
            "candidates",
            "screened",
        ],
    );
    let mut x = Vec::new();
    let mut ys: [Vec<f64>; 2] = Default::default();
    for rel in workloads::e7_esup_sweep(scale) {
        let min_esup = rel * udb.len() as f64;
        let mut cfg = ProbabilisticConfig::with_min_expected_support(min_esup);
        cfg.upper_bound_pruning = true;
        let with = ProbabilisticMiner::new(cfg)
            .with_budget(run_budget())
            .mine(&udb);
        cfg.upper_bound_pruning = false;
        let without = ProbabilisticMiner::new(cfg)
            .with_budget(run_budget())
            .mine(&udb);
        let complete = note_truncation("with PT4", with.termination())
            && note_truncation("without PT4", without.termination());
        if complete && with.patterns() != without.patterns() {
            eprintln!("!! PT4 changed the probabilistic output — this should never happen");
        }
        x.push(format!("{:.0}%", rel * 100.0));
        ys[0].push(with.stats().elapsed_micros as f64);
        ys[1].push(without.stats().elapsed_micros as f64);
        table.row(vec![
            format!("{:.0}%", rel * 100.0),
            with.len().to_string(),
            fmt_micros(with.stats().elapsed_micros),
            fmt_micros(without.stats().elapsed_micros),
            with.stats().candidates.to_string(),
            with.stats().pruned_by_bound.to_string(),
        ]);
        emit_json_row(
            "e7",
            &json!({
                "rel_esup": rel, "min_esup": min_esup, "patterns": with.len(),
                "with_pt4_us": with.stats().elapsed_micros,
                "without_pt4_us": without.stats().elapsed_micros,
                "candidates": with.stats().candidates,
                "screened": with.stats().pruned_by_bound,
            }),
        );
    }
    table.print();
    Chart::new("P-TPMiner runtime (us) vs expected-support threshold", x)
        .log_y()
        .series(Series::new("with PT4", &ys[0]))
        .series(Series::new("without PT4", &ys[1]))
        .print();
}

// ---------------------------------------------------------------- E8 ----
fn e8(scale: Scale) {
    let db = workloads::e1_database(scale);
    let rel = *workloads::e1_support_sweep(scale)
        .last()
        .expect("non-empty sweep");
    let min_sup = db.absolute_support(rel);
    let result = TpMiner::new(MinerConfig::with_min_support(min_sup))
        .with_budget(run_budget())
        .mine(&db);
    note_truncation("P-TPMiner", result.termination());
    let closed = closed_patterns(result.patterns());
    let hist = result.arity_histogram();
    let mut closed_hist = vec![0usize; hist.len()];
    for p in &closed {
        closed_hist[p.pattern.arity()] += 1;
    }
    let mut table = Table::new(
        &format!(
            "E8 (Fig: pattern count by length) — min_sup {:.0}%",
            rel * 100.0
        ),
        &["arity", "frequent", "closed"],
    );
    let mut x = Vec::new();
    let mut freq_series = Vec::new();
    let mut closed_series = Vec::new();
    for arity in 1..hist.len() {
        x.push(arity.to_string());
        freq_series.push(hist[arity] as f64);
        closed_series.push(closed_hist[arity] as f64);
        table.row(vec![
            arity.to_string(),
            hist[arity].to_string(),
            closed_hist[arity].to_string(),
        ]);
        emit_json_row(
            "e8",
            &json!({"arity": arity, "frequent": hist[arity], "closed": closed_hist[arity]}),
        );
    }
    table.print();
    Chart::new("pattern counts by arity", x)
        .series(Series::new("frequent", &freq_series))
        .series(Series::new("closed", &closed_series))
        .print();
}
