//! Terminal line charts for the repro harness: after each experiment's
//! table, the corresponding *figure* is rendered as an ASCII chart (log-y
//! for runtimes, linear otherwise), so the harness output visually mirrors
//! the paper's plots.

use std::fmt::Write as _;

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// y-values, parallel to the chart's x labels. `None` = missing point.
    pub values: Vec<Option<f64>>,
}

impl Series {
    /// Builds a series from values (all present).
    pub fn new(name: &str, values: &[f64]) -> Self {
        Self {
            name: name.to_owned(),
            values: values.iter().copied().map(Some).collect(),
        }
    }
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_labels: Vec<String>,
    series: Vec<Series>,
    log_y: bool,
    height: usize,
}

/// Per-series plot glyphs, cycled.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl Chart {
    /// Creates a chart with the given title and x-axis labels.
    pub fn new(title: &str, x_labels: Vec<String>) -> Self {
        Self {
            title: title.to_owned(),
            x_labels,
            series: Vec::new(),
            log_y: false,
            height: 12,
        }
    }

    /// Uses a logarithmic y-axis (for runtime plots).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series (values parallel to the x labels).
    pub fn series(mut self, s: Series) -> Self {
        assert_eq!(
            s.values.len(),
            self.x_labels.len(),
            "series length must match x labels"
        );
        self.series.push(s);
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- {} --", self.title);
        let points: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().flatten().copied())
            .filter(|v| v.is_finite() && (!self.log_y || *v > 0.0))
            .collect();
        if points.is_empty() || self.x_labels.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let transform = |v: f64| if self.log_y { v.log10() } else { v };
        let lo = points
            .iter()
            .copied()
            .map(transform)
            .fold(f64::MAX, f64::min);
        let hi = points
            .iter()
            .copied()
            .map(transform)
            .fold(f64::MIN, f64::max);
        let span = (hi - lo).max(1e-9);

        let col_width = self
            .x_labels
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(1)
            .max(3)
            + 2;
        let width = self.x_labels.len() * col_width;
        let mut grid = vec![vec![' '; width]; self.height];

        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            let mut prev: Option<(usize, usize)> = None;
            for (xi, v) in s.values.iter().enumerate() {
                let Some(v) = v else {
                    prev = None;
                    continue;
                };
                if !v.is_finite() || (self.log_y && *v <= 0.0) {
                    prev = None;
                    continue;
                }
                let y = ((transform(*v) - lo) / span * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - y.min(self.height - 1);
                let col = xi * col_width + col_width / 2;
                // connect to the previous point with a sparse trace
                if let Some((prow, pcol)) = prev {
                    let steps = col.saturating_sub(pcol);
                    for step in 1..steps {
                        let t = step as f64 / steps as f64;
                        let irow = (prow as f64 + (row as f64 - prow as f64) * t).round() as usize;
                        let icol = pcol + step;
                        if grid[irow][icol] == ' ' {
                            grid[irow][icol] = '.';
                        }
                    }
                }
                grid[row][col] = glyph;
                prev = Some((row, col));
            }
        }

        let y_label = |frac: f64| {
            let v = lo + span * frac;
            if self.log_y {
                human(10f64.powf(v))
            } else {
                human(v)
            }
        };
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                y_label(1.0)
            } else if i == self.height - 1 {
                y_label(0.0)
            } else if i == self.height / 2 {
                y_label(0.5)
            } else {
                String::new()
            };
            let _ = writeln!(out, "{label:>9} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(width));
        let mut axis = String::new();
        for l in &self.x_labels {
            let _ = write!(axis, "{l:^col_width$}");
        }
        let _ = writeln!(out, "{:>9}  {axis}", "");
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.name))
            .collect();
        let _ = writeln!(out, "{:>9}  {}", "", legend.join("   "));
        out
    }

    /// Prints the chart to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Short human form of a number (for axis labels).
fn human(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 10.0 || v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axis_and_legend() {
        let chart = Chart::new("runtime", vec!["5%".into(), "10%".into(), "20%".into()])
            .log_y()
            .series(Series::new("fast", &[10.0, 20.0, 40.0]))
            .series(Series::new("slow", &[100.0, 400.0, 1600.0]));
        let text = chart.render();
        assert!(text.contains("-- runtime --"));
        assert!(text.contains("* fast"));
        assert!(text.contains("o slow"));
        assert!(text.contains("5%"));
        assert!(text.contains("20%"));
        // both glyphs appear as plotted points
        assert!(text.matches('*').count() >= 3);
        assert!(text.matches('o').count() >= 3);
    }

    #[test]
    fn log_scale_orders_extremes() {
        let chart = Chart::new("t", vec!["a".into(), "b".into()])
            .log_y()
            .series(Series::new("s", &[1.0, 1000.0]));
        let text = chart.render();
        let lines: Vec<&str> = text.lines().collect();
        // max label on the top row, min on the bottom grid row
        assert!(lines[1].contains("1.0k"));
        assert!(lines
            .iter()
            .any(|l| l.contains("1 |") || l.contains("1.00")));
    }

    #[test]
    fn missing_points_are_skipped() {
        let chart = Chart::new("t", vec!["a".into(), "b".into()]).series(Series {
            name: "s".into(),
            values: vec![Some(1.0), None],
        });
        let text = chart.render();
        // one plotted point plus the legend glyph
        assert_eq!(text.matches('*').count(), 2);
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let chart = Chart::new("t", vec![]);
        assert!(chart.render().contains("(no data)"));
        let chart = Chart::new("t", vec!["a".into()]).series(Series {
            name: "s".into(),
            values: vec![None],
        });
        assert!(chart.render().contains("(no data)"));
    }

    #[test]
    fn human_labels() {
        assert_eq!(human(1234.0), "1.2k");
        assert_eq!(human(5.0), "5");
        assert_eq!(human(0.25), "0.25");
        assert_eq!(human(2_500_000.0), "2.5M");
        assert_eq!(human(3_000_000_000.0), "3.0G");
    }

    #[test]
    #[should_panic(expected = "series length")]
    fn mismatched_series_panics() {
        let _ = Chart::new("t", vec!["a".into()]).series(Series::new("s", &[1.0, 2.0]));
    }
}
