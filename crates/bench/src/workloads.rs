//! The evaluation workloads, one constructor per experiment.
//!
//! The paper's synthetic datasets follow the QUEST naming convention
//! (`D…-C…-S…-N…`). The absolute sizes here are scaled so the full harness
//! completes on a laptop in minutes while preserving the *shape* of every
//! curve (the baselines' asymptotic disadvantages kick in well before paper
//! scale); `Scale::Full` restores paper-sized databases for the pattern
//! miners that can handle them.

use datasets::{
    GestureConfig, GestureEmulator, LibraryConfig, LibraryEmulator, StockConfig, StockEmulator,
};
use interval_core::{IntervalDatabase, UncertainDatabase};
use synthgen::{QuestConfig, QuestGenerator, UncertaintyConfig};

/// Harness scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly sizes (default; used for the checked-in
    /// `EXPERIMENTS.md` numbers).
    Quick,
    /// Paper-sized databases (minutes to hours for the slow baselines).
    Full,
}

impl Scale {
    /// Parses `quick` / `full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// The base synthetic workload shared by E1/E3/E4/E8.
pub fn base_quest(scale: Scale) -> QuestConfig {
    match scale {
        Scale::Quick => QuestConfig {
            num_sequences: 2_000,
            avg_intervals_per_sequence: 8.0,
            avg_pattern_arity: 4.0,
            num_symbols: 100,
            num_potential_patterns: 30,
            corruption: 0.25,
            noise: 0.15,
            avg_duration: 20.0,
            horizon: 500,
            seed: 42,
        },
        Scale::Full => QuestConfig {
            num_sequences: 10_000,
            num_symbols: 1_000,
            seed: 42,
            ..QuestConfig::paper_default()
        },
    }
}

/// Generates the base synthetic database.
pub fn e1_database(scale: Scale) -> IntervalDatabase {
    QuestGenerator::new(base_quest(scale)).generate()
}

/// The relative minimum supports swept by E1/E3/E4 (descending, so the
/// "runtime explodes as support drops" shape is visible left to right).
pub fn e1_support_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.20, 0.15, 0.10, 0.07, 0.05],
        Scale::Full => vec![0.10, 0.07, 0.05, 0.03, 0.02, 0.01],
    }
}

/// Database sizes for the scalability experiment (E2).
pub fn e2_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1_000, 2_000, 4_000, 8_000, 16_000],
        Scale::Full => vec![10_000, 25_000, 50_000, 75_000, 100_000],
    }
}

/// The fixed relative support used by E2 and E5.
pub fn e2_support(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 0.10,
        Scale::Full => 0.05,
    }
}

/// Generates a database of `n` sequences with the base parameters.
pub fn e2_database(scale: Scale, n: usize) -> IntervalDatabase {
    QuestGenerator::new(base_quest(scale).sequences(n)).generate()
}

/// Densities (intervals per sequence) swept by E5.
pub fn e5_densities(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![4.0, 8.0, 12.0, 16.0, 20.0],
        Scale::Full => vec![4.0, 8.0, 12.0, 16.0, 20.0, 24.0],
    }
}

/// Generates a database with `c` average intervals per sequence.
pub fn e5_database(scale: Scale, c: f64) -> IntervalDatabase {
    let base = base_quest(scale);
    let cfg = QuestConfig {
        num_sequences: base.num_sequences / 2,
        ..base
    }
    .intervals_per_sequence(c);
    QuestGenerator::new(cfg).generate()
}

/// The three realistic datasets of the case study (E6), each with the
/// pattern-arity cap its table reports.
///
/// The caps mirror how interval-mining case studies present results: the
/// emulated domains contain *tiling* interval structure (a stock ticker's
/// up/down/flat runs partition every window; a keen patron borrows the same
/// category many times), so unbounded "x before x before x …" chains are
/// frequent at any support and the uncapped frequent set is exponential.
/// Reporting arrangements of up to 3–4 intervals is what the original case
/// studies do.
pub fn e6_datasets(scale: Scale) -> Vec<(&'static str, IntervalDatabase, usize)> {
    let factor = match scale {
        Scale::Quick => 1,
        Scale::Full => 5,
    };
    vec![
        (
            "library",
            LibraryEmulator::new(LibraryConfig {
                patrons: 1_000 * factor,
                ..Default::default()
            })
            .generate(),
            4,
        ),
        (
            "stock",
            StockEmulator::new(StockConfig {
                windows: 500 * factor,
                days_per_window: 10,
                ..Default::default()
            })
            .generate(),
            3,
        ),
        (
            "gesture",
            GestureEmulator::new(GestureConfig {
                utterances: 800 * factor,
                ..Default::default()
            })
            .generate(),
            4,
        ),
    ]
}

/// Relative supports reported per dataset in the E6 table. The emulated
/// datasets have small alphabets (9–24 symbols), so moderate thresholds
/// already admit rich pattern sets; below ~25% the pattern space of the
/// densest dataset explodes combinatorially.
pub fn e6_supports() -> Vec<f64> {
    vec![0.50, 0.40, 0.30]
}

/// The uncertain workload of the probabilistic experiment (E7).
pub fn e7_database(scale: Scale) -> UncertainDatabase {
    let cfg = match scale {
        Scale::Quick => base_quest(Scale::Quick).sequences(1_000),
        Scale::Full => base_quest(Scale::Full).sequences(5_000),
    };
    QuestGenerator::new(cfg).generate_uncertain(&UncertaintyConfig::default())
}

/// Expected-support thresholds (relative) swept by E7.
pub fn e7_esup_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.20, 0.15, 0.10, 0.07],
        Scale::Full => vec![0.10, 0.07, 0.05, 0.03],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workloads_have_declared_sizes() {
        let db = e1_database(Scale::Quick);
        assert_eq!(db.len(), 2_000);
        let db = e2_database(Scale::Quick, 1_000);
        assert_eq!(db.len(), 1_000);
    }

    #[test]
    fn sweeps_are_descending() {
        for s in [Scale::Quick, Scale::Full] {
            let sweep = e1_support_sweep(s);
            assert!(sweep.windows(2).all(|w| w[0] > w[1]));
            let esweep = e7_esup_sweep(s);
            assert!(esweep.windows(2).all(|w| w[0] > w[1]));
        }
    }

    #[test]
    fn e6_provides_three_named_datasets() {
        let sets = e6_datasets(Scale::Quick);
        assert_eq!(sets.len(), 3);
        for (name, db, max_arity) in sets {
            assert!(!db.is_empty(), "{name} is empty");
            assert!(max_arity >= 3, "{name} cap too tight for a case study");
        }
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
    }
}
