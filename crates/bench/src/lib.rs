//! Shared helpers for the benchmark harness (workload construction, result
//! table formatting, and a byte-counting allocator for the memory
//! experiment). The `repro` binary and the criterion benches both build on
//! this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_meter;
pub mod chart;
pub mod perfsmoke;
pub mod tables;
pub mod workloads;
