//! Microbenchmarks of the core primitives: endpoint transformation, index
//! construction, containment matching and arrangement canonicalization.

use criterion::{criterion_group, criterion_main, Criterion};
use interval_core::{matcher, EndpointSeq, TemporalPattern};
use synthgen::{QuestConfig, QuestGenerator};
use tpminer::DbIndex;

fn bench_micro(c: &mut Criterion) {
    let db =
        QuestGenerator::new(QuestConfig::small().sequences(1_000).symbols(60).seed(42)).generate();
    let dense = db
        .sequences()
        .iter()
        .max_by_key(|s| s.len())
        .expect("non-empty db")
        .clone();

    c.bench_function("endpoint-transform", |b| {
        b.iter(|| EndpointSeq::from_sequence(&dense))
    });
    c.bench_function("db-index-build", |b| b.iter(|| DbIndex::build(&db)));

    let pattern = TemporalPattern::arrangement_of(&dense.intervals()[..3.min(dense.len())]);
    c.bench_function("matcher-contains", |b| {
        b.iter(|| {
            db.sequences()
                .iter()
                .filter(|s| matcher::contains(s, &pattern))
                .count()
        })
    });
    c.bench_function("arrangement-canonicalize", |b| {
        b.iter(|| TemporalPattern::arrangement_of(dense.intervals()))
    });
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
