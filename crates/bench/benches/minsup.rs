//! Criterion bench behind experiment E1: miner runtime as the minimum
//! support drops, P-TPMiner vs the three baselines.

use baselines::{HDfsMiner, IeMiner, TPrefixSpan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthgen::{QuestConfig, QuestGenerator};
use tpminer::{MinerConfig, TpMiner};

fn bench_minsup(c: &mut Criterion) {
    let db =
        QuestGenerator::new(QuestConfig::small().sequences(500).symbols(60).seed(42)).generate();
    let mut group = c.benchmark_group("e1-minsup");
    group.sample_size(10);
    for rel in [0.20, 0.10, 0.05] {
        let min_sup = db.absolute_support(rel);
        group.bench_with_input(
            BenchmarkId::new("p-tpminer", format!("{rel}")),
            &min_sup,
            |b, &s| b.iter(|| TpMiner::new(MinerConfig::with_min_support(s)).mine(&db)),
        );
        group.bench_with_input(
            BenchmarkId::new("tprefixspan", format!("{rel}")),
            &min_sup,
            |b, &s| b.iter(|| TPrefixSpan::new(s).mine(&db)),
        );
        group.bench_with_input(
            BenchmarkId::new("ieminer", format!("{rel}")),
            &min_sup,
            |b, &s| b.iter(|| IeMiner::new(s).mine(&db)),
        );
        group.bench_with_input(
            BenchmarkId::new("h-dfs", format!("{rel}")),
            &min_sup,
            |b, &s| b.iter(|| HDfsMiner::new(s).mine(&db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_minsup);
criterion_main!(benches);
