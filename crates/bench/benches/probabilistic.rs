//! Criterion bench behind experiment E7: P-TPMiner over uncertain data,
//! with and without the PT4 expected-support upper-bound screen.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthgen::{QuestConfig, QuestGenerator, UncertaintyConfig};
use tpminer::{ProbabilisticConfig, ProbabilisticMiner};

fn bench_probabilistic(c: &mut Criterion) {
    let udb = QuestGenerator::new(QuestConfig::small().sequences(300).symbols(40).seed(42))
        .generate_uncertain(&UncertaintyConfig::default());
    let mut group = c.benchmark_group("e7-probabilistic");
    group.sample_size(10);
    for rel in [0.20f64, 0.10] {
        let min_esup = rel * udb.len() as f64;
        for (name, pt4) in [("with-pt4", true), ("without-pt4", false)] {
            group.bench_with_input(BenchmarkId::new(name, format!("{rel}")), &pt4, |b, &pt4| {
                b.iter(|| {
                    let mut cfg = ProbabilisticConfig::with_min_expected_support(min_esup);
                    cfg.upper_bound_pruning = pt4;
                    ProbabilisticMiner::new(cfg).mine(&udb)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_probabilistic);
criterion_main!(benches);
