//! Criterion bench behind experiment E5: P-TPMiner runtime as sequences get
//! denser (more intervals per sequence).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthgen::{QuestConfig, QuestGenerator};
use tpminer::{MinerConfig, TpMiner};

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5-density");
    group.sample_size(10);
    for density in [4.0f64, 8.0, 12.0, 16.0] {
        let db = QuestGenerator::new(
            QuestConfig::small()
                .sequences(500)
                .symbols(60)
                .intervals_per_sequence(density)
                .seed(42),
        )
        .generate();
        let min_sup = db.absolute_support(0.10);
        group.bench_with_input(BenchmarkId::from_parameter(density), &db, |b, db| {
            b.iter(|| TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
