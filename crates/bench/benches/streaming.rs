//! Streaming bench: incremental refresh ([`stream::IncrementalMiner`]) vs a
//! full batch re-mine of the same sliding window, across window-slide
//! ratios.
//!
//! The workload is a session stream: sequences (sessions) arrive at a fixed
//! rate, live for a bounded span, and draw their symbols from a per-group
//! cluster of the alphabet. Sliding the window by a small fraction then
//! touches only the newest and oldest sessions — and therefore only a few
//! symbol clusters — which is exactly the locality the dirty-partition rule
//! exploits. At a 50% slide most of the window turns over and the
//! incremental refresh degrades to (slightly worse than) a full re-mine;
//! that case is included as the honest upper bound.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interval_core::{MiningBudget, StreamEvent, Time};
use stream::{IncrementalMiner, RefreshJob, RefreshWorker, SlidingWindowDatabase, SnapshotCell};
use tpminer::{MinerConfig, TpMiner};

/// Sliding-window length in time units.
const WINDOW: Time = 1_000;
/// A new session arrives every this many time units.
const ARRIVAL_EVERY: Time = 5;
/// Each session's intervals all fall within this span of its start.
const SESSION_SPAN: Time = 50;
/// Intervals per session.
const INTERVALS_PER_SESSION: usize = 8;
/// Consecutive sessions sharing one symbol cluster.
const SESSIONS_PER_CLUSTER: u64 = 10;
/// Symbols per cluster; the alphabet is `4 × 15 = 60` symbols.
const SYMBOLS_PER_CLUSTER: u32 = 4;
const CLUSTERS: u32 = 15;

const MIN_SUPPORT: usize = 5;
const MAX_ARITY: usize = 4;

/// Deterministic session-stream generator (an LCG; no external RNG).
struct SessionStream {
    now: Time,
    next_session: u64,
    state: u64,
}

impl SessionStream {
    fn new(seed: u64) -> Self {
        Self {
            now: 0,
            next_session: 0,
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Advances stream time by `dt`, emitting every session that arrives in
    /// the advanced span followed by a watermark at the new time.
    fn advance(&mut self, dt: Time) -> Vec<StreamEvent> {
        let until = self.now + dt;
        let mut events = Vec::new();
        while self.next_session as i64 * ARRIVAL_EVERY < until {
            let id = self.next_session;
            self.next_session += 1;
            let t0 = id as i64 * ARRIVAL_EVERY;
            let cluster = ((id / SESSIONS_PER_CLUSTER) % CLUSTERS as u64) as u32;
            for _ in 0..INTERVALS_PER_SESSION {
                let symbol =
                    cluster * SYMBOLS_PER_CLUSTER + self.below(SYMBOLS_PER_CLUSTER as u64) as u32;
                let start = t0 + self.below((SESSION_SPAN - 10) as u64) as i64;
                let len = 2 + self.below(8) as i64;
                events.push(StreamEvent::Interval {
                    sequence: id,
                    symbol: format!("s{symbol}"),
                    start,
                    end: start + len,
                });
            }
        }
        self.now = until;
        events.push(StreamEvent::Watermark(until));
        events
    }
}

fn config() -> MinerConfig {
    MinerConfig::with_min_support(MIN_SUPPORT).max_arity(MAX_ARITY)
}

/// A window pre-filled to steady state, with its stream positioned just
/// past it.
fn steady_state(seed: u64) -> (SessionStream, SlidingWindowDatabase) {
    let mut stream = SessionStream::new(seed);
    let mut window = SlidingWindowDatabase::new(WINDOW);
    for event in stream.advance(WINDOW + SESSION_SPAN) {
        window.ingest(event).unwrap();
    }
    (stream, window)
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming-refresh");
    group.sample_size(10);

    for ratio in [0.01_f64, 0.10, 0.50] {
        let slide = ((WINDOW as f64 * ratio) as Time).max(1);

        // Incremental: slide the window, then refresh only dirty partitions.
        let (mut stream, mut window) = steady_state(42);
        let mut miner = IncrementalMiner::new(config(), 1);
        miner.refresh(&mut window); // seed the carry-over state
        group.bench_function(BenchmarkId::new("incremental", format!("{ratio}")), |b| {
            b.iter(|| {
                for event in stream.advance(slide) {
                    window.ingest(event).unwrap();
                }
                miner.refresh(&mut window)
            })
        });

        // Full: slide the identical stream, then re-mine the whole window
        // from scratch (materialize + batch TpMiner), as a periodic batch
        // job would.
        let (mut stream, mut window) = steady_state(42);
        group.bench_function(BenchmarkId::new("full", format!("{ratio}")), |b| {
            b.iter(|| {
                for event in stream.advance(slide) {
                    window.ingest(event).unwrap();
                }
                TpMiner::new(config()).mine(&window.snapshot_database())
            })
        });

        // Pipelined: the ingest thread pays only the ingest plus a freeze
        // (or a coalesce, when the background worker is still busy) — the
        // number a `stream --pipeline` driver's event loop sees per slide.
        let (mut stream, mut window) = steady_state(42);
        let cell = Arc::new(SnapshotCell::new());
        let worker = RefreshWorker::spawn(IncrementalMiner::new(config(), 1), Arc::clone(&cell));
        group.bench_function(
            BenchmarkId::new("pipelined-ingest", format!("{ratio}")),
            |b| {
                b.iter(|| {
                    for event in stream.advance(slide) {
                        window.ingest(event).unwrap();
                    }
                    worker.submit_or_coalesce(|| RefreshJob {
                        min_support: None,
                        view: window.freeze(),
                        budget: MiningBudget::unlimited(),
                    })
                })
            },
        );
        let outcome = worker.shutdown();
        assert!(outcome.miner.is_some(), "bench worker must join");
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
