//! Criterion bench behind experiment E2: P-TPMiner runtime as the database
//! grows (the paper's scalability figure; expected near-linear).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use synthgen::{QuestConfig, QuestGenerator};
use tpminer::{MinerConfig, TpMiner};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2-scalability");
    group.sample_size(10);
    for n in [500usize, 1_000, 2_000, 4_000] {
        let db =
            QuestGenerator::new(QuestConfig::small().sequences(n).symbols(60).seed(42)).generate();
        let min_sup = db.absolute_support(0.10);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
