//! Criterion bench behind experiment E3: effect of each pruning technique
//! on P-TPMiner (output-identical ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthgen::{QuestConfig, QuestGenerator};
use tpminer::{DbIndex, MinerConfig, PruningConfig, TpMiner};

fn bench_pruning(c: &mut Criterion) {
    let db =
        QuestGenerator::new(QuestConfig::small().sequences(1_000).symbols(60).seed(42)).generate();
    let index = DbIndex::build(&db);
    let min_sup = db.absolute_support(0.05);
    let configs = [
        ("all", PruningConfig::all()),
        (
            "no-pair",
            PruningConfig {
                pair_pruning: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no-postfix",
            PruningConfig {
                postfix_pruning: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no-symbol",
            PruningConfig {
                symbol_pruning: false,
                ..PruningConfig::all()
            },
        ),
        ("none", PruningConfig::none()),
    ];
    let mut group = c.benchmark_group("e3-pruning");
    group.sample_size(10);
    for (name, pruning) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pruning, |b, &p| {
            b.iter(|| {
                TpMiner::new(MinerConfig::with_min_support(min_sup).pruning(p)).mine_indexed(&index)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
