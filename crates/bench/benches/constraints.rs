//! Ablation bench for the constraint features: how the window and gap
//! constraints change mining cost (they prune embeddings early, so
//! constrained runs are typically *faster* despite the extra checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthgen::{QuestConfig, QuestGenerator};
use tpminer::{DbIndex, MinerConfig, TpMiner};

fn bench_constraints(c: &mut Criterion) {
    let db =
        QuestGenerator::new(QuestConfig::small().sequences(1_000).symbols(60).seed(42)).generate();
    let index = DbIndex::build(&db);
    let min_sup = db.absolute_support(0.05);

    let configs: Vec<(&str, MinerConfig)> = vec![
        ("unconstrained", MinerConfig::with_min_support(min_sup)),
        (
            "window-100",
            MinerConfig::with_min_support(min_sup).max_window(100),
        ),
        (
            "window-40",
            MinerConfig::with_min_support(min_sup).max_window(40),
        ),
        ("gap-50", MinerConfig::with_min_support(min_sup).max_gap(50)),
        ("gap-15", MinerConfig::with_min_support(min_sup).max_gap(15)),
        (
            "window-40+gap-15",
            MinerConfig::with_min_support(min_sup)
                .max_window(40)
                .max_gap(15),
        ),
    ];

    let mut group = c.benchmark_group("constraints");
    group.sample_size(10);
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, &cfg| {
            b.iter(|| TpMiner::new(cfg).mine_indexed(&index))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_constraints);
criterion_main!(benches);
