//! QUEST-style synthetic interval workload generator.
//!
//! The evaluation protocol of the interval-mining literature (and of the
//! reproduced paper's family) uses IBM QUEST-style synthetic data named by
//! its parameters, e.g. `D10k-C8-S4-N1k`:
//!
//! - `D` — number of sequences,
//! - `C` — average number of event intervals per sequence,
//! - `S` — average number of intervals per *potential pattern*,
//! - `N` — alphabet size.
//!
//! Sequences are assembled from a pool of randomly drawn potential patterns
//! (with corruption, time jitter and noise intervals), so that real frequent
//! arrangements exist to be found. Everything is deterministic for a fixed
//! seed (ChaCha8, portable across platforms).
//!
//! ```
//! use synthgen::{QuestConfig, QuestGenerator};
//!
//! let db = QuestGenerator::new(QuestConfig::small().seed(7)).generate();
//! assert_eq!(db.len(), QuestConfig::small().num_sequences);
//! let again = QuestGenerator::new(QuestConfig::small().seed(7)).generate();
//! assert_eq!(db, again); // fully deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use interval_core::{
    EventInterval, IntervalDatabase, IntervalSequence, SymbolId, SymbolTable, Time,
    UncertainDatabase, UncertainInterval, UncertainSequence,
};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the QUEST-style generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuestConfig {
    /// `|D|` — number of sequences.
    pub num_sequences: usize,
    /// `|C|` — average intervals per sequence (Poisson mean).
    pub avg_intervals_per_sequence: f64,
    /// `|S|` — average intervals per potential pattern (Poisson mean,
    /// clamped to at least 1).
    pub avg_pattern_arity: f64,
    /// `N` — alphabet size.
    pub num_symbols: usize,
    /// Size of the potential-pattern pool.
    pub num_potential_patterns: usize,
    /// Probability that an interval of a planted pattern is dropped when the
    /// pattern is embedded into a sequence (QUEST's corruption level).
    pub corruption: f64,
    /// Fraction of a sequence's interval budget filled with uniform noise
    /// intervals instead of planted patterns.
    pub noise: f64,
    /// Mean interval duration (geometric, at least 1 tick).
    pub avg_duration: f64,
    /// Time-horizon length per sequence.
    pub horizon: Time,
    /// RNG seed.
    pub seed: u64,
}

impl QuestConfig {
    /// The paper-style default workload `D10k-C8-S4-N1k`.
    pub fn paper_default() -> Self {
        Self {
            num_sequences: 10_000,
            avg_intervals_per_sequence: 8.0,
            avg_pattern_arity: 4.0,
            num_symbols: 1_000,
            num_potential_patterns: 100,
            corruption: 0.25,
            noise: 0.15,
            avg_duration: 20.0,
            horizon: 1_000,
            seed: 1,
        }
    }

    /// A small workload for tests and examples (`D200-C6-S3-N50`).
    pub fn small() -> Self {
        Self {
            num_sequences: 200,
            avg_intervals_per_sequence: 6.0,
            avg_pattern_arity: 3.0,
            num_symbols: 50,
            num_potential_patterns: 10,
            corruption: 0.2,
            noise: 0.15,
            avg_duration: 10.0,
            horizon: 200,
            seed: 1,
        }
    }

    /// Sets the number of sequences (`|D|`).
    pub fn sequences(mut self, n: usize) -> Self {
        self.num_sequences = n;
        self
    }

    /// Sets the average intervals per sequence (`|C|`).
    pub fn intervals_per_sequence(mut self, c: f64) -> Self {
        self.avg_intervals_per_sequence = c;
        self
    }

    /// Sets the alphabet size (`N`).
    pub fn symbols(mut self, n: usize) -> Self {
        self.num_symbols = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The conventional dataset name, e.g. `D10000-C8-S4-N1000`.
    pub fn name(&self) -> String {
        format!(
            "D{}-C{}-S{}-N{}",
            self.num_sequences,
            self.avg_intervals_per_sequence,
            self.avg_pattern_arity,
            self.num_symbols
        )
    }
}

impl Default for QuestConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// How existence probabilities are attached when generating uncertain data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncertaintyConfig {
    /// Fraction of intervals that stay certain (probability 1).
    pub certain_fraction: f64,
    /// Uncertain intervals draw probabilities uniformly from this range.
    pub probability_range: (f64, f64),
}

impl Default for UncertaintyConfig {
    fn default() -> Self {
        Self {
            certain_fraction: 0.3,
            probability_range: (0.5, 1.0),
        }
    }
}

/// A potential pattern: concrete intervals relative to offset 0, to be
/// embedded (with jitter/corruption) into sequences.
#[derive(Debug, Clone)]
struct PotentialPattern {
    intervals: Vec<EventInterval>,
}

/// The generator. See the crate docs for the procedure.
#[derive(Debug, Clone)]
pub struct QuestGenerator {
    config: QuestConfig,
}

impl QuestGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: QuestConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &QuestConfig {
        &self.config
    }

    /// Generates the certain database.
    pub fn generate(&self) -> IntervalDatabase {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let symbols = SymbolTable::with_synthetic_symbols(self.config.num_symbols);
        let pool = self.make_pool(&mut rng);
        let sequences = (0..self.config.num_sequences)
            .map(|_| self.make_sequence(&mut rng, &pool))
            .collect();
        IntervalDatabase::from_parts(symbols, sequences)
    }

    /// Generates the uncertain variant: the same intervals as
    /// [`generate`](Self::generate) with probabilities attached per
    /// `uncertainty` (deterministic for fixed seeds).
    pub fn generate_uncertain(&self, uncertainty: &UncertaintyConfig) -> UncertainDatabase {
        let certain = self.generate();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xdead_beef_cafe_f00d);
        let (lo, hi) = uncertainty.probability_range;
        let sequences = certain
            .sequences()
            .iter()
            .map(|s| {
                s.iter()
                    .map(|&iv| {
                        let p = if rng.gen::<f64>() < uncertainty.certain_fraction {
                            1.0
                        } else {
                            rng.gen_range(lo.max(f64::MIN_POSITIVE)..=hi.min(1.0))
                        };
                        // xlint::allow(no-panic-lib): p is sampled from (0, 1] by construction two lines up; a reject is generator corruption
                        UncertainInterval::new(iv, p).expect("probability in range")
                    })
                    .collect::<UncertainSequence>()
            })
            .collect();
        UncertainDatabase::from_parts(certain.symbols().clone(), sequences)
    }

    fn make_pool(&self, rng: &mut ChaCha8Rng) -> Vec<PotentialPattern> {
        (0..self.config.num_potential_patterns.max(1))
            .map(|_| {
                let arity = poisson(rng, self.config.avg_pattern_arity.max(1.0)).max(1);
                let mut intervals = Vec::with_capacity(arity);
                let mut cursor: Time = 0;
                for _ in 0..arity {
                    let symbol = SymbolId(rng.gen_range(0..self.config.num_symbols as u32));
                    // Mix of relation shapes: advance, stay, or step back a
                    // little so overlaps / containments / meets all occur.
                    let half = (self.config.avg_duration as i64 / 2).max(1);
                    let drift = rng.gen_range(-half..=self.config.avg_duration as i64);
                    cursor = (cursor + drift).max(0);
                    let duration = duration(rng, self.config.avg_duration);
                    intervals.push(EventInterval::new_unchecked(
                        symbol,
                        cursor,
                        cursor + duration,
                    ));
                    cursor += rng.gen_range(0..=half);
                }
                PotentialPattern { intervals }
            })
            .collect()
    }

    fn make_sequence(&self, rng: &mut ChaCha8Rng, pool: &[PotentialPattern]) -> IntervalSequence {
        let budget = poisson(rng, self.config.avg_intervals_per_sequence).max(1);
        let mut intervals: Vec<EventInterval> = Vec::with_capacity(budget);
        while intervals.len() < budget {
            if rng.gen::<f64>() < self.config.noise {
                intervals.push(self.noise_interval(rng));
                continue;
            }
            // Embed a (possibly corrupted) potential pattern at a random
            // offset. Skewed choice: earlier pool entries are more likely,
            // mimicking QUEST's exponentially weighted pattern table.
            let idx = (rng.gen::<f64>().powi(2) * pool.len() as f64) as usize;
            let pattern = &pool[idx.min(pool.len() - 1)];
            let offset = rng.gen_range(0..self.config.horizon.max(1));
            let mut planted_any = false;
            for iv in &pattern.intervals {
                if intervals.len() >= budget {
                    break;
                }
                if rng.gen::<f64>() < self.config.corruption {
                    continue;
                }
                planted_any = true;
                intervals.push(EventInterval::new_unchecked(
                    iv.symbol,
                    iv.start + offset,
                    iv.end + offset,
                ));
            }
            if !planted_any {
                // Fully corrupted embedding: make progress with noise so the
                // loop is guaranteed to terminate.
                intervals.push(self.noise_interval(rng));
            }
        }
        IntervalSequence::from_intervals(intervals)
    }

    fn noise_interval(&self, rng: &mut ChaCha8Rng) -> EventInterval {
        let symbol = SymbolId(rng.gen_range(0..self.config.num_symbols as u32));
        let start = rng.gen_range(0..self.config.horizon.max(1));
        let dur = duration(rng, self.config.avg_duration);
        EventInterval::new_unchecked(symbol, start, start + dur)
    }
}

/// Geometric-ish duration with the given mean, at least 1.
fn duration(rng: &mut ChaCha8Rng, mean: f64) -> Time {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    ((-u.ln() * mean.max(1.0)) as Time).max(1)
}

/// Knuth's Poisson sampler (fine for the small means used here).
fn poisson(rng: &mut ChaCha8Rng, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = QuestConfig::small().seed(99);
        let a = QuestGenerator::new(cfg).generate();
        let b = QuestGenerator::new(cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = QuestGenerator::new(QuestConfig::small().seed(1)).generate();
        let b = QuestGenerator::new(QuestConfig::small().seed(2)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_sequence_count_and_rough_density() {
        let cfg = QuestConfig::small().sequences(500);
        let db = QuestGenerator::new(cfg).generate();
        assert_eq!(db.len(), 500);
        let mean = db.mean_sequence_len();
        assert!(
            (mean - cfg.avg_intervals_per_sequence).abs() < 2.0,
            "mean sequence length {mean} too far from {}",
            cfg.avg_intervals_per_sequence
        );
    }

    #[test]
    fn symbols_stay_in_alphabet() {
        let cfg = QuestConfig::small().symbols(17);
        let db = QuestGenerator::new(cfg).generate();
        for seq in db.sequences() {
            for iv in seq {
                assert!(iv.symbol.0 < 17);
            }
        }
        assert_eq!(db.symbols().len(), 17);
    }

    #[test]
    fn planted_patterns_create_frequent_symbol_pairs() {
        // With low corruption and noise, some symbol pair must co-occur
        // frequently — that is the generator's whole purpose.
        let cfg = QuestConfig {
            corruption: 0.05,
            noise: 0.05,
            num_potential_patterns: 3,
            num_symbols: 20,
            ..QuestConfig::small()
        };
        let db = QuestGenerator::new(cfg).generate();
        let mut counts: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        for seq in db.sequences() {
            let mut syms: Vec<u32> = seq.iter().map(|iv| iv.symbol.0).collect();
            syms.sort_unstable();
            syms.dedup();
            for i in 0..syms.len() {
                for j in (i + 1)..syms.len() {
                    *counts.entry((syms[i], syms[j])).or_insert(0) += 1;
                }
            }
        }
        let frequent = counts.values().filter(|&&c| c >= db.len() / 10).count();
        assert!(
            frequent > 0,
            "expected at least one frequent symbol pair at 10% support"
        );
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| poisson(&mut rng, 6.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.2, "{mean}");
    }

    #[test]
    fn durations_are_positive_with_requested_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mut sum = 0i64;
        for _ in 0..n {
            let d = duration(&mut rng, 12.0);
            assert!(d >= 1);
            sum += d;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 12.0).abs() < 1.5, "{mean}");
    }

    #[test]
    fn uncertain_generation_attaches_valid_probabilities() {
        let cfg = QuestConfig::small().seed(3);
        let udb = QuestGenerator::new(cfg).generate_uncertain(&UncertaintyConfig::default());
        let certain = QuestGenerator::new(cfg).generate();
        assert_eq!(udb.len(), certain.len());
        assert_eq!(udb.total_intervals(), certain.total_intervals());
        let mut certain_count = 0usize;
        let mut total = 0usize;
        for seq in udb.sequences() {
            for u in seq.intervals() {
                assert!(u.probability > 0.0 && u.probability <= 1.0);
                if u.probability == 1.0 {
                    certain_count += 1;
                }
                total += 1;
            }
        }
        let frac = certain_count as f64 / total as f64;
        assert!(frac > 0.15 && frac < 0.5, "certain fraction {frac}");
    }

    #[test]
    fn config_name_is_conventional() {
        assert_eq!(QuestConfig::paper_default().name(), "D10000-C8-S4-N1000");
    }
}
