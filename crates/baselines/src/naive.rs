//! Brute-force oracle miner.
//!
//! Enumerates, per sequence, *every* subset of up to `max_arity` intervals,
//! takes its arrangement, and support-counts the deduplicated candidate set
//! with the ground-truth matcher. Exponential in `max_arity` — use it only
//! on small inputs, as the correctness oracle it is.

use crate::{BaselineResult, BaselineStats};
use interval_core::{matcher, IntervalDatabase, TemporalPattern};
use std::collections::HashSet;
use std::time::Instant;
use tpminer::FrequentPattern;

/// The oracle miner. See the module docs.
#[derive(Debug, Clone)]
pub struct NaiveMiner {
    min_support: usize,
    max_arity: usize,
}

impl NaiveMiner {
    /// Creates an oracle mining patterns of up to `max_arity` intervals at
    /// the given absolute support threshold.
    pub fn new(min_support: usize, max_arity: usize) -> Self {
        Self {
            min_support: min_support.max(1),
            max_arity: max_arity.max(1),
        }
    }

    /// Mines all frequent patterns of arity `1..=max_arity`.
    pub fn mine(&self, db: &IntervalDatabase) -> BaselineResult {
        // xlint::allow(no-unbudgeted-clock): reference baseline timing its own run for BaselineStats::elapsed; baselines deliberately bypass the budget meter
        let started = Instant::now();
        let mut stats = BaselineStats::default();

        // Candidate generation: arrangements of all small subsets.
        let mut candidates: HashSet<TemporalPattern> = HashSet::new();
        for seq in db.sequences() {
            let ivs = seq.intervals();
            let n = ivs.len();
            let mut chosen = Vec::with_capacity(self.max_arity);
            subsets(n, self.max_arity, &mut chosen, &mut |subset| {
                let intervals: Vec<_> = subset.iter().map(|&i| ivs[i]).collect();
                candidates.insert(TemporalPattern::arrangement_of(&intervals));
            });
        }
        stats.candidates_generated = candidates.len() as u64;

        // Support counting.
        let mut patterns = Vec::new();
        for pattern in candidates {
            let mut support = 0usize;
            for seq in db.sequences() {
                stats.containment_tests += 1;
                if matcher::contains(seq, &pattern) {
                    support += 1;
                }
            }
            if support >= self.min_support {
                patterns.push(FrequentPattern { pattern, support });
            }
        }

        stats.elapsed_micros = started.elapsed().as_micros() as u64;
        BaselineResult::finish(patterns, stats)
    }
}

/// Calls `f` with every non-empty subset of `0..n` of size at most `k`.
fn subsets(n: usize, k: usize, chosen: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    fn rec(
        start: usize,
        n: usize,
        k: usize,
        chosen: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if !chosen.is_empty() {
            f(chosen);
        }
        if chosen.len() == k {
            return;
        }
        for i in start..n {
            chosen.push(i);
            rec(i + 1, n, k, chosen, f);
            chosen.pop();
        }
    }
    rec(0, n, k, chosen, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::DatabaseBuilder;
    use tpminer::{MinerConfig, TpMiner};

    #[test]
    fn subsets_enumerates_all_small_subsets() {
        let mut seen = Vec::new();
        let mut chosen = Vec::new();
        subsets(4, 2, &mut chosen, &mut |s| seen.push(s.to_vec()));
        // 4 singletons + 6 pairs
        assert_eq!(seen.len(), 10);
        assert!(seen.contains(&vec![1, 3]));
    }

    #[test]
    fn agrees_with_tpminer_on_small_db() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("A", 5, 9);
        b.sequence()
            .interval("A", 0, 9)
            .interval("B", 1, 3)
            .interval("C", 2, 4);
        b.sequence().interval("B", 0, 2).interval("A", 2, 4);
        let db = b.build();
        for min_sup in 1..=3 {
            let naive = NaiveMiner::new(min_sup, 3).mine(&db);
            let tp = TpMiner::new(MinerConfig::with_min_support(min_sup).max_arity(3)).mine(&db);
            assert_eq!(naive.patterns, tp.patterns().to_vec(), "min_sup={min_sup}");
        }
    }

    #[test]
    fn arity_cap_is_respected() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 2)
            .interval("B", 3, 5)
            .interval("C", 6, 8);
        let db = b.build();
        let result = NaiveMiner::new(1, 2).mine(&db);
        assert!(result.patterns.iter().all(|p| p.pattern.arity() <= 2));
    }

    #[test]
    fn empty_database() {
        let db = IntervalDatabase::new();
        assert!(NaiveMiner::new(1, 3).mine(&db).is_empty());
    }
}
