//! Baseline interval-pattern miners.
//!
//! The paper's evaluation compares P-TPMiner against the earlier algorithms
//! of the interval-mining literature. This crate re-implements them from
//! their publications so the comparison is runnable end-to-end:
//!
//! - [`TPrefixSpan`] (Wu & Chen 2007) — PrefixSpan-style growth over
//!   endpoint sequences with *candidate verification scans* instead of
//!   embedding-frontier projection;
//! - [`IeMiner`] (IEMiner-style, Patel, Hsu & Lee 2008) — level-wise
//!   Apriori candidate generation with one support scan per level;
//! - [`HDfsMiner`] (H-DFS-style, Papapetrou et al. 2005) — vertical
//!   id-list mining that materializes full occurrence lists;
//! - [`NaiveMiner`] — brute-force enumerate-and-count oracle for small
//!   inputs.
//!
//! Every baseline emits exactly the same `(pattern, support)` set as
//! [`tpminer::TpMiner`] (property-tested in `tests/`); they differ — by
//! design — in how much work they do, which is what the paper's runtime
//! figures measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hdfs;
pub mod ieminer;
pub mod naive;
pub mod prefix_match;
pub mod tprefixspan;

pub use hdfs::HDfsMiner;
pub use ieminer::IeMiner;
pub use naive::NaiveMiner;
pub use tprefixspan::TPrefixSpan;

use serde::{Deserialize, Serialize};
use tpminer::FrequentPattern;

/// Work counters shared by the baseline miners.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineStats {
    /// Candidate patterns generated (before support counting).
    pub candidates_generated: u64,
    /// Individual pattern-vs-sequence containment tests performed.
    pub containment_tests: u64,
    /// Occurrence tuples materialized (H-DFS id-lists) or embeddings stored.
    pub occurrences_materialized: u64,
    /// Wall-clock time in microseconds.
    pub elapsed_micros: u64,
}

/// Result of a baseline run: patterns in canonical order plus counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineResult {
    /// The frequent patterns, sorted by `(arity, pattern)` like
    /// [`tpminer::MiningResult`].
    pub patterns: Vec<FrequentPattern>,
    /// Work counters.
    pub stats: BaselineStats,
}

impl BaselineResult {
    pub(crate) fn finish(
        mut patterns: Vec<FrequentPattern>,
        stats: BaselineStats,
    ) -> BaselineResult {
        patterns.sort_unstable_by(|a, b| {
            (a.pattern.arity(), &a.pattern).cmp(&(b.pattern.arity(), &b.pattern))
        });
        BaselineResult { patterns, stats }
    }

    /// Number of frequent patterns found.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no pattern reached the threshold.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}
