//! TPrefixSpan-style miner (Wu & Chen 2007).
//!
//! Grows patterns endpoint-by-endpoint over the endpoint representation —
//! the same canonical search tree as TPMiner — but **without** the embedding
//! frontier projection: every candidate extension is verified by re-matching
//! the extended prefix against each supporting sequence with the
//! backtracking [`prefix_match`](crate::prefix_match) primitive. These
//! per-candidate verification scans are the algorithm's documented cost and
//! the reason TPMiner's projected databases win in the paper's runtime
//! figures.

use crate::prefix_match::{prefix_contains, Prefix};
use crate::{BaselineResult, BaselineStats};
use interval_core::{EndpointKind, IntervalDatabase, PatternEndpoint, SymbolId, TemporalPattern};
use std::collections::HashMap;
use std::time::Instant;
use tpminer::FrequentPattern;

/// Canonical within-group rank (finishes before starts, matching TPMiner).
type Rank = (u8, u32);

fn finish_rank(slot: u8) -> Rank {
    (0, u32::from(slot))
}

fn start_rank(symbol: SymbolId) -> Rank {
    (1, symbol.0)
}

#[derive(Debug, Clone, Copy)]
struct OpenSlot {
    slot: u8,
    symbol: SymbolId,
    start_group: u16,
}

/// The TPrefixSpan-style miner.
#[derive(Debug, Clone)]
pub struct TPrefixSpan {
    min_support: usize,
    max_arity: Option<usize>,
}

impl TPrefixSpan {
    /// Creates a miner with the given absolute support threshold.
    pub fn new(min_support: usize) -> Self {
        Self {
            min_support: min_support.max(1),
            max_arity: None,
        }
    }

    /// Bounds the pattern arity.
    pub fn max_arity(mut self, arity: usize) -> Self {
        self.max_arity = Some(arity);
        self
    }

    /// Mines all frequent patterns.
    pub fn mine(&self, db: &IntervalDatabase) -> BaselineResult {
        // xlint::allow(no-unbudgeted-clock): reference baseline timing its own run for BaselineStats::elapsed; baselines deliberately bypass the budget meter
        let started = Instant::now();
        let mut stats = BaselineStats::default();
        let mut out = Vec::new();

        // Distinct symbols per sequence, sorted.
        let seq_symbols: Vec<Vec<SymbolId>> = db
            .sequences()
            .iter()
            .map(|s| {
                let mut v: Vec<SymbolId> = s.iter().map(|iv| iv.symbol).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();

        let mut symbol_counts: HashMap<SymbolId, usize> = HashMap::new();
        for syms in &seq_symbols {
            for &s in syms {
                *symbol_counts.entry(s).or_insert(0) += 1;
            }
        }
        let mut roots: Vec<SymbolId> = symbol_counts
            .iter()
            .filter(|&(_, &c)| c >= self.min_support)
            .map(|(&s, _)| s)
            .collect();
        roots.sort_unstable();

        for symbol in roots {
            let supporting: Vec<u32> = seq_symbols
                .iter()
                .enumerate()
                .filter(|(_, syms)| syms.binary_search(&symbol).is_ok())
                .map(|(i, _)| i as u32)
                .collect();
            let prefix = Prefix {
                groups: vec![vec![PatternEndpoint {
                    kind: EndpointKind::Start,
                    symbol,
                    slot: 0,
                }]],
                open: vec![0],
            };
            let open = vec![OpenSlot {
                slot: 0,
                symbol,
                start_group: 0,
            }];
            self.grow(
                db,
                &seq_symbols,
                prefix,
                open,
                1,
                start_rank(symbol),
                supporting,
                &mut out,
                &mut stats,
            );
        }

        stats.elapsed_micros = started.elapsed().as_micros() as u64;
        BaselineResult::finish(out, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &self,
        db: &IntervalDatabase,
        seq_symbols: &[Vec<SymbolId>],
        prefix: Prefix,
        open: Vec<OpenSlot>,
        arity: u8,
        last_rank: Rank,
        supporting: Vec<u32>,
        out: &mut Vec<FrequentPattern>,
        stats: &mut BaselineStats,
    ) {
        if open.is_empty() {
            let pattern = TemporalPattern::from_groups(prefix.groups.clone())
                // xlint::allow(no-panic-lib): enumeration emits only canonical well-formed prefixes, mirroring the engine's emit path
                .expect("generated prefixes are well-formed");
            out.push(FrequentPattern {
                pattern,
                support: supporting.len(),
            });
        }

        // ---- enumerate candidate extensions (canonical gates) ----
        #[derive(Clone, Copy)]
        enum Ext {
            Finish { k: usize, meet: bool },
            Start { symbol: SymbolId, meet: bool },
        }

        let mut candidates: Vec<Ext> = Vec::new();
        for (k, slot) in open.iter().enumerate() {
            // close-lowest-co-started-first canonical rule
            let blocked = open[..k]
                .iter()
                .any(|o| o.symbol == slot.symbol && o.start_group == slot.start_group);
            if blocked {
                continue;
            }
            if finish_rank(slot.slot) > last_rank {
                candidates.push(Ext::Finish { k, meet: true });
            }
            candidates.push(Ext::Finish { k, meet: false });
        }
        let may_start = self.max_arity.is_none_or(|max| usize::from(arity) < max)
            && usize::from(arity) < usize::from(u8::MAX);
        if may_start {
            // Locally frequent symbols among the supporting sequences.
            let mut counts: HashMap<SymbolId, usize> = HashMap::new();
            for &sid in &supporting {
                for &s in &seq_symbols[sid as usize] {
                    *counts.entry(s).or_insert(0) += 1;
                }
            }
            let mut symbols: Vec<SymbolId> = counts
                .iter()
                .filter(|&(_, &c)| c >= self.min_support)
                .map(|(&s, _)| s)
                .collect();
            symbols.sort_unstable();
            for s in symbols {
                let r = start_rank(s);
                if r > last_rank || (r == last_rank && last_rank.0 == 1) {
                    candidates.push(Ext::Start {
                        symbol: s,
                        meet: true,
                    });
                }
                candidates.push(Ext::Start {
                    symbol: s,
                    meet: false,
                });
            }
        }

        // ---- verify each candidate with full prefix-matching scans ----
        for ext in candidates {
            stats.candidates_generated += 1;
            let mut groups = prefix.groups.clone();
            let mut child_open = open.clone();
            let child_arity;
            let child_rank;
            match ext {
                Ext::Finish { k, meet } => {
                    let slot = child_open.remove(k);
                    let endpoint = PatternEndpoint {
                        kind: EndpointKind::Finish,
                        symbol: slot.symbol,
                        slot: slot.slot,
                    };
                    // Meet extensions are only generated for non-empty
                    // prefixes, so the fallback only fires for non-meet.
                    debug_assert!(!meet || !groups.is_empty());
                    match groups.last_mut() {
                        Some(last) if meet => last.push(endpoint),
                        _ => groups.push(vec![endpoint]),
                    }
                    child_arity = arity;
                    child_rank = finish_rank(slot.slot);
                }
                Ext::Start { symbol, meet } => {
                    let endpoint = PatternEndpoint {
                        kind: EndpointKind::Start,
                        symbol,
                        slot: arity,
                    };
                    debug_assert!(!meet || !groups.is_empty());
                    match groups.last_mut() {
                        Some(last) if meet => last.push(endpoint),
                        _ => groups.push(vec![endpoint]),
                    }
                    child_open.push(OpenSlot {
                        slot: arity,
                        symbol,
                        start_group: (groups.len() - 1) as u16,
                    });
                    child_arity = arity + 1;
                    child_rank = start_rank(symbol);
                }
            }
            let child_prefix = Prefix {
                groups,
                open: child_open.iter().map(|o| o.slot).collect(),
            };
            let mut child_supporting = Vec::new();
            for &sid in &supporting {
                stats.containment_tests += 1;
                if prefix_contains(&db.sequences()[sid as usize], &child_prefix) {
                    child_supporting.push(sid);
                }
            }
            if child_supporting.len() >= self.min_support {
                self.grow(
                    db,
                    seq_symbols,
                    child_prefix,
                    child_open,
                    child_arity,
                    child_rank,
                    child_supporting,
                    out,
                    stats,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::DatabaseBuilder;
    use tpminer::{MinerConfig, TpMiner};

    fn messy_db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("A", 5, 9);
        b.sequence()
            .interval("A", 0, 9)
            .interval("B", 1, 3)
            .interval("A", 1, 3);
        b.sequence().interval("B", 0, 2).interval("A", 2, 4);
        b.sequence().interval("A", 0, 5).interval("B", 0, 5);
        b.build()
    }

    #[test]
    fn agrees_with_tpminer() {
        let db = messy_db();
        for min_sup in 1..=4 {
            let tps = TPrefixSpan::new(min_sup).mine(&db);
            let tp = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
            assert_eq!(tps.patterns, tp.patterns().to_vec(), "min_sup={min_sup}");
        }
    }

    #[test]
    fn performs_many_containment_tests() {
        // The verification-scan architecture must show up in the counters.
        let db = messy_db();
        let result = TPrefixSpan::new(1).mine(&db);
        assert!(result.stats.containment_tests > result.patterns.len() as u64);
    }

    #[test]
    fn max_arity_is_respected() {
        let db = messy_db();
        let result = TPrefixSpan::new(1).max_arity(2).mine(&db);
        assert!(result.patterns.iter().all(|p| p.pattern.arity() <= 2));
    }

    #[test]
    fn empty_database() {
        assert!(TPrefixSpan::new(1)
            .mine(&IntervalDatabase::new())
            .is_empty());
    }
}
