//! Containment of pattern *prefixes* — the verification primitive of
//! [`TPrefixSpan`](crate::TPrefixSpan).
//!
//! A prefix is a well-formed pattern that may still have *open* slots
//! (started, not yet finished). A sequence supports a prefix when there is
//! an injective symbol-preserving assignment of slots to instances such that
//!
//! - all *appended* endpoints (starts, and finishes of closed slots)
//!   reproduce the prefix's group order/equality structure, and
//! - every open slot's instance ends **no earlier than** the data time the
//!   prefix's last endpoint set is mapped to (otherwise the prefix could
//!   never be completed in this embedding).

use interval_core::{EndpointKind, EventInterval, IntervalSequence, PatternEndpoint, SymbolId};

/// A pattern prefix: endpoint sets plus the set of still-open slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prefix {
    /// The endpoint sets appended so far.
    pub groups: Vec<Vec<PatternEndpoint>>,
    /// Slots with a start but no finish yet, ascending.
    pub open: Vec<u8>,
}

/// Per-slot view of a prefix.
#[derive(Debug, Clone, Copy)]
struct PrefixSlot {
    symbol: SymbolId,
    start_group: u16,
    /// `None` while the slot is open.
    end_group: Option<u16>,
}

impl Prefix {
    /// The number of slots (intervals) in the prefix.
    pub fn arity(&self) -> usize {
        self.groups
            .iter()
            .flatten()
            .filter(|e| e.kind == EndpointKind::Start)
            .count()
    }

    /// Whether all slots are closed.
    pub fn is_complete(&self) -> bool {
        self.open.is_empty()
    }

    fn slots(&self) -> Vec<PrefixSlot> {
        let arity = self.arity();
        let mut slots = vec![
            PrefixSlot {
                symbol: SymbolId(0),
                start_group: 0,
                end_group: None,
            };
            arity
        ];
        for (gi, g) in self.groups.iter().enumerate() {
            for e in g {
                let s = &mut slots[e.slot as usize];
                s.symbol = e.symbol;
                match e.kind {
                    EndpointKind::Start => s.start_group = gi as u16,
                    EndpointKind::Finish => s.end_group = Some(gi as u16),
                }
            }
        }
        slots
    }
}

/// Whether `seq` supports `prefix` (see the module docs for the semantics).
pub fn prefix_contains(seq: &IntervalSequence, prefix: &Prefix) -> bool {
    if prefix.groups.is_empty() {
        return true;
    }
    let slots = prefix.slots();
    let last_group = (prefix.groups.len() - 1) as u16;
    // An endpoint anchored in the last set, used to read off its data time.
    // xlint::allow(no-panic-lib): guarded by the is_empty early-return above
    let anchor = prefix.groups.last().expect("non-empty")[0];

    // Bucket sequence instances by the symbols the prefix needs.
    let mut symbols: Vec<SymbolId> = slots.iter().map(|s| s.symbol).collect();
    symbols.sort_unstable();
    symbols.dedup();
    let mut by_symbol: Vec<Vec<EventInterval>> = vec![Vec::new(); symbols.len()];
    for iv in seq.iter() {
        if let Ok(i) = symbols.binary_search(&iv.symbol) {
            by_symbol[i].push(*iv);
        }
    }
    let symbol_of: Vec<usize> = match slots
        .iter()
        .map(|s| symbols.binary_search(&s.symbol).ok())
        .collect::<Option<Vec<_>>>()
    {
        Some(v) => v,
        None => return false,
    };
    if symbol_of.iter().any(|&i| by_symbol[i].is_empty()) {
        return false;
    }

    let mut assigned: Vec<EventInterval> = Vec::with_capacity(slots.len());
    let mut used: Vec<Vec<bool>> = by_symbol.iter().map(|v| vec![false; v.len()]).collect();
    search(
        &slots,
        last_group,
        anchor,
        &by_symbol,
        &symbol_of,
        &mut assigned,
        &mut used,
    )
}

/// Ordered comparison of two endpoint *positions* of the prefix, where a
/// position is `(group, known)`; unknown (open-end) positions impose no
/// constraint.
fn pairwise_ok(
    slots: &[PrefixSlot],
    assigned: &[EventInterval],
    j: usize,
    iv: &EventInterval,
) -> bool {
    let sj = &slots[j];
    for (i, other) in assigned.iter().enumerate() {
        let si = &slots[i];
        // start_j vs start_i
        if sj.start_group.cmp(&si.start_group) != iv.start.cmp(&other.start) {
            return false;
        }
        // start_j vs end_i
        if let Some(ei) = si.end_group {
            if sj.start_group.cmp(&ei) != iv.start.cmp(&other.end) {
                return false;
            }
        }
        // end_j vs start_i / end_i
        if let Some(ej) = sj.end_group {
            if ej.cmp(&si.start_group) != iv.end.cmp(&other.start) {
                return false;
            }
            if let Some(ei) = si.end_group {
                if ej.cmp(&ei) != iv.end.cmp(&other.end) {
                    return false;
                }
            }
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn search(
    slots: &[PrefixSlot],
    last_group: u16,
    anchor: PatternEndpoint,
    by_symbol: &[Vec<EventInterval>],
    symbol_of: &[usize],
    assigned: &mut Vec<EventInterval>,
    used: &mut Vec<Vec<bool>>,
) -> bool {
    let j = assigned.len();
    if j == slots.len() {
        // Open ends must be completable: end no earlier than the data time
        // the last endpoint set maps to.
        let anchor_iv = assigned[anchor.slot as usize];
        let t_last = match anchor.kind {
            EndpointKind::Start => anchor_iv.start,
            EndpointKind::Finish => anchor_iv.end,
        };
        let _ = last_group;
        return slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.end_group.is_none())
            .all(|(i, _)| assigned[i].end >= t_last);
    }
    let sym = symbol_of[j];
    for idx in 0..by_symbol[sym].len() {
        if used[sym][idx] {
            continue;
        }
        let iv = by_symbol[sym][idx];
        if !pairwise_ok(slots, assigned, j, &iv) {
            continue;
        }
        used[sym][idx] = true;
        assigned.push(iv);
        if search(
            slots, last_group, anchor, by_symbol, symbol_of, assigned, used,
        ) {
            return true;
        }
        assigned.pop();
        used[sym][idx] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::{matcher, DatabaseBuilder, SymbolTable, TemporalPattern};

    fn prefix_of(pattern: &TemporalPattern) -> Prefix {
        Prefix {
            groups: pattern.groups().to_vec(),
            open: Vec::new(),
        }
    }

    #[test]
    fn complete_prefix_agrees_with_matcher() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5)
            .interval("B", 3, 8)
            .interval("A", 7, 9);
        b.sequence().interval("A", 0, 5).interval("B", 6, 8);
        let db = b.build();
        let mut t = db.symbols().clone();
        for text in [
            "A+ | A-",
            "A+ | B+ | A- | B-",
            "A+ | A- | B+ | B-",
            "A+#0 | A-#0 | A+#1 | A-#1",
            "B+ | B- A+ | A-",
        ] {
            let p = TemporalPattern::parse(text, &mut t).unwrap();
            let prefix = prefix_of(&p);
            for seq in db.sequences() {
                assert_eq!(
                    prefix_contains(seq, &prefix),
                    matcher::contains(seq, &p),
                    "pattern {text}"
                );
            }
        }
    }

    #[test]
    fn open_prefix_requires_completable_end() {
        let mut t = SymbolTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        // prefix: A+ | A- B+  (B still open)
        let prefix = Prefix {
            groups: vec![
                vec![PatternEndpoint {
                    kind: EndpointKind::Start,
                    symbol: a,
                    slot: 0,
                }],
                vec![
                    PatternEndpoint {
                        kind: EndpointKind::Finish,
                        symbol: a,
                        slot: 0,
                    },
                    PatternEndpoint {
                        kind: EndpointKind::Start,
                        symbol: b,
                        slot: 1,
                    },
                ],
            ],
            open: vec![1],
        };
        let mut db = DatabaseBuilder::new();
        // B starts exactly when A ends: supports the prefix.
        db.sequence().interval("A", 0, 5).interval("B", 5, 9);
        // B entirely before A: cannot realize A- and B+ simultaneously.
        db.sequence().interval("B", 0, 1).interval("A", 2, 5);
        let db = db.build();
        assert!(prefix_contains(&db.sequences()[0], &prefix));
        assert!(!prefix_contains(&db.sequences()[1], &prefix));
    }

    #[test]
    fn open_end_before_last_group_is_rejected() {
        let mut t = SymbolTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        // prefix: A+ | B+ | B-   (A open, so A must end at/after B-'s time)
        let prefix = Prefix {
            groups: vec![
                vec![PatternEndpoint {
                    kind: EndpointKind::Start,
                    symbol: a,
                    slot: 0,
                }],
                vec![PatternEndpoint {
                    kind: EndpointKind::Start,
                    symbol: b,
                    slot: 1,
                }],
                vec![PatternEndpoint {
                    kind: EndpointKind::Finish,
                    symbol: b,
                    slot: 1,
                }],
            ],
            open: vec![0],
        };
        let mut db = DatabaseBuilder::new();
        db.sequence().interval("A", 0, 10).interval("B", 2, 5); // A contains B: ok
        db.sequence().interval("A", 0, 4).interval("B", 2, 5); // A ends before B-: dead
        let db = db.build();
        assert!(prefix_contains(&db.sequences()[0], &prefix));
        assert!(!prefix_contains(&db.sequences()[1], &prefix));
    }

    #[test]
    fn empty_prefix_is_everywhere() {
        let mut db = DatabaseBuilder::new();
        db.sequence();
        let db = db.build();
        let prefix = Prefix {
            groups: vec![],
            open: vec![],
        };
        assert!(prefix_contains(&db.sequences()[0], &prefix));
    }
}
