//! H-DFS-style vertical (id-list) miner.
//!
//! Following the hybrid DFS approach of Papapetrou et al., patterns are
//! grown one *interval instance* at a time and every node materializes its
//! full **occurrence lists**: for each supporting sequence, every instance
//! tuple realizing the pattern. Support counting is then trivial (count
//! sequences with a non-empty list), but the lists themselves are the
//! algorithm's documented weakness — they grow with the number of
//! embeddings, which the paper's memory experiment shows.
//!
//! Tuples are enumerated in a fixed instance order (sorted by
//! `(start, end, symbol, id)`), so each tuple is produced once and each
//! pattern has a unique parent (the pattern minus its latest slot) — no
//! duplicate exploration.

use crate::{BaselineResult, BaselineStats};
use interval_core::{EventInterval, IntervalDatabase, TemporalPattern};
use std::collections::HashMap;
use std::time::Instant;
use tpminer::FrequentPattern;

/// One occurrence: positions (into the per-sequence sorted instance list) of
/// the instances realizing the pattern, ascending.
type Occurrence = Vec<u32>;

/// Occurrence lists per sequence id.
type OccMap = HashMap<u32, Vec<Occurrence>>;

/// The H-DFS-style miner.
#[derive(Debug, Clone)]
pub struct HDfsMiner {
    min_support: usize,
    max_arity: Option<usize>,
}

impl HDfsMiner {
    /// Creates a miner with the given absolute support threshold.
    pub fn new(min_support: usize) -> Self {
        Self {
            min_support: min_support.max(1),
            max_arity: None,
        }
    }

    /// Bounds the pattern arity.
    pub fn max_arity(mut self, arity: usize) -> Self {
        self.max_arity = Some(arity);
        self
    }

    /// Mines all frequent patterns.
    pub fn mine(&self, db: &IntervalDatabase) -> BaselineResult {
        // xlint::allow(no-unbudgeted-clock): reference baseline timing its own run for BaselineStats::elapsed; baselines deliberately bypass the budget meter
        let started = Instant::now();
        let mut stats = BaselineStats::default();

        // Per-sequence instance lists in canonical enumeration order.
        let ordered: Vec<Vec<EventInterval>> = db
            .sequences()
            .iter()
            .map(|s| {
                let mut v: Vec<EventInterval> = s.intervals().to_vec();
                v.sort_unstable_by_key(|iv| (iv.start, iv.end, iv.symbol));
                v
            })
            .collect();

        // Level 1: bucket singleton occurrences by symbol pattern.
        let mut level1: HashMap<TemporalPattern, OccMap> = HashMap::new();
        for (seq_id, ivs) in ordered.iter().enumerate() {
            for (pos, iv) in ivs.iter().enumerate() {
                let pattern = TemporalPattern::singleton(iv.symbol);
                level1
                    .entry(pattern)
                    .or_default()
                    .entry(seq_id as u32)
                    .or_default()
                    .push(vec![pos as u32]);
            }
        }

        let mut patterns = Vec::new();
        let mut roots: Vec<(TemporalPattern, OccMap)> = level1.into_iter().collect();
        roots.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (pattern, occ) in roots {
            if occ.len() >= self.min_support {
                self.expand(&ordered, pattern, occ, &mut patterns, &mut stats);
            }
        }

        stats.elapsed_micros = started.elapsed().as_micros() as u64;
        BaselineResult::finish(patterns, stats)
    }

    fn expand(
        &self,
        ordered: &[Vec<EventInterval>],
        pattern: TemporalPattern,
        occ: OccMap,
        out: &mut Vec<FrequentPattern>,
        stats: &mut BaselineStats,
    ) {
        stats.occurrences_materialized += occ.values().map(|v| v.len() as u64).sum::<u64>();
        let arity = pattern.arity();
        out.push(FrequentPattern {
            pattern,
            support: occ.len(),
        });
        if let Some(max) = self.max_arity {
            if arity >= max {
                return;
            }
        }

        // Extend every occurrence with every later instance.
        let mut children: HashMap<TemporalPattern, OccMap> = HashMap::new();
        let mut scratch: Vec<EventInterval> = Vec::with_capacity(arity + 1);
        for (&seq_id, tuples) in &occ {
            let ivs = &ordered[seq_id as usize];
            for tuple in tuples {
                // xlint::allow(no-panic-lib): occurrence tuples are built non-empty at arity 1 and only grow
                let last = *tuple.last().expect("non-empty occurrence") as usize;
                for next in (last + 1)..ivs.len() {
                    scratch.clear();
                    scratch.extend(tuple.iter().map(|&p| ivs[p as usize]));
                    scratch.push(ivs[next]);
                    stats.candidates_generated += 1;
                    let child_pattern = TemporalPattern::arrangement_of(&scratch);
                    let mut child_tuple = tuple.clone();
                    child_tuple.push(next as u32);
                    children
                        .entry(child_pattern)
                        .or_default()
                        .entry(seq_id)
                        .or_default()
                        .push(child_tuple);
                }
            }
        }

        let mut children: Vec<(TemporalPattern, OccMap)> = children.into_iter().collect();
        children.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (child_pattern, child_occ) in children {
            if child_occ.len() >= self.min_support {
                self.expand(ordered, child_pattern, child_occ, out, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::DatabaseBuilder;
    use tpminer::{MinerConfig, TpMiner};

    fn messy_db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 4)
            .interval("B", 2, 6)
            .interval("A", 5, 9);
        b.sequence()
            .interval("A", 0, 9)
            .interval("B", 1, 3)
            .interval("A", 1, 3);
        b.sequence().interval("B", 0, 2).interval("A", 2, 4);
        b.sequence().interval("A", 0, 5).interval("B", 0, 5);
        b.build()
    }

    #[test]
    fn agrees_with_tpminer() {
        let db = messy_db();
        for min_sup in 1..=4 {
            let hdfs = HDfsMiner::new(min_sup).mine(&db);
            let tp = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
            assert_eq!(hdfs.patterns, tp.patterns().to_vec(), "min_sup={min_sup}");
        }
    }

    #[test]
    fn max_arity_limits_depth() {
        let db = messy_db();
        let result = HDfsMiner::new(1).max_arity(2).mine(&db);
        assert!(result.patterns.iter().all(|p| p.pattern.arity() <= 2));
        let full = HDfsMiner::new(1).mine(&db);
        assert!(full.len() > result.len());
    }

    #[test]
    fn materializes_occurrences() {
        let db = messy_db();
        let result = HDfsMiner::new(1).mine(&db);
        assert!(result.stats.occurrences_materialized > 0);
        assert!(result.stats.candidates_generated > 0);
    }

    #[test]
    fn empty_database() {
        assert!(HDfsMiner::new(1).mine(&IntervalDatabase::new()).is_empty());
    }
}
