//! Dataset profiling: the summary statistics a miner user wants to see
//! before choosing thresholds (drives `ptpminer-cli stats`).

use interval_core::{IntervalDatabase, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of an interval database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Number of sequences.
    pub sequences: usize,
    /// Total intervals.
    pub intervals: usize,
    /// Distinct symbols actually used (≤ symbol-table size).
    pub used_symbols: usize,
    /// Minimum / mean / maximum sequence length.
    pub seq_len: (usize, f64, usize),
    /// Minimum / mean / maximum interval duration.
    pub duration: (Time, f64, Time),
    /// Fraction of interval pairs within a sequence that overlap in time
    /// (sampled exactly over all pairs) — the key difficulty knob for
    /// interval miners.
    pub overlap_density: f64,
    /// The five most frequent symbols with their sequence-level supports.
    pub top_symbols: Vec<(String, usize)>,
}

impl DatasetProfile {
    /// Profiles a database in one pass (plus a pairwise overlap scan per
    /// sequence, quadratic only in per-sequence length).
    pub fn of(db: &IntervalDatabase) -> DatasetProfile {
        let mut used: std::collections::HashMap<interval_core::SymbolId, usize> =
            std::collections::HashMap::new();
        let mut len_min = usize::MAX;
        let mut len_max = 0usize;
        let mut dur_min = Time::MAX;
        let mut dur_max = Time::MIN;
        let mut dur_sum = 0i128;
        let mut overlapping_pairs = 0u64;
        let mut total_pairs = 0u64;

        for seq in db.sequences() {
            len_min = len_min.min(seq.len());
            len_max = len_max.max(seq.len());
            let ivs = seq.intervals();
            let mut seen = Vec::with_capacity(ivs.len());
            for iv in ivs {
                dur_min = dur_min.min(iv.duration());
                dur_max = dur_max.max(iv.duration());
                dur_sum += i128::from(iv.duration());
                seen.push(iv.symbol);
            }
            seen.sort_unstable();
            seen.dedup();
            for s in seen {
                *used.entry(s).or_insert(0) += 1;
            }
            for i in 0..ivs.len() {
                for j in (i + 1)..ivs.len() {
                    total_pairs += 1;
                    if ivs[i].start < ivs[j].end && ivs[j].start < ivs[i].end {
                        overlapping_pairs += 1;
                    }
                }
            }
        }

        let intervals = db.total_intervals();
        let mut by_support: Vec<(String, usize)> = used
            .iter()
            .map(|(&s, &c)| (db.symbols().name(s).to_owned(), c))
            .collect();
        by_support.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_support.truncate(5);

        DatasetProfile {
            sequences: db.len(),
            intervals,
            used_symbols: used.len(),
            seq_len: (
                if db.is_empty() { 0 } else { len_min },
                db.mean_sequence_len(),
                len_max,
            ),
            duration: (
                if intervals == 0 { 0 } else { dur_min },
                if intervals == 0 {
                    0.0
                } else {
                    dur_sum as f64 / intervals as f64
                },
                if intervals == 0 { 0 } else { dur_max },
            ),
            overlap_density: if total_pairs == 0 {
                0.0
            } else {
                overlapping_pairs as f64 / total_pairs as f64
            },
            top_symbols: by_support,
        }
    }
}

impl fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sequences:          {}", self.sequences)?;
        writeln!(f, "intervals:          {}", self.intervals)?;
        writeln!(f, "used symbols:       {}", self.used_symbols)?;
        writeln!(
            f,
            "sequence length:    min {} / mean {:.2} / max {}",
            self.seq_len.0, self.seq_len.1, self.seq_len.2
        )?;
        writeln!(
            f,
            "interval duration:  min {} / mean {:.2} / max {}",
            self.duration.0, self.duration.1, self.duration.2
        )?;
        writeln!(
            f,
            "overlap density:    {:.1}% of within-sequence pairs",
            self.overlap_density * 100.0
        )?;
        writeln!(f, "top symbols by sequence support:")?;
        for (name, count) in &self.top_symbols {
            writeln!(f, "  {name:<20} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::DatabaseBuilder;

    fn db() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("a", 0, 10).interval("b", 5, 15); // overlap
        b.sequence().interval("a", 0, 2).interval("c", 3, 4); // disjoint
        b.sequence().interval("a", 0, 4);
        b.build()
    }

    #[test]
    fn profile_computes_basic_stats() {
        let p = DatasetProfile::of(&db());
        assert_eq!(p.sequences, 3);
        assert_eq!(p.intervals, 5);
        assert_eq!(p.used_symbols, 3);
        assert_eq!(p.seq_len, (1, 5.0 / 3.0, 2));
        assert_eq!(p.duration.0, 1); // c: [3,4)
        assert_eq!(p.duration.2, 10);
        // pairs: 2 (one overlapping, one disjoint) -> 50%
        assert!((p.overlap_density - 0.5).abs() < 1e-12);
        assert_eq!(p.top_symbols[0], ("a".to_owned(), 3));
    }

    #[test]
    fn display_is_complete() {
        let text = DatasetProfile::of(&db()).to_string();
        assert!(text.contains("sequences:          3"));
        assert!(text.contains("overlap density"));
        assert!(text.contains("top symbols"));
    }

    #[test]
    fn empty_database_profile() {
        let p = DatasetProfile::of(&IntervalDatabase::new());
        assert_eq!(p.sequences, 0);
        assert_eq!(p.intervals, 0);
        assert_eq!(p.overlap_density, 0.0);
        assert!(p.top_symbols.is_empty());
        let _ = p.to_string();
    }

    #[test]
    fn profile_round_trips_through_serde() {
        let p = DatasetProfile::of(&db());
        let text = serde_json::to_string(&p).unwrap();
        let back: DatasetProfile = serde_json::from_str(&text).unwrap();
        assert_eq!(p, back);
    }
}
