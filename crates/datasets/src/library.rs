//! Library-lending emulator.
//!
//! Models the classic library dataset of the interval-mining literature:
//! every sequence is one patron's borrowing history; every interval is a
//! loan of a book *category*, from checkout to return. Patrons have a small
//! set of favourite genres and follow correlated habits — e.g. borrowing a
//! language textbook together with its exercise book, or picking up the next
//! volume of a series while the previous one is still checked out — which
//! plants genuine overlap/containment arrangements for the miner to find.

use interval_core::{IntervalDatabase, IntervalSequence, SymbolTable, Time};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The book categories of the emulated library.
pub const CATEGORIES: &[&str] = &[
    "novel",
    "novel-sequel",
    "textbook",
    "exercise-book",
    "travel-guide",
    "phrasebook",
    "biography",
    "cookbook",
    "magazine",
    "comics",
    "poetry",
    "history",
];

/// Parameters of the library emulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibraryConfig {
    /// Number of patrons (sequences).
    pub patrons: usize,
    /// Average loans per patron (Poisson-ish).
    pub avg_loans: f64,
    /// Mean loan duration in days.
    pub avg_loan_days: f64,
    /// Observation window in days.
    pub horizon_days: Time,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        Self {
            patrons: 1_000,
            avg_loans: 8.0,
            avg_loan_days: 21.0,
            horizon_days: 365,
            seed: 11,
        }
    }
}

/// Correlated habits: `(first category, companion category, gap mean)`.
/// A negative gap means the companion is usually borrowed while the first
/// loan is still open (producing overlaps); `0` tends to produce meets.
const HABITS: &[(&str, &str, i64)] = &[
    ("novel", "novel-sequel", -7),
    ("textbook", "exercise-book", -18),
    ("travel-guide", "phrasebook", -10),
    ("history", "biography", 0),
];

/// The emulator. Construct with a [`LibraryConfig`], call
/// [`generate`](LibraryEmulator::generate).
#[derive(Debug, Clone)]
pub struct LibraryEmulator {
    config: LibraryConfig,
}

impl LibraryEmulator {
    /// Creates an emulator.
    pub fn new(config: LibraryConfig) -> Self {
        Self { config }
    }

    /// Generates the lending database (deterministic per seed).
    pub fn generate(&self) -> IntervalDatabase {
        let mut symbols = SymbolTable::new();
        for c in CATEGORIES {
            symbols.intern(c);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut sequences = Vec::with_capacity(self.config.patrons);
        for _ in 0..self.config.patrons {
            sequences.push(self.patron(&mut rng, &symbols));
        }
        IntervalDatabase::from_parts(symbols, sequences)
    }

    fn patron(&self, rng: &mut ChaCha8Rng, symbols: &SymbolTable) -> IntervalSequence {
        let cfg = &self.config;
        // Favourite habit of this patron: most of their correlated borrowing
        // follows it. Popularity is skewed (novel readers dominate), so the
        // top habits clear case-study support thresholds.
        let habit_idx = (rng.gen::<f64>().powi(2) * HABITS.len() as f64) as usize;
        let habit = HABITS[habit_idx.min(HABITS.len() - 1)];
        let loans = ((cfg.avg_loans * (0.5 + rng.gen::<f64>())) as usize).max(1);
        let mut seq = IntervalSequence::new();
        let mut count = 0usize;
        while count < loans {
            let start = rng.gen_range(0..cfg.horizon_days.max(1));
            let dur = loan_days(rng, cfg.avg_loan_days);
            if rng.gen::<f64>() < 0.55 {
                // Correlated pair following the habit.
                let (first, second, gap_mean) = habit;
                // xlint::allow(no-panic-lib): habit pairs are drawn from CATEGORIES, all interned up front; a miss means the two tables drifted
                let a = symbols.lookup(first).expect("category interned");
                // xlint::allow(no-panic-lib): habit pairs are drawn from CATEGORIES, all interned up front; a miss means the two tables drifted
                let b = symbols.lookup(second).expect("category interned");
                seq.push(interval_core::EventInterval::new_unchecked(
                    a,
                    start,
                    start + dur,
                ));
                let gap = gap_mean + rng.gen_range(-3..=3);
                let second_start = (start + dur + gap).max(start + 1);
                let second_dur = loan_days(rng, cfg.avg_loan_days);
                seq.push(interval_core::EventInterval::new_unchecked(
                    b,
                    second_start,
                    second_start + second_dur,
                ));
                count += 2;
            } else {
                // Casual loan of any category.
                let c = symbols
                    .lookup(CATEGORIES[rng.gen_range(0..CATEGORIES.len())])
                    // xlint::allow(no-panic-lib): indexed straight out of CATEGORIES, which is interned up front
                    .expect("category interned");
                seq.push(interval_core::EventInterval::new_unchecked(
                    c,
                    start,
                    start + dur,
                ));
                count += 1;
            }
        }
        seq
    }
}

fn loan_days(rng: &mut ChaCha8Rng, mean: f64) -> Time {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    ((-u.ln() * mean) as Time).clamp(1, 90)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = LibraryEmulator::new(LibraryConfig::default()).generate();
        let b = LibraryEmulator::new(LibraryConfig::default()).generate();
        assert_eq!(a, b);
        let c = LibraryEmulator::new(LibraryConfig {
            seed: 99,
            ..Default::default()
        })
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_patron_count() {
        let cfg = LibraryConfig {
            patrons: 37,
            ..Default::default()
        };
        let db = LibraryEmulator::new(cfg).generate();
        assert_eq!(db.len(), 37);
        assert!(db.sequences().iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn uses_only_known_categories() {
        let db = LibraryEmulator::new(LibraryConfig {
            patrons: 50,
            ..Default::default()
        })
        .generate();
        assert_eq!(db.symbols().len(), CATEGORIES.len());
        for seq in db.sequences() {
            for iv in seq {
                assert!(db.symbols().try_name(iv.symbol).is_some());
                assert!(iv.duration() >= 1 && iv.duration() <= 90);
            }
        }
    }

    #[test]
    fn habit_pairs_co_occur_frequently() {
        let db = LibraryEmulator::new(LibraryConfig {
            patrons: 400,
            ..Default::default()
        })
        .generate();
        let novel = db.symbols().lookup("novel").unwrap();
        let sequel = db.symbols().lookup("novel-sequel").unwrap();
        let both = db
            .sequences()
            .iter()
            .filter(|s| s.contains_symbol(novel) && s.contains_symbol(sequel))
            .count();
        assert!(both > 40, "novel+sequel co-occur in only {both} patrons");
    }
}
