//! Line-oriented text format for interval databases.
//!
//! - one sequence per line;
//! - intervals separated by `;`;
//! - an interval is `name start end` (certain) or `name start end p`
//!   (uncertain);
//! - blank lines and lines starting with `#` are ignored;
//! - an empty sequence is written as a lone `-`.
//!
//! Symbol names must not contain whitespace, `;` or `,`, and must not start
//! with `#` — such names would not survive a write/read round trip. All
//! generators and emulators in this workspace satisfy this; validate names
//! when ingesting external data through other paths.
//!
//! ```
//! use datasets::io;
//! use interval_core::DatabaseBuilder;
//!
//! let mut b = DatabaseBuilder::new();
//! b.sequence().interval("fever", 0, 10).interval("rash", 5, 20);
//! let db = b.build();
//!
//! let text = io::write_database(&db);
//! let back = io::read_database(&text).unwrap();
//! assert_eq!(db, back);
//! ```

use interval_core::{
    DatabaseBuilder, IntervalDatabase, IntervalError, Result, UncertainDatabase,
    UncertainDatabaseBuilder,
};
use std::fmt::Write as _;
use std::path::Path;

/// Writes the `#! symbols:` header that preserves symbol-id assignment
/// across a write/read round trip.
fn symbols_header(symbols: &interval_core::SymbolTable) -> String {
    let mut out = String::from("#! symbols:");
    for (_, name) in symbols.iter() {
        out.push(' ');
        out.push_str(name);
    }
    out.push('\n');
    out
}

/// Pre-interns the names of a `#! symbols:` header line, if `line` is one.
fn apply_symbols_header(line: &str, symbols: &mut impl FnMut(&str)) -> bool {
    if let Some(rest) = line.strip_prefix("#! symbols:") {
        for name in rest.split_whitespace() {
            symbols(name);
        }
        true
    } else {
        false
    }
}

/// Serializes a certain database to the text format.
pub fn write_database(db: &IntervalDatabase) -> String {
    let mut out = symbols_header(db.symbols());
    for seq in db.sequences() {
        if seq.is_empty() {
            out.push_str("-\n");
            continue;
        }
        let mut first = true;
        for iv in seq {
            if !first {
                out.push_str("; ");
            }
            first = false;
            let _ = write!(
                out,
                "{} {} {}",
                db.symbols().name(iv.symbol),
                iv.start,
                iv.end
            );
        }
        out.push('\n');
    }
    out
}

/// Serializes an uncertain database (probability as a fourth field).
pub fn write_uncertain_database(db: &UncertainDatabase) -> String {
    let mut out = symbols_header(db.symbols());
    for seq in db.sequences() {
        if seq.is_empty() {
            out.push_str("-\n");
            continue;
        }
        let mut first = true;
        for u in seq.intervals() {
            if !first {
                out.push_str("; ");
            }
            first = false;
            let _ = write!(
                out,
                "{} {} {} {}",
                db.symbols().name(u.interval.symbol),
                u.interval.start,
                u.interval.end,
                u.probability
            );
        }
        out.push('\n');
    }
    out
}

/// Parses the text format into a certain database.
pub fn read_database(text: &str) -> Result<IntervalDatabase> {
    let mut builder = DatabaseBuilder::new();
    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if apply_symbols_header(trimmed, &mut |name| {
            builder.intern_symbol(name);
        }) {
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let seq = builder.sequence();
        if trimmed == "-" {
            continue;
        }
        let mut seq = seq;
        for item in trimmed.split(';') {
            let fields: Vec<&str> = item.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(IntervalError::Parse {
                    line: line_no,
                    message: format!("expected `name start end`, got `{}`", item.trim()),
                });
            }
            let start = parse_time(fields[1], line_no)?;
            let end = parse_time(fields[2], line_no)?;
            if start >= end {
                return Err(IntervalError::Parse {
                    line: line_no,
                    message: format!("degenerate interval [{start}, {end})"),
                });
            }
            seq = seq.interval(fields[0], start, end);
        }
    }
    Ok(builder.build())
}

/// Parses the text format into an uncertain database. A missing fourth field
/// defaults to probability 1.
pub fn read_uncertain_database(text: &str) -> Result<UncertainDatabase> {
    let mut builder = UncertainDatabaseBuilder::new();
    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if apply_symbols_header(trimmed, &mut |name| {
            builder.intern_symbol(name);
        }) {
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let seq = builder.sequence();
        if trimmed == "-" {
            continue;
        }
        let mut seq = seq;
        for item in trimmed.split(';') {
            let fields: Vec<&str> = item.split_whitespace().collect();
            if fields.len() != 3 && fields.len() != 4 {
                return Err(IntervalError::Parse {
                    line: line_no,
                    message: format!("expected `name start end [p]`, got `{}`", item.trim()),
                });
            }
            let start = parse_time(fields[1], line_no)?;
            let end = parse_time(fields[2], line_no)?;
            if start >= end {
                return Err(IntervalError::Parse {
                    line: line_no,
                    message: format!("degenerate interval [{start}, {end})"),
                });
            }
            let p = if fields.len() == 4 {
                fields[3].parse::<f64>().map_err(|_| IntervalError::Parse {
                    line: line_no,
                    message: format!("bad probability `{}`", fields[3]),
                })?
            } else {
                1.0
            };
            if !(p > 0.0 && p <= 1.0) {
                return Err(IntervalError::Parse {
                    line: line_no,
                    message: format!("probability {p} outside (0, 1]"),
                });
            }
            seq = seq.interval(fields[0], start, end, p);
        }
    }
    Ok(builder.build())
}

/// Writes a certain database to a file.
pub fn save_database(db: &IntervalDatabase, path: &Path) -> Result<()> {
    std::fs::write(path, write_database(db))?;
    Ok(())
}

/// Reads a certain database from a file.
pub fn load_database(path: &Path) -> Result<IntervalDatabase> {
    let text = std::fs::read_to_string(path)?;
    read_database(&text)
}

fn parse_time(s: &str, line: usize) -> Result<i64> {
    s.parse::<i64>().map_err(|_| IntervalError::Parse {
        line,
        message: format!("bad timestamp `{s}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::DatabaseBuilder;

    fn demo() -> IntervalDatabase {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5).interval("B", -3, 8);
        b.sequence();
        b.sequence().interval("A", 1, 2);
        b.build()
    }

    #[test]
    fn round_trip_certain() {
        let db = demo();
        let text = write_database(&db);
        let back = read_database(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn round_trip_uncertain() {
        let mut b = interval_core::UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5, 0.5)
            .interval("B", 1, 2, 1.0);
        let db = b.build();
        let text = write_uncertain_database(&db);
        let back = read_uncertain_database(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nA 0 5; B 3 8\n  \n# trailing\n";
        let db = read_database(text).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_intervals(), 2);
    }

    #[test]
    fn empty_sequence_marker_round_trips() {
        let text = "-\nA 0 1\n";
        let db = read_database(text).unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.sequences()[0].is_empty());
        assert_eq!(read_database(&write_database(&db)).unwrap(), db);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_database("A 0 5\nB zero 5\n").unwrap_err();
        match err {
            IntervalError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_database("A 5 5\n").unwrap_err();
        assert!(err.to_string().contains("degenerate"));
        let err = read_database("A 5\n").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn uncertain_parser_validates_probability() {
        assert!(read_uncertain_database("A 0 5 0.0\n").is_err());
        assert!(read_uncertain_database("A 0 5 1.5\n").is_err());
        assert!(read_uncertain_database("A 0 5 nan\n").is_err());
        let db = read_uncertain_database("A 0 5\n").unwrap();
        assert_eq!(db.sequences()[0].intervals()[0].probability, 1.0);
    }

    #[test]
    fn file_round_trip() {
        let db = demo();
        let dir = std::env::temp_dir().join("ptpminer-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.txt");
        save_database(&db, &path).unwrap();
        assert_eq!(load_database(&path).unwrap(), db);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_database(Path::new("/definitely/not/here.txt")).unwrap_err();
        assert!(matches!(err, IntervalError::Io(_)));
    }
}
