//! Patient-monitoring (ICU) emulator.
//!
//! The motivating example of interval-based pattern mining: each sequence is
//! one patient stay, each interval a *state* that holds for a while — a
//! symptom, an abnormal vital sign, a running medication. Clinical courses
//! follow loose scripts (infection → fever with tachycardia riding on it →
//! antibiotics overlapping both; hypotension during sedation; …), which the
//! emulator plants with jitter, optional steps and background noise.

use interval_core::{EventInterval, IntervalDatabase, IntervalSequence, SymbolTable, Time};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Clinical state vocabulary of the emulator.
pub const STATES: &[&str] = &[
    "fever",
    "tachycardia",
    "hypotension",
    "antibiotics",
    "vasopressors",
    "sedation",
    "ventilation",
    "dialysis",
    "delirium",
    "anemia",
];

/// Parameters of the ICU emulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcuConfig {
    /// Number of patient stays (sequences).
    pub patients: usize,
    /// Mean state duration in hours.
    pub avg_state_hours: f64,
    /// Probability a patient follows the sepsis script (vs. the
    /// post-operative script).
    pub sepsis_fraction: f64,
    /// Expected number of unrelated background states per stay.
    pub noise_states: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IcuConfig {
    fn default() -> Self {
        Self {
            patients: 1_000,
            avg_state_hours: 12.0,
            sepsis_fraction: 0.45,
            noise_states: 1.5,
            seed: 41,
        }
    }
}

/// The emulator. Construct with an [`IcuConfig`], call
/// [`generate`](IcuEmulator::generate).
#[derive(Debug, Clone)]
pub struct IcuEmulator {
    config: IcuConfig,
}

impl IcuEmulator {
    /// Creates an emulator.
    pub fn new(config: IcuConfig) -> Self {
        Self { config }
    }

    /// Generates the patient-stay database (deterministic per seed).
    pub fn generate(&self) -> IntervalDatabase {
        let mut symbols = SymbolTable::new();
        for s in STATES {
            symbols.intern(s);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut sequences = Vec::with_capacity(self.config.patients);
        for _ in 0..self.config.patients {
            sequences.push(self.stay(&mut rng, &symbols));
        }
        IntervalDatabase::from_parts(symbols, sequences)
    }

    fn stay(&self, rng: &mut ChaCha8Rng, symbols: &SymbolTable) -> IntervalSequence {
        let cfg = &self.config;
        let mut seq = IntervalSequence::new();
        let onset = rng.gen_range(0..24i64);
        let h = |rng: &mut ChaCha8Rng| hours(rng, cfg.avg_state_hours);

        let push = |seq: &mut IntervalSequence, name: &str, start: Time, dur: Time| {
            // xlint::allow(no-panic-lib): every clinical state name is interned before generation; a miss means the state list and scripts drifted
            let sym = symbols.lookup(name).expect("state interned");
            seq.push(EventInterval::new_unchecked(sym, start, start + dur.max(1)));
        };

        if rng.gen::<f64>() < cfg.sepsis_fraction {
            // Sepsis script: fever; tachycardia during fever; antibiotics
            // started during fever and outlasting it; possibly hypotension
            // with vasopressors contained in it.
            let fever_dur = h(rng) + 6;
            push(&mut seq, "fever", onset, fever_dur);
            let tachy_start = onset + rng.gen_range(1..4);
            push(
                &mut seq,
                "tachycardia",
                tachy_start,
                (fever_dur - rng.gen_range(2..5)).max(2),
            );
            let abx_start = onset + rng.gen_range(2..6);
            push(&mut seq, "antibiotics", abx_start, fever_dur + h(rng) + 12);
            if rng.gen::<f64>() < 0.6 {
                let hypo_start = onset + rng.gen_range(3..8);
                let hypo_dur = h(rng);
                push(&mut seq, "hypotension", hypo_start, hypo_dur + 4);
                push(
                    &mut seq,
                    "vasopressors",
                    hypo_start + 1,
                    hypo_dur.max(3) - 1,
                );
            }
        } else {
            // Post-operative script: sedation with ventilation contained in
            // it; delirium after sedation ends.
            let sed_dur = h(rng) + 8;
            push(&mut seq, "sedation", onset, sed_dur);
            push(
                &mut seq,
                "ventilation",
                onset + 1,
                (sed_dur - rng.gen_range(2..4)).max(2),
            );
            if rng.gen::<f64>() < 0.5 {
                let delirium_start = onset + sed_dur + rng.gen_range(1..6);
                push(&mut seq, "delirium", delirium_start, h(rng) + 2);
            }
        }

        // Background noise.
        let noise = (cfg.noise_states * (0.4 + 1.2 * rng.gen::<f64>())).round() as usize;
        for _ in 0..noise {
            let name = STATES[rng.gen_range(0..STATES.len())];
            let start = rng.gen_range(0..96i64);
            push(&mut seq, name, start, h(rng));
        }
        seq
    }
}

fn hours(rng: &mut ChaCha8Rng, mean: f64) -> Time {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    ((-u.ln() * mean) as Time).clamp(1, 96)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = IcuEmulator::new(IcuConfig::default()).generate();
        let b = IcuEmulator::new(IcuConfig::default()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn respects_patient_count_and_vocabulary() {
        let db = IcuEmulator::new(IcuConfig {
            patients: 77,
            ..Default::default()
        })
        .generate();
        assert_eq!(db.len(), 77);
        assert_eq!(db.symbols().len(), STATES.len());
        for seq in db.sequences() {
            assert!(seq.len() >= 2, "every stay follows a script");
        }
    }

    #[test]
    fn sepsis_script_plants_tachycardia_during_fever() {
        let db = IcuEmulator::new(IcuConfig {
            patients: 600,
            noise_states: 0.0,
            ..Default::default()
        })
        .generate();
        let fever = db.symbols().lookup("fever").unwrap();
        let tachy = db.symbols().lookup("tachycardia").unwrap();
        let both = db
            .sequences()
            .iter()
            .filter(|s| {
                // tachycardia strictly inside fever
                let fevers: Vec<_> = s.iter().filter(|iv| iv.symbol == fever).collect();
                let tachys: Vec<_> = s.iter().filter(|iv| iv.symbol == tachy).collect();
                fevers
                    .iter()
                    .any(|f| tachys.iter().any(|t| f.start < t.start && t.end < f.end))
            })
            .count();
        assert!(
            both > 150,
            "tachycardia-during-fever planted in only {both}/600 stays"
        );
    }

    #[test]
    fn scripts_split_population() {
        let db = IcuEmulator::new(IcuConfig {
            patients: 400,
            sepsis_fraction: 0.5,
            noise_states: 0.0,
            ..Default::default()
        })
        .generate();
        let sedation = db.symbols().lookup("sedation").unwrap();
        let fever = db.symbols().lookup("fever").unwrap();
        let sedated = db
            .sequences()
            .iter()
            .filter(|s| s.contains_symbol(sedation))
            .count();
        let febrile = db
            .sequences()
            .iter()
            .filter(|s| s.contains_symbol(fever))
            .count();
        assert!(sedated > 120 && febrile > 120);
        assert_eq!(
            sedated + febrile,
            db.len(),
            "with zero noise each stay follows exactly one script"
        );
    }
}
