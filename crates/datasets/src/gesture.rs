//! Sign-language / gesture annotation emulator.
//!
//! Models annotation corpora like the ASL datasets used throughout the
//! interval-mining literature: every sequence is one utterance; intervals
//! are linguistic annotations on parallel tiers (hand shape, head movement,
//! eyebrow position, mouthing, …). Annotations on different tiers overlap
//! heavily — a wh-question raises the brows *during* the manual sign, a
//! head-shake *contains* the negated phrase — which is exactly the kind of
//! structure temporal patterns are meant to capture. Utterances are drawn
//! from a small set of grammatical templates with jitter and optional tiers.

use interval_core::{EventInterval, IntervalDatabase, IntervalSequence, SymbolTable, Time};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the gesture emulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GestureConfig {
    /// Number of utterances (sequences).
    pub utterances: usize,
    /// Mean sign duration in frames.
    pub avg_sign_frames: f64,
    /// Probability that an optional tier annotation is realized.
    pub optional_tier_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GestureConfig {
    fn default() -> Self {
        Self {
            utterances: 800,
            avg_sign_frames: 30.0,
            optional_tier_probability: 0.7,
            seed: 31,
        }
    }
}

/// One templated annotation: tier name, start offset relative to the
/// template anchor, duration factor relative to the sign duration, and
/// whether the tier is optional.
struct TemplateAnnotation {
    tier: &'static str,
    offset_frac: f64,
    duration_frac: f64,
    optional: bool,
}

/// A grammatical template.
struct Template {
    annotations: &'static [TemplateAnnotation],
}

const WH_QUESTION: Template = Template {
    annotations: &[
        TemplateAnnotation {
            tier: "sign-wh",
            offset_frac: 0.0,
            duration_frac: 1.0,
            optional: false,
        },
        // brows raise just before the sign and hold through it (contains)
        TemplateAnnotation {
            tier: "brow-raise",
            offset_frac: -0.2,
            duration_frac: 1.5,
            optional: false,
        },
        TemplateAnnotation {
            tier: "head-tilt",
            offset_frac: 0.3,
            duration_frac: 0.6,
            optional: true,
        },
    ],
};

const NEGATION: Template = Template {
    annotations: &[
        TemplateAnnotation {
            tier: "sign-neg",
            offset_frac: 0.0,
            duration_frac: 1.0,
            optional: false,
        },
        // head-shake overlaps the sign, extending past it
        TemplateAnnotation {
            tier: "head-shake",
            offset_frac: 0.4,
            duration_frac: 1.2,
            optional: false,
        },
        TemplateAnnotation {
            tier: "mouth-neg",
            offset_frac: 0.1,
            duration_frac: 0.8,
            optional: true,
        },
    ],
};

const TOPIC_COMMENT: Template = Template {
    annotations: &[
        TemplateAnnotation {
            tier: "sign-topic",
            offset_frac: 0.0,
            duration_frac: 1.0,
            optional: false,
        },
        // comment sign meets/after the topic
        TemplateAnnotation {
            tier: "sign-comment",
            offset_frac: 1.0,
            duration_frac: 1.1,
            optional: false,
        },
        TemplateAnnotation {
            tier: "brow-raise",
            offset_frac: 0.0,
            duration_frac: 0.9,
            optional: true,
        },
        TemplateAnnotation {
            tier: "pause",
            offset_frac: 2.2,
            duration_frac: 0.3,
            optional: true,
        },
    ],
};

const TEMPLATES: &[&Template] = &[&WH_QUESTION, &NEGATION, &TOPIC_COMMENT];

/// All tier names the emulator can produce.
pub const TIERS: &[&str] = &[
    "sign-wh",
    "brow-raise",
    "head-tilt",
    "sign-neg",
    "head-shake",
    "mouth-neg",
    "sign-topic",
    "sign-comment",
    "pause",
];

/// The emulator. Construct with a [`GestureConfig`], call
/// [`generate`](GestureEmulator::generate).
#[derive(Debug, Clone)]
pub struct GestureEmulator {
    config: GestureConfig,
}

impl GestureEmulator {
    /// Creates an emulator.
    pub fn new(config: GestureConfig) -> Self {
        Self { config }
    }

    /// Generates the annotation database (deterministic per seed).
    pub fn generate(&self) -> IntervalDatabase {
        let cfg = &self.config;
        let mut symbols = SymbolTable::new();
        for t in TIERS {
            symbols.intern(t);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut sequences = Vec::with_capacity(cfg.utterances);
        for _ in 0..cfg.utterances {
            sequences.push(self.utterance(&mut rng, &symbols));
        }
        IntervalDatabase::from_parts(symbols, sequences)
    }

    fn utterance(&self, rng: &mut ChaCha8Rng, symbols: &SymbolTable) -> IntervalSequence {
        let cfg = &self.config;
        let template = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
        let sign_frames = (cfg.avg_sign_frames * (0.6 + 0.8 * rng.gen::<f64>())).max(4.0);
        let anchor = rng.gen_range(0..120i64) as f64;
        let mut seq = IntervalSequence::new();
        for a in template.annotations {
            if a.optional && rng.gen::<f64>() >= cfg.optional_tier_probability {
                continue;
            }
            let mut jitter = || (rng_jitter(rng) * 0.08) * sign_frames;
            let start = anchor + a.offset_frac * sign_frames + jitter();
            let duration = (a.duration_frac * sign_frames + jitter()).max(2.0);
            // xlint::allow(no-panic-lib): every template tier is interned before generation; a miss means the tier list and templates drifted
            let symbol = symbols.lookup(a.tier).expect("tier interned");
            let start = start.round() as Time;
            seq.push(EventInterval::new_unchecked(
                symbol,
                start,
                start + duration.round().max(1.0) as Time,
            ));
        }
        seq
    }
}

fn rng_jitter(rng: &mut ChaCha8Rng) -> f64 {
    2.0 * rng.gen::<f64>() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = GestureEmulator::new(GestureConfig::default()).generate();
        let b = GestureEmulator::new(GestureConfig::default()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn produces_requested_utterances_with_known_tiers() {
        let db = GestureEmulator::new(GestureConfig {
            utterances: 60,
            ..Default::default()
        })
        .generate();
        assert_eq!(db.len(), 60);
        for seq in db.sequences() {
            assert!(!seq.is_empty());
            for iv in seq {
                assert!(TIERS.contains(&db.symbols().name(iv.symbol)));
            }
        }
    }

    #[test]
    fn annotations_overlap_within_utterances() {
        let db = GestureEmulator::new(GestureConfig {
            utterances: 300,
            ..Default::default()
        })
        .generate();
        let overlapping = db
            .sequences()
            .iter()
            .filter(|s| {
                s.iter().enumerate().any(|(i, a)| {
                    s.iter()
                        .skip(i + 1)
                        .any(|b| a.start < b.end && b.start < a.end)
                })
            })
            .count();
        assert!(
            overlapping > db.len() / 2,
            "only {overlapping}/{} utterances have overlapping tiers",
            db.len()
        );
    }

    #[test]
    fn mandatory_tiers_always_present() {
        let db = GestureEmulator::new(GestureConfig {
            utterances: 100,
            optional_tier_probability: 0.0,
            ..Default::default()
        })
        .generate();
        // With optional tiers disabled, every utterance still has at least
        // the mandatory annotations of its template (>= 2).
        for seq in db.sequences() {
            assert!(seq.len() >= 2, "utterance lost mandatory tiers: {seq:?}");
        }
    }
}
