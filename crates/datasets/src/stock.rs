//! Stock price-state emulator.
//!
//! Models the stock dataset of the interval-mining literature: prices are
//! discretized into maximal *state intervals* (`TICKER-up`, `TICKER-down`,
//! `TICKER-flat`), and each sequence covers one trading window over a basket
//! of tickers. A shared market factor correlates moves across tickers, so
//! arrangements like `bank1-up overlaps bank2-up` are genuinely frequent —
//! the kind of pattern the paper's case study reports.

use interval_core::{EventInterval, IntervalDatabase, IntervalSequence, SymbolTable, Time};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the stock emulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StockConfig {
    /// Number of tickers in the basket.
    pub tickers: usize,
    /// Number of trading windows (sequences).
    pub windows: usize,
    /// Trading days per window.
    pub days_per_window: Time,
    /// Strength of the shared market factor in `[0, 1]`; higher values make
    /// tickers move together more often.
    pub market_correlation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        Self {
            tickers: 6,
            windows: 500,
            days_per_window: 20,
            market_correlation: 0.6,
            seed: 21,
        }
    }
}

/// Price move discretization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveState {
    Up,
    Down,
    Flat,
}

impl MoveState {
    fn suffix(self) -> &'static str {
        match self {
            MoveState::Up => "up",
            MoveState::Down => "down",
            MoveState::Flat => "flat",
        }
    }
}

/// The emulator. Construct with a [`StockConfig`], call
/// [`generate`](StockEmulator::generate).
#[derive(Debug, Clone)]
pub struct StockEmulator {
    config: StockConfig,
}

impl StockEmulator {
    /// Creates an emulator.
    pub fn new(config: StockConfig) -> Self {
        Self { config }
    }

    /// Generates the state-interval database (deterministic per seed).
    pub fn generate(&self) -> IntervalDatabase {
        let cfg = &self.config;
        let mut symbols = SymbolTable::new();
        for t in 0..cfg.tickers {
            for s in [MoveState::Up, MoveState::Down, MoveState::Flat] {
                symbols.intern(&format!("stk{t}-{}", s.suffix()));
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut sequences = Vec::with_capacity(cfg.windows);
        for _ in 0..cfg.windows {
            sequences.push(self.window(&mut rng, &symbols));
        }
        IntervalDatabase::from_parts(symbols, sequences)
    }

    /// One trading window: per-day market factor, per-ticker daily moves,
    /// maximal runs of equal state become intervals.
    fn window(&self, rng: &mut ChaCha8Rng, symbols: &SymbolTable) -> IntervalSequence {
        let cfg = &self.config;
        let days = cfg.days_per_window.max(2) as usize;
        // Market factor per day: -1, 0, +1 with persistence.
        let mut market = Vec::with_capacity(days);
        let mut m: i64 = 0;
        for _ in 0..days {
            if rng.gen::<f64>() < 0.4 {
                m = rng.gen_range(-1..=1);
            }
            market.push(m);
        }

        let mut intervals = Vec::new();
        for t in 0..cfg.tickers {
            let mut states = Vec::with_capacity(days);
            for &m in &market {
                let follow = rng.gen::<f64>() < cfg.market_correlation;
                let direction = if follow { m } else { rng.gen_range(-1..=1) };
                states.push(match direction {
                    1 => MoveState::Up,
                    -1 => MoveState::Down,
                    _ => MoveState::Flat,
                });
            }
            // Compress runs into maximal state intervals.
            let mut day = 0usize;
            while day < days {
                let state = states[day];
                let mut end = day + 1;
                while end < days && states[end] == state {
                    end += 1;
                }
                let symbol = symbols
                    .lookup(&format!("stk{t}-{}", state.suffix()))
                    // xlint::allow(no-panic-lib): all ticker-state names are interned before generation from the same format string
                    .expect("state symbol interned");
                intervals.push(EventInterval::new_unchecked(
                    symbol,
                    day as Time,
                    end as Time,
                ));
                day = end;
            }
        }
        IntervalSequence::from_intervals(intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = StockEmulator::new(StockConfig::default()).generate();
        let b = StockEmulator::new(StockConfig::default()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn state_intervals_tile_the_window_per_ticker() {
        let cfg = StockConfig {
            tickers: 3,
            windows: 10,
            days_per_window: 15,
            ..Default::default()
        };
        let db = StockEmulator::new(cfg).generate();
        assert_eq!(db.len(), 10);
        for seq in db.sequences() {
            // per ticker, total covered days == window length, no overlap
            for t in 0..cfg.tickers {
                let mut ticker_ivs: Vec<_> = seq
                    .iter()
                    .filter(|iv| {
                        db.symbols()
                            .name(iv.symbol)
                            .starts_with(&format!("stk{t}-"))
                    })
                    .collect();
                ticker_ivs.sort_by_key(|iv| iv.start);
                let covered: i64 = ticker_ivs.iter().map(|iv| iv.duration()).sum();
                assert_eq!(covered, cfg.days_per_window);
                for w in ticker_ivs.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "maximal runs must tile");
                }
            }
        }
    }

    #[test]
    fn runs_are_maximal() {
        let db = StockEmulator::new(StockConfig {
            windows: 20,
            ..Default::default()
        })
        .generate();
        for seq in db.sequences() {
            let mut by_ticker: std::collections::HashMap<&str, Vec<(&str, i64, i64)>> =
                std::collections::HashMap::new();
            for iv in seq {
                let name = db.symbols().name(iv.symbol);
                let (ticker, state) = name.split_once('-').unwrap();
                by_ticker
                    .entry(ticker)
                    .or_default()
                    .push((state, iv.start, iv.end));
            }
            for ivs in by_ticker.values_mut() {
                ivs.sort_by_key(|&(_, s, _)| s);
                for w in ivs.windows(2) {
                    assert_ne!(w[0].0, w[1].0, "adjacent runs must differ in state");
                }
            }
        }
    }

    #[test]
    fn high_correlation_produces_co_moving_tickers() {
        let db = StockEmulator::new(StockConfig {
            market_correlation: 0.95,
            windows: 300,
            ..Default::default()
        })
        .generate();
        let s0 = db.symbols().lookup("stk0-up").unwrap();
        let s1 = db.symbols().lookup("stk1-up").unwrap();
        let both = db
            .sequences()
            .iter()
            .filter(|s| s.contains_symbol(s0) && s.contains_symbol(s1))
            .count();
        assert!(
            both > db.len() / 2,
            "correlated ups co-occur in only {both}/{} windows",
            db.len()
        );
    }
}
