//! Realistic interval-dataset emulators and text I/O.
//!
//! The paper applies its miner to *real* datasets "to demonstrate the
//! practicability of discussed patterns". Those datasets (library lending
//! records, stock tick data, sign-language annotations) are not
//! redistributable, so this crate provides deterministic, seeded *emulators*
//! with the same statistical shape — bursty loans with genre preferences,
//! market-factor-correlated price-state intervals, gesture annotations with
//! heavy overlap. The experiments only consume `(symbol, start, end)`
//! triples, so the emulators exercise exactly the code paths the real data
//! would (see `DESIGN.md`, substitution table).
//!
//! The [`io`] module defines the simple line-oriented text format used to
//! persist databases:
//!
//! ```text
//! # one sequence per line; intervals `name start end [probability]`,
//! # separated by `;`
//! fever 0 10; rash 5 20
//! fever 2 9
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod discretize;
pub mod gesture;
pub mod icu;
pub mod io;
pub mod library;
pub mod profile;
pub mod stock;

pub use gesture::{GestureConfig, GestureEmulator};
pub use icu::{IcuConfig, IcuEmulator};
pub use library::{LibraryConfig, LibraryEmulator};
pub use profile::DatasetProfile;
pub use stock::{StockConfig, StockEmulator};
