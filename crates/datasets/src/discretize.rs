//! Discretization: turning numeric time series into state intervals.
//!
//! Interval-based mining consumes `(symbol, start, end)` triples, but raw
//! data is usually a sampled numeric series (a vital sign, a price, a
//! sensor). The standard preprocessing — used by the paper family's stock
//! and ICU case studies — is to map each sample to a discrete *state* and
//! merge maximal runs of equal state into intervals. This module provides
//! that pipeline:
//!
//! - [`Discretizer`] — threshold-based value→state mapping with named bins;
//! - [`delta_states`] — up/flat/down states from first differences;
//! - [`runs_to_intervals`] — maximal-run merging;
//! - [`sliding_windows`] — cutting one long series into mining sequences.

use interval_core::{EventInterval, IntervalSequence, Result, SymbolTable, Time};

/// Maps numeric values into named bins by thresholds.
///
/// `boundaries` must be strictly increasing; a value `v` falls into bin `i`
/// where `i` is the number of boundaries `<= v`. There are
/// `boundaries.len() + 1` bins, named by `labels`.
///
/// ```
/// use datasets::discretize::Discretizer;
///
/// let d = Discretizer::new(vec![36.5, 38.0], vec!["hypothermia", "normal", "fever"]).unwrap();
/// assert_eq!(d.label_of(35.0), "hypothermia");
/// assert_eq!(d.label_of(37.0), "normal");
/// assert_eq!(d.label_of(39.2), "fever");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    boundaries: Vec<f64>,
    labels: Vec<String>,
}

impl Discretizer {
    /// Creates a discretizer; `labels.len()` must be `boundaries.len() + 1`
    /// and boundaries must be strictly increasing and finite.
    pub fn new<S: Into<String>>(boundaries: Vec<f64>, labels: Vec<S>) -> Result<Self> {
        if labels.len() != boundaries.len() + 1 {
            return Err(interval_core::IntervalError::Parse {
                line: 0,
                message: format!(
                    "need {} labels for {} boundaries, got {}",
                    boundaries.len() + 1,
                    boundaries.len(),
                    labels.len()
                ),
            });
        }
        if boundaries.iter().any(|b| !b.is_finite()) || boundaries.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(interval_core::IntervalError::Parse {
                line: 0,
                message: "boundaries must be finite and strictly increasing".into(),
            });
        }
        Ok(Self {
            boundaries,
            labels: labels.into_iter().map(Into::into).collect(),
        })
    }

    /// The bin index of `value`.
    pub fn bin_of(&self, value: f64) -> usize {
        self.boundaries.partition_point(|&b| b <= value)
    }

    /// The bin label of `value`.
    pub fn label_of(&self, value: f64) -> &str {
        &self.labels[self.bin_of(value)]
    }

    /// Discretizes a sampled series (one sample per time tick) into maximal
    /// state intervals, interning `prefix`-qualified labels (e.g.
    /// `temp-fever`) into `symbols`.
    pub fn state_intervals(
        &self,
        values: &[f64],
        prefix: &str,
        symbols: &mut SymbolTable,
    ) -> IntervalSequence {
        let states: Vec<usize> = values.iter().map(|&v| self.bin_of(v)).collect();
        let name_of = |bin: usize| format!("{prefix}-{}", self.labels[bin]);
        runs_to_intervals(&states, |bin| symbols.intern(&name_of(bin)))
    }
}

/// The three delta states produced by [`delta_states`].
pub const DELTA_LABELS: [&str; 3] = ["down", "flat", "up"];

/// Maps a series to per-step movement states by first differences:
/// `|Δ| <= epsilon` is flat (state 1), rises are up (2), falls are down (0).
/// The result has `values.len() - 1` states (empty for a 0/1-sample series).
pub fn delta_states(values: &[f64], epsilon: f64) -> Vec<usize> {
    values
        .windows(2)
        .map(|w| {
            let d = w[1] - w[0];
            if d.abs() <= epsilon {
                1
            } else if d > 0.0 {
                2
            } else {
                0
            }
        })
        .collect()
}

/// Merges maximal runs of equal state into intervals `[run_start, run_end)`
/// (tick units); `intern` maps a state to its symbol.
pub fn runs_to_intervals(
    states: &[usize],
    mut intern: impl FnMut(usize) -> interval_core::SymbolId,
) -> IntervalSequence {
    let mut seq = IntervalSequence::new();
    let mut i = 0usize;
    while i < states.len() {
        let state = states[i];
        let mut j = i + 1;
        while j < states.len() && states[j] == state {
            j += 1;
        }
        seq.push(EventInterval::new_unchecked(
            intern(state),
            i as Time,
            j as Time,
        ));
        i = j;
    }
    seq
}

/// Cuts a long series into overlapping mining sequences of `window` samples
/// every `stride` samples (the common way one continuous recording becomes a
/// sequence database). Trailing partial windows are dropped.
pub fn sliding_windows(values: &[f64], window: usize, stride: usize) -> Vec<&[f64]> {
    if window == 0 || stride == 0 || values.len() < window {
        return Vec::new();
    }
    (0..=values.len() - window)
        .step_by(stride)
        .map(|i| &values[i..i + window])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretizer_validates_inputs() {
        assert!(Discretizer::new(vec![1.0, 2.0], vec!["a", "b"]).is_err()); // wrong label count
        assert!(Discretizer::new(vec![2.0, 1.0], vec!["a", "b", "c"]).is_err()); // not increasing
        assert!(Discretizer::new(vec![f64::NAN], vec!["a", "b"]).is_err());
        assert!(Discretizer::new(Vec::<f64>::new(), vec!["only"]).is_ok());
    }

    #[test]
    fn bins_are_half_open_on_boundaries() {
        let d = Discretizer::new(vec![0.0, 10.0], vec!["neg", "mid", "high"]).unwrap();
        assert_eq!(d.label_of(-0.1), "neg");
        assert_eq!(d.label_of(0.0), "mid"); // boundary belongs upward
        assert_eq!(d.label_of(9.99), "mid");
        assert_eq!(d.label_of(10.0), "high");
    }

    #[test]
    fn state_intervals_merge_runs_and_tile() {
        let d = Discretizer::new(vec![5.0], vec!["low", "high"]).unwrap();
        let mut t = SymbolTable::new();
        let seq = d.state_intervals(&[1.0, 2.0, 7.0, 8.0, 3.0], "x", &mut t);
        let rendered: Vec<(String, i64, i64)> = seq
            .iter()
            .map(|iv| (t.name(iv.symbol).to_owned(), iv.start, iv.end))
            .collect();
        assert_eq!(
            rendered,
            vec![
                ("x-low".to_owned(), 0, 2),
                ("x-high".to_owned(), 2, 4),
                ("x-low".to_owned(), 4, 5),
            ]
        );
        // intervals tile the sampled horizon
        let covered: i64 = seq.iter().map(|iv| iv.duration()).sum();
        assert_eq!(covered, 5);
    }

    #[test]
    fn delta_states_classify_moves() {
        let states = delta_states(&[1.0, 1.0, 2.0, 1.5, 1.45], 0.1);
        assert_eq!(states, vec![1, 2, 0, 1]);
        assert!(delta_states(&[1.0], 0.1).is_empty());
        assert!(delta_states(&[], 0.1).is_empty());
    }

    #[test]
    fn sliding_windows_cover_with_stride() {
        let v: Vec<f64> = (0..10).map(f64::from).collect();
        let w = sliding_windows(&v, 4, 3);
        assert_eq!(w.len(), 3); // starts at 0, 3, 6
        assert_eq!(w[0], &v[0..4]);
        assert_eq!(w[2], &v[6..10]);
        assert!(sliding_windows(&v, 11, 1).is_empty());
        assert!(sliding_windows(&v, 0, 1).is_empty());
        assert!(sliding_windows(&v, 4, 0).is_empty());
    }

    #[test]
    fn end_to_end_discretize_then_mine() {
        // One noisy sine-ish signal per "day"; discretized state patterns
        // must be minable.
        use tpminer_shim::*;
        let d = Discretizer::new(vec![-0.3, 0.3], vec!["low", "mid", "high"]).unwrap();
        let mut symbols = SymbolTable::new();
        let mut sequences = Vec::new();
        for day in 0..20 {
            let values: Vec<f64> = (0..24)
                .map(|h| ((h as f64 + day as f64) * 0.5).sin())
                .collect();
            sequences.push(d.state_intervals(&values, "sig", &mut symbols));
        }
        let db = interval_core::IntervalDatabase::from_parts(symbols, sequences);
        assert!(
            mine_count(&db) >= 2,
            "discretized states must be shared across days"
        );
    }

    /// Avoids a circular dev-dependency on the miner crate: count frequent
    /// symbols as a stand-in for "minable".
    mod tpminer_shim {
        pub fn mine_count(db: &interval_core::IntervalDatabase) -> usize {
            let mut counts = std::collections::HashMap::new();
            for s in db.sequences() {
                let mut syms: Vec<_> = s.iter().map(|iv| iv.symbol).collect();
                syms.sort_unstable();
                syms.dedup();
                for sym in syms {
                    *counts.entry(sym).or_insert(0usize) += 1;
                }
            }
            counts.values().filter(|&&c| c >= db.len() / 2).count()
        }
    }
}
