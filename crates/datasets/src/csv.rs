//! CSV "long format" interop: one interval per row.
//!
//! The common exchange shape for interval data in the wild (spreadsheets,
//! SQL exports) is one row per interval with a sequence key:
//!
//! ```csv
//! sequence,symbol,start,end
//! patient-1,fever,0,10
//! patient-1,rash,5,20
//! patient-2,fever,2,9
//! ```
//!
//! An optional fifth column `probability` turns the file into an uncertain
//! database. Sequences are emitted in first-appearance order; a header row
//! is detected by its non-numeric `start` field and may be omitted.

use interval_core::{
    DatabaseBuilder, IntervalDatabase, IntervalError, Result, UncertainDatabase,
    UncertainDatabaseBuilder,
};
use std::collections::HashMap;
use std::fmt::Write as _;

fn split_row(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

fn is_header(fields: &[&str]) -> bool {
    fields.len() >= 4 && fields[2].parse::<i64>().is_err()
}

/// Parses long-format CSV into a certain database.
pub fn read_long_csv(text: &str) -> Result<IntervalDatabase> {
    let mut builder = DatabaseBuilder::new();
    let mut seq_index: HashMap<String, usize> = HashMap::new();
    let mut pending: Vec<Vec<(String, i64, i64)>> = Vec::new();
    let mut first_content_line = true;

    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields = split_row(trimmed);
        // The header may follow leading comment/blank lines.
        if std::mem::take(&mut first_content_line) && is_header(&fields) {
            continue;
        }
        if fields.len() != 4 {
            return Err(IntervalError::Parse {
                line: line_no,
                message: format!(
                    "expected `sequence,symbol,start,end`, got {} fields",
                    fields.len()
                ),
            });
        }
        let (start, end) = parse_times(fields[2], fields[3], line_no)?;
        let idx = *seq_index.entry(fields[0].to_owned()).or_insert_with(|| {
            pending.push(Vec::new());
            pending.len() - 1
        });
        pending[idx].push((fields[1].to_owned(), start, end));
    }

    for rows in pending {
        let mut seq = builder.sequence();
        for (symbol, start, end) in rows {
            seq = seq.interval(&symbol, start, end);
        }
    }
    Ok(builder.build())
}

/// Parses long-format CSV with a `probability` column into an uncertain
/// database (missing column values default to 1).
pub fn read_long_csv_uncertain(text: &str) -> Result<UncertainDatabase> {
    let mut builder = UncertainDatabaseBuilder::new();
    let mut seq_index: HashMap<String, usize> = HashMap::new();
    let mut pending: Vec<Vec<(String, i64, i64, f64)>> = Vec::new();
    let mut first_content_line = true;

    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields = split_row(trimmed);
        // The header may follow leading comment/blank lines.
        if std::mem::take(&mut first_content_line) && is_header(&fields) {
            continue;
        }
        if fields.len() != 4 && fields.len() != 5 {
            return Err(IntervalError::Parse {
                line: line_no,
                message: format!(
                    "expected `sequence,symbol,start,end[,probability]`, got {} fields",
                    fields.len()
                ),
            });
        }
        let (start, end) = parse_times(fields[2], fields[3], line_no)?;
        let p = if fields.len() == 5 {
            fields[4].parse::<f64>().map_err(|_| IntervalError::Parse {
                line: line_no,
                message: format!("bad probability `{}`", fields[4]),
            })?
        } else {
            1.0
        };
        if !(p > 0.0 && p <= 1.0) {
            return Err(IntervalError::Parse {
                line: line_no,
                message: format!("probability {p} outside (0, 1]"),
            });
        }
        let idx = *seq_index.entry(fields[0].to_owned()).or_insert_with(|| {
            pending.push(Vec::new());
            pending.len() - 1
        });
        pending[idx].push((fields[1].to_owned(), start, end, p));
    }

    for rows in pending {
        let mut seq = builder.sequence();
        for (symbol, start, end, p) in rows {
            seq = seq.interval(&symbol, start, end, p);
        }
    }
    Ok(builder.build())
}

/// Serializes a certain database as long-format CSV (with header; sequence
/// keys are `s<index>`).
pub fn write_long_csv(db: &IntervalDatabase) -> String {
    let mut out = String::from("sequence,symbol,start,end\n");
    for (i, seq) in db.sequences().iter().enumerate() {
        for iv in seq {
            let _ = writeln!(
                out,
                "s{i},{},{},{}",
                db.symbols().name(iv.symbol),
                iv.start,
                iv.end
            );
        }
    }
    out
}

fn parse_times(start: &str, end: &str, line: usize) -> Result<(i64, i64)> {
    let start: i64 = start.parse().map_err(|_| IntervalError::Parse {
        line,
        message: format!("bad timestamp `{start}`"),
    })?;
    let end: i64 = end.parse().map_err(|_| IntervalError::Parse {
        line,
        message: format!("bad timestamp `{end}`"),
    })?;
    if start >= end {
        return Err(IntervalError::Parse {
            line,
            message: format!("degenerate interval [{start}, {end})"),
        });
    }
    Ok((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_and_without_header() {
        let with = "sequence,symbol,start,end\np1,fever,0,10\np1,rash,5,20\np2,fever,2,9\n";
        let without = "p1,fever,0,10\np1,rash,5,20\np2,fever,2,9\n";
        let a = read_long_csv(with).unwrap();
        let b = read_long_csv(without).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.sequences()[0].len(), 2);
    }

    #[test]
    fn sequence_order_is_first_appearance() {
        let text = "z,A,0,1\na,B,0,1\nz,A,2,3\n";
        let db = read_long_csv(text).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.sequences()[0].len(), 2); // "z" came first
        assert_eq!(db.sequences()[1].len(), 1);
    }

    #[test]
    fn round_trips_through_write() {
        let text = "s0,A,0,5\ns0,B,3,8\ns1,A,1,2\n";
        let db = read_long_csv(text).unwrap();
        let back = read_long_csv(&write_long_csv(&db)).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_long_csv("p1,A,0,10\np1,B,ten,20\n").unwrap_err();
        match err {
            IntervalError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(read_long_csv("p1,A,5,5\n").is_err());
        assert!(read_long_csv("p1,A,5\n").is_err());
    }

    #[test]
    fn uncertain_variant_reads_probabilities() {
        let text = "sequence,symbol,start,end,probability\np1,A,0,10,0.5\np1,B,5,20\n";
        let db = read_long_csv_uncertain(text).unwrap();
        let ivs = db.sequences()[0].intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].probability, 0.5);
        assert_eq!(ivs[1].probability, 1.0);
        assert!(read_long_csv_uncertain("p1,A,0,10,1.5\n").is_err());
        assert!(read_long_csv_uncertain("p1,A,0,10,zero\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# export 2026-07-04\n\np1,A,0,10\n";
        let db = read_long_csv(text).unwrap();
        assert_eq!(db.total_intervals(), 1);
    }

    #[test]
    fn header_after_leading_comments_is_skipped() {
        let text = "# exported\n\nsequence,symbol,start,end\np1,A,0,10\n";
        let db = read_long_csv(text).unwrap();
        assert_eq!(db.total_intervals(), 1);
        let text = "# exported\nsequence,symbol,start,end,probability\np1,A,0,10,0.5\n";
        let udb = read_long_csv_uncertain(text).unwrap();
        assert_eq!(udb.sequences()[0].intervals()[0].probability, 0.5);
    }
}
