//! Error types for the interval data model.

use std::fmt;

/// Errors produced while constructing or validating intervals, patterns and
/// databases.
#[derive(Debug, Clone, PartialEq)]
pub enum IntervalError {
    /// An event interval violated `start < end`.
    DegenerateInterval {
        /// The offending start time.
        start: i64,
        /// The offending end time.
        end: i64,
    },
    /// A pattern endpoint sequence was not well-formed (unmatched starts or
    /// finishes, finish before start, …).
    MalformedPattern(String),
    /// A probability was outside `(0, 1]`.
    InvalidProbability(f64),
    /// Parse error when reading a textual dataset or pattern.
    Parse {
        /// 1-based line number of the offending input line (0 when unknown).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure while reading or writing a dataset.
    Io(String),
    /// A stream of interval events violated its own protocol (e.g. a close
    /// without a matching open, or a close at or before its open time).
    InconsistentStream(String),
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::DegenerateInterval { start, end } => {
                write!(f, "degenerate interval: start {start} must be < end {end}")
            }
            IntervalError::MalformedPattern(msg) => write!(f, "malformed pattern: {msg}"),
            IntervalError::InvalidProbability(p) => {
                write!(f, "probability {p} outside the valid range (0, 1]")
            }
            IntervalError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            IntervalError::Io(msg) => write!(f, "i/o error: {msg}"),
            IntervalError::InconsistentStream(msg) => {
                write!(f, "inconsistent event stream: {msg}")
            }
        }
    }
}

impl std::error::Error for IntervalError {}

impl From<std::io::Error> for IntervalError {
    fn from(e: std::io::Error) -> Self {
        IntervalError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, IntervalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = IntervalError::DegenerateInterval { start: 5, end: 5 };
        assert!(e.to_string().contains("start 5"));
        let e = IntervalError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = IntervalError::Parse {
            line: 0,
            message: "bad token".into(),
        };
        assert!(!e.to_string().contains("line"));
        let e = IntervalError::InvalidProbability(1.5);
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: IntervalError = io.into();
        assert!(matches!(e, IntervalError::Io(_)));
    }
}
