//! The **endpoint representation** of interval sequences.
//!
//! This is the paper's key device: every event interval `(A, t⁻, t⁺)` is
//! split into a *start endpoint* `A+` at `t⁻` and a *finish endpoint* `A−` at
//! `t⁺`. Sorting all endpoints of a sequence by time — grouping endpoints
//! with equal timestamps into *endpoint sets* — yields a representation that
//! determines the full arrangement (all pairwise Allen relations)
//! unambiguously, is closed under prefixes, and therefore supports
//! PrefixSpan-style pattern growth with anti-monotone pruning.

use crate::interval::Time;
use crate::sequence::IntervalSequence;
use crate::symbols::SymbolId;
use serde::{Deserialize, Serialize};

/// Whether an endpoint opens or closes its interval.
///
/// `Finish` sorts before `Start`: within one endpoint set (one time point)
/// the canonical listing shows what ends before what begins, matching the
/// conventional reading of Allen's *meets*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EndpointKind {
    /// The end of an interval (`A−`).
    Finish,
    /// The beginning of an interval (`A+`).
    Start,
}

impl EndpointKind {
    /// `"+"` for starts, `"-"` for finishes.
    pub fn sigil(self) -> char {
        match self {
            EndpointKind::Start => '+',
            EndpointKind::Finish => '-',
        }
    }
}

/// One endpoint of one concrete interval instance within a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEndpoint {
    /// The timestamp of the endpoint.
    pub time: Time,
    /// Index of the endpoint set (time rank) this endpoint belongs to.
    pub group: u32,
    /// The symbol of the underlying interval.
    pub symbol: SymbolId,
    /// Start or finish.
    pub kind: EndpointKind,
    /// Index of the underlying interval instance within the sequence
    /// (position in the normalized [`IntervalSequence`]).
    pub instance: u32,
}

/// Metadata about one interval instance, as seen by the endpoint sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceInfo {
    /// The instance's symbol.
    pub symbol: SymbolId,
    /// Endpoint-set index of its start.
    pub start_group: u32,
    /// Endpoint-set index of its end (always `> start_group`).
    pub end_group: u32,
    /// Concrete start time.
    pub start: Time,
    /// Concrete end time.
    pub end: Time,
}

/// The endpoint representation of one interval sequence.
///
/// ```
/// use interval_core::{EndpointSeq, EventInterval, IntervalSequence, SymbolId};
///
/// let seq = IntervalSequence::from_intervals(vec![
///     EventInterval::new(SymbolId(0), 0, 5).unwrap(), // A
///     EventInterval::new(SymbolId(1), 5, 9).unwrap(), // B, meets A's end
/// ]);
/// let es = EndpointSeq::from_sequence(&seq);
/// assert_eq!(es.group_count(), 3); // {A+} {A− B+} {B−}
/// assert_eq!(es.group(1).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointSeq {
    /// Endpoints sorted by `(group, kind, symbol, instance)`.
    endpoints: Vec<DataEndpoint>,
    /// `group_offsets[g]..group_offsets[g+1]` indexes `endpoints` for set `g`.
    group_offsets: Vec<u32>,
    /// Per-instance metadata, indexed by instance id.
    instances: Vec<InstanceInfo>,
}

impl EndpointSeq {
    /// Transforms a normalized interval sequence into its endpoint
    /// representation.
    pub fn from_sequence(seq: &IntervalSequence) -> Self {
        let ivs = seq.intervals();
        let mut endpoints = Vec::with_capacity(ivs.len() * 2);
        for (idx, iv) in ivs.iter().enumerate() {
            let instance = idx as u32;
            endpoints.push(DataEndpoint {
                time: iv.start,
                group: 0,
                symbol: iv.symbol,
                kind: EndpointKind::Start,
                instance,
            });
            endpoints.push(DataEndpoint {
                time: iv.end,
                group: 0,
                symbol: iv.symbol,
                kind: EndpointKind::Finish,
                instance,
            });
        }
        endpoints.sort_unstable_by_key(|e| (e.time, e.kind, e.symbol, e.instance));

        // Assign group ids by distinct time and record offsets.
        let mut group_offsets = vec![0u32];
        let mut current_group = 0u32;
        for i in 0..endpoints.len() {
            if i > 0 && endpoints[i].time != endpoints[i - 1].time {
                current_group += 1;
                group_offsets.push(i as u32);
            }
            endpoints[i].group = current_group;
        }
        group_offsets.push(endpoints.len() as u32);
        if endpoints.is_empty() {
            group_offsets = vec![0];
        }

        let mut instances = vec![
            InstanceInfo {
                symbol: SymbolId(0),
                start_group: 0,
                end_group: 0,
                start: 0,
                end: 0,
            };
            ivs.len()
        ];
        for e in &endpoints {
            let info = &mut instances[e.instance as usize];
            info.symbol = e.symbol;
            match e.kind {
                EndpointKind::Start => {
                    info.start_group = e.group;
                    info.start = e.time;
                }
                EndpointKind::Finish => {
                    info.end_group = e.group;
                    info.end = e.time;
                }
            }
        }
        debug_assert!(instances.iter().all(|i| i.start_group < i.end_group));

        Self {
            endpoints,
            group_offsets,
            instances,
        }
    }

    /// All endpoints in canonical order.
    pub fn endpoints(&self) -> &[DataEndpoint] {
        &self.endpoints
    }

    /// Number of endpoint sets (distinct timestamps).
    pub fn group_count(&self) -> u32 {
        (self.group_offsets.len() - 1) as u32
    }

    /// The endpoints of set `g`.
    pub fn group(&self, g: u32) -> &[DataEndpoint] {
        let lo = self.group_offsets[g as usize] as usize;
        let hi = self.group_offsets[g as usize + 1] as usize;
        &self.endpoints[lo..hi]
    }

    /// Per-instance metadata.
    pub fn instances(&self) -> &[InstanceInfo] {
        &self.instances
    }

    /// Metadata for instance `id`.
    pub fn instance(&self, id: u32) -> &InstanceInfo {
        &self.instances[id as usize]
    }

    /// Number of interval instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Iterates `(group_index, endpoints_of_group)` pairs.
    pub fn groups(&self) -> impl Iterator<Item = (u32, &[DataEndpoint])> {
        (0..self.group_count()).map(move |g| (g, self.group(g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::EventInterval;

    fn seq(raw: &[(u32, Time, Time)]) -> IntervalSequence {
        raw.iter()
            .map(|&(s, a, b)| EventInterval::new(SymbolId(s), a, b).unwrap())
            .collect()
    }

    #[test]
    fn empty_sequence_has_no_groups() {
        let es = EndpointSeq::from_sequence(&IntervalSequence::new());
        assert_eq!(es.group_count(), 0);
        assert!(es.endpoints().is_empty());
        assert_eq!(es.instance_count(), 0);
    }

    #[test]
    fn single_interval_has_two_groups() {
        let es = EndpointSeq::from_sequence(&seq(&[(0, 3, 7)]));
        assert_eq!(es.group_count(), 2);
        assert_eq!(es.group(0)[0].kind, EndpointKind::Start);
        assert_eq!(es.group(1)[0].kind, EndpointKind::Finish);
        let info = es.instance(0);
        assert_eq!((info.start_group, info.end_group), (0, 1));
        assert_eq!((info.start, info.end), (3, 7));
    }

    #[test]
    fn meets_produces_shared_group_with_finish_first() {
        // A = [0,5), B = [5,9): one shared endpoint set at t=5.
        let es = EndpointSeq::from_sequence(&seq(&[(0, 0, 5), (1, 5, 9)]));
        assert_eq!(es.group_count(), 3);
        let shared = es.group(1);
        assert_eq!(shared.len(), 2);
        assert_eq!(shared[0].kind, EndpointKind::Finish); // A− listed first
        assert_eq!(shared[1].kind, EndpointKind::Start); // then B+
    }

    #[test]
    fn group_ids_are_time_ranks() {
        let es = EndpointSeq::from_sequence(&seq(&[(0, 0, 10), (1, 2, 10), (2, 2, 4)]));
        // distinct times: 0, 2, 4, 10 -> 4 groups
        assert_eq!(es.group_count(), 4);
        for e in es.endpoints() {
            let expected = match e.time {
                0 => 0,
                2 => 1,
                4 => 2,
                10 => 3,
                _ => unreachable!(),
            };
            assert_eq!(e.group, expected);
        }
        // both symbol-0 and symbol-1 end at the same (last) group
        let end_group_of = |sym: u32| {
            es.instances()
                .iter()
                .find(|i| i.symbol == SymbolId(sym))
                .unwrap()
                .end_group
        };
        assert_eq!(end_group_of(0), 3);
        assert_eq!(end_group_of(1), 3);
        assert_eq!(end_group_of(2), 2);
    }

    #[test]
    fn endpoint_count_is_twice_instance_count() {
        let es = EndpointSeq::from_sequence(&seq(&[(0, 0, 5), (0, 1, 2), (1, 3, 8)]));
        assert_eq!(es.endpoints().len(), 6);
        assert_eq!(es.instance_count(), 3);
    }

    #[test]
    fn start_groups_precede_end_groups() {
        let es = EndpointSeq::from_sequence(&seq(&[(0, 0, 1), (1, 0, 1), (2, 1, 2)]));
        for info in es.instances() {
            assert!(info.start_group < info.end_group);
        }
    }

    #[test]
    fn groups_iterator_covers_all_endpoints() {
        let es = EndpointSeq::from_sequence(&seq(&[(0, 0, 5), (1, 2, 3), (2, 2, 5)]));
        let total: usize = es.groups().map(|(_, g)| g.len()).sum();
        assert_eq!(total, es.endpoints().len());
    }

    #[test]
    fn repeated_symbol_instances_are_distinguished() {
        let es = EndpointSeq::from_sequence(&seq(&[(0, 0, 4), (0, 2, 6)]));
        assert_eq!(es.instance_count(), 2);
        assert_ne!(es.instance(0).start_group, es.instance(1).start_group);
        let starts: Vec<_> = es
            .endpoints()
            .iter()
            .filter(|e| e.kind == EndpointKind::Start)
            .map(|e| e.instance)
            .collect();
        assert_eq!(starts, vec![0, 1]);
    }
}
