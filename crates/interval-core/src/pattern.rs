//! Temporal (arrangement) patterns in the endpoint representation.
//!
//! A temporal pattern describes a *qualitative arrangement* of `k` event
//! intervals: which endpoints coincide and which strictly precede others.
//! It is stored as a sequence of *endpoint sets* ("groups"); each endpoint
//! names the pattern *slot* (interval occurrence) it belongs to, so repeated
//! symbols are unambiguous (e.g. two overlapping `A`s that cross vs. nest are
//! different patterns).
//!
//! Patterns are kept in a **canonical form** so that structural equality is
//! pattern equality:
//!
//! - slots are numbered by the order of their start endpoints (group index
//!   ascending; within a group by symbol, then by end group);
//! - within a group, finish endpoints come first (sorted by slot), then
//!   start endpoints (sorted by symbol, then slot).
//!
//! The canonical form also resolves the classic isomorphism trap: when two
//! same-symbol slots start in the same group, the lower-numbered slot always
//! finishes no later than the higher one.

use crate::allen::AllenRelation;
use crate::endpoint::EndpointKind;
use crate::error::{IntervalError, Result};
use crate::interval::EventInterval;
use crate::sequence::IntervalSequence;
use crate::symbols::{SymbolId, SymbolTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One endpoint of one pattern slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PatternEndpoint {
    /// Start or finish.
    pub kind: EndpointKind,
    /// The event symbol.
    pub symbol: SymbolId,
    /// The slot (interval occurrence within the pattern) this endpoint
    /// belongs to, in `0..arity`.
    pub slot: u8,
}

impl PatternEndpoint {
    /// Sort key realizing the canonical within-group order.
    fn group_rank(&self) -> (u8, SymbolId, u8) {
        match self.kind {
            EndpointKind::Finish => (0, SymbolId(0), self.slot),
            EndpointKind::Start => (1, self.symbol, self.slot),
        }
    }
}

/// Derived per-slot view of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotInfo {
    /// The slot's symbol.
    pub symbol: SymbolId,
    /// Group index of its start endpoint.
    pub start_group: u16,
    /// Group index of its finish endpoint (always `> start_group`).
    pub end_group: u16,
}

/// A temporal pattern: a canonical well-formed sequence of endpoint sets.
///
/// ```
/// use interval_core::{EventInterval, SymbolId, TemporalPattern};
///
/// // The arrangement of two concrete intervals: A overlaps B.
/// let a = EventInterval::new(SymbolId(0), 0, 5).unwrap();
/// let b = EventInterval::new(SymbolId(1), 3, 8).unwrap();
/// let p = TemporalPattern::arrangement_of(&[a, b]);
/// assert_eq!(p.arity(), 2);
/// assert_eq!(p.num_groups(), 4); // A+ | B+ | A- | B-
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemporalPattern {
    groups: Vec<Vec<PatternEndpoint>>,
    arity: u8,
}

impl TemporalPattern {
    /// The empty pattern (zero intervals). Contained in every sequence.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The 1-pattern consisting of a single `symbol` interval.
    pub fn singleton(symbol: SymbolId) -> Self {
        Self {
            groups: vec![
                vec![PatternEndpoint {
                    kind: EndpointKind::Start,
                    symbol,
                    slot: 0,
                }],
                vec![PatternEndpoint {
                    kind: EndpointKind::Finish,
                    symbol,
                    slot: 0,
                }],
            ],
            arity: 1,
        }
    }

    /// Builds a pattern from endpoint groups, validating well-formedness and
    /// bringing it to canonical form (slots may be renumbered).
    ///
    /// Requirements:
    /// - groups are non-empty;
    /// - slots form a contiguous range `0..arity`;
    /// - each slot has exactly one start and one finish, with a consistent
    ///   symbol, and the start group strictly precedes the finish group.
    pub fn from_groups(groups: Vec<Vec<PatternEndpoint>>) -> Result<Self> {
        if groups.iter().any(Vec::is_empty) {
            return Err(IntervalError::MalformedPattern("empty endpoint set".into()));
        }
        let mut max_slot: i32 = -1;
        for g in &groups {
            for e in g {
                max_slot = max_slot.max(e.slot as i32);
            }
        }
        let arity = (max_slot + 1) as usize;
        if arity > u8::MAX as usize {
            return Err(IntervalError::MalformedPattern(
                "pattern arity exceeds 255".into(),
            ));
        }
        if groups.len() > u16::MAX as usize {
            return Err(IntervalError::MalformedPattern(
                "pattern has more than 65535 endpoint sets".into(),
            ));
        }

        // Collect per-slot info, validating multiplicity and consistency.
        let mut starts: Vec<Option<(u16, SymbolId)>> = vec![None; arity];
        let mut ends: Vec<Option<(u16, SymbolId)>> = vec![None; arity];
        for (gi, g) in groups.iter().enumerate() {
            for e in g {
                let entry = match e.kind {
                    EndpointKind::Start => &mut starts[e.slot as usize],
                    EndpointKind::Finish => &mut ends[e.slot as usize],
                };
                if entry.is_some() {
                    return Err(IntervalError::MalformedPattern(format!(
                        "slot {} has a duplicate {:?} endpoint",
                        e.slot, e.kind
                    )));
                }
                *entry = Some((gi as u16, e.symbol));
            }
        }
        let mut slots = Vec::with_capacity(arity);
        for slot in 0..arity {
            let (sg, ssym) = starts[slot].ok_or_else(|| {
                IntervalError::MalformedPattern(format!("slot {slot} has no start endpoint"))
            })?;
            let (eg, esym) = ends[slot].ok_or_else(|| {
                IntervalError::MalformedPattern(format!("slot {slot} has no finish endpoint"))
            })?;
            if ssym != esym {
                return Err(IntervalError::MalformedPattern(format!(
                    "slot {slot} start symbol {ssym} differs from finish symbol {esym}"
                )));
            }
            if sg >= eg {
                return Err(IntervalError::MalformedPattern(format!(
                    "slot {slot} finish (set {eg}) does not strictly follow its start (set {sg})"
                )));
            }
            slots.push(SlotInfo {
                symbol: ssym,
                start_group: sg,
                end_group: eg,
            });
        }

        // Canonical slot renumbering.
        let mut order: Vec<u8> = (0..arity as u8).collect();
        order.sort_by_key(|&s| {
            let info = slots[s as usize];
            (info.start_group, info.symbol, info.end_group, s)
        });
        let mut remap = vec![0u8; arity];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u8;
        }

        let mut canonical: Vec<Vec<PatternEndpoint>> = groups
            .into_iter()
            .map(|g| {
                g.into_iter()
                    .map(|e| PatternEndpoint {
                        slot: remap[e.slot as usize],
                        ..e
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for g in &mut canonical {
            g.sort_unstable_by_key(PatternEndpoint::group_rank);
        }

        Ok(Self {
            groups: canonical,
            arity: arity as u8,
        })
    }

    /// The arrangement pattern of a set of concrete intervals: endpoints
    /// grouped by equal timestamps, everything else abstracted away.
    pub fn arrangement_of(intervals: &[EventInterval]) -> Self {
        if intervals.is_empty() {
            return Self::empty();
        }
        let mut times: Vec<i64> = intervals.iter().flat_map(|iv| [iv.start, iv.end]).collect();
        times.sort_unstable();
        times.dedup();
        // Every queried timestamp was just inserted into `times`, so the
        // search is infallible; clamp on the (unreachable) miss.
        let rank = |t: i64| {
            times.binary_search(&t).unwrap_or_else(|pos| {
                debug_assert!(false, "endpoint time {t} missing from rank table");
                pos.min(times.len() - 1)
            })
        };

        let mut groups: Vec<Vec<PatternEndpoint>> = vec![Vec::new(); times.len()];
        for (slot, iv) in intervals.iter().enumerate() {
            groups[rank(iv.start)].push(PatternEndpoint {
                kind: EndpointKind::Start,
                symbol: iv.symbol,
                slot: slot as u8,
            });
            groups[rank(iv.end)].push(PatternEndpoint {
                kind: EndpointKind::Finish,
                symbol: iv.symbol,
                slot: slot as u8,
            });
        }
        // xlint::allow(no-panic-lib): groups are built from valid intervals (start < end, every slot paired), so from_groups cannot reject them; failure is construction-invariant corruption
        Self::from_groups(groups).expect("arrangement of concrete intervals is well-formed")
    }

    /// Number of intervals in the pattern.
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Number of endpoint sets.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Whether the pattern is empty (zero intervals).
    pub fn is_empty(&self) -> bool {
        self.arity == 0
    }

    /// The endpoint sets in order.
    pub fn groups(&self) -> &[Vec<PatternEndpoint>] {
        &self.groups
    }

    /// Iterates over all endpoints with their group index.
    pub fn endpoints(&self) -> impl Iterator<Item = (u16, PatternEndpoint)> + '_ {
        self.groups
            .iter()
            .enumerate()
            .flat_map(|(gi, g)| g.iter().map(move |&e| (gi as u16, e)))
    }

    /// Derived slot views, indexed by slot.
    pub fn slot_infos(&self) -> Vec<SlotInfo> {
        let mut slots = vec![
            SlotInfo {
                symbol: SymbolId(0),
                start_group: 0,
                end_group: 0,
            };
            self.arity()
        ];
        for (gi, e) in self.endpoints() {
            let info = &mut slots[e.slot as usize];
            info.symbol = e.symbol;
            match e.kind {
                EndpointKind::Start => info.start_group = gi,
                EndpointKind::Finish => info.end_group = gi,
            }
        }
        slots
    }

    /// The distinct symbols used by the pattern, sorted.
    pub fn symbols(&self) -> Vec<SymbolId> {
        let mut syms: Vec<SymbolId> = self.slot_infos().iter().map(|s| s.symbol).collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// The Allen relation between two slots, `slot_a rel slot_b`.
    pub fn relation(&self, slot_a: usize, slot_b: usize) -> AllenRelation {
        let infos = self.slot_infos();
        let to_iv = |s: &SlotInfo| {
            EventInterval::new_unchecked(s.symbol, s.start_group as i64, s.end_group as i64)
        };
        AllenRelation::relate(&to_iv(&infos[slot_a]), &to_iv(&infos[slot_b]))
    }

    /// The full `arity × arity` Allen relation matrix (diagonal is `Equals`).
    pub fn relation_matrix(&self) -> Vec<Vec<AllenRelation>> {
        let infos = self.slot_infos();
        let ivs: Vec<EventInterval> = infos
            .iter()
            .map(|s| {
                EventInterval::new_unchecked(s.symbol, s.start_group as i64, s.end_group as i64)
            })
            .collect();
        ivs.iter()
            .map(|a| ivs.iter().map(|b| AllenRelation::relate(a, b)).collect())
            .collect()
    }

    /// A canonical concrete realization of the pattern: one interval per
    /// slot, with times equal to group indices. The realization's
    /// [`arrangement_of`](Self::arrangement_of) is the pattern itself.
    pub fn realization(&self) -> Vec<EventInterval> {
        self.slot_infos()
            .iter()
            .map(|s| {
                EventInterval::new_unchecked(s.symbol, s.start_group as i64, s.end_group as i64)
            })
            .collect()
    }

    /// The realization as an [`IntervalSequence`] (slot identity is lost but
    /// arrangement is preserved).
    pub fn realization_sequence(&self) -> IntervalSequence {
        IntervalSequence::from_intervals(self.realization())
    }

    /// Whether `self` is a (not necessarily proper) sub-pattern of `other`:
    /// every sequence containing `other` contains `self`.
    pub fn is_subpattern_of(&self, other: &TemporalPattern) -> bool {
        crate::matcher::contains(&other.realization_sequence(), self)
    }

    /// Renders the pattern with symbol names, e.g. `A+ B+ | A- | B-`.
    /// Slots of symbols that occur more than once carry a `#k` disambiguator.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> PatternDisplay<'a> {
        PatternDisplay {
            pattern: self,
            symbols: Some(symbols),
        }
    }

    /// Renders the pattern with raw symbol ids (`s0+ s1+ | s0- | s1-`).
    pub fn display_raw(&self) -> PatternDisplay<'_> {
        PatternDisplay {
            pattern: self,
            symbols: None,
        }
    }

    /// Renders the pattern as an ASCII timeline, one row per slot:
    ///
    /// ```text
    /// fever  |===========|
    /// rash       |===========|
    /// ```
    ///
    /// Columns are endpoint-set positions (qualitative time); equal columns
    /// mean simultaneous endpoints.
    pub fn ascii_timeline(&self, symbols: &SymbolTable) -> String {
        const CELL: usize = 4;
        let infos = self.slot_infos();
        if infos.is_empty() {
            return String::from("(empty pattern)\n");
        }
        let name_width = infos
            .iter()
            .map(|s| {
                symbols
                    .try_name(s.symbol)
                    .map_or_else(|| s.symbol.to_string().len(), str::len)
            })
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for info in &infos {
            let name = symbols
                .try_name(info.symbol)
                .map_or_else(|| info.symbol.to_string(), str::to_owned);
            let start_col = info.start_group as usize * CELL;
            let end_col = info.end_group as usize * CELL;
            out.push_str(&format!("{name:<name_width$}  "));
            out.push_str(&" ".repeat(start_col));
            out.push('|');
            out.push_str(&"=".repeat(end_col - start_col - 1));
            out.push('|');
            out.push('\n');
        }
        out
    }

    /// Parses the textual form produced by [`display`](Self::display),
    /// interning names into `symbols`.
    ///
    /// Groups are separated by `|`, endpoints by whitespace; an endpoint is
    /// `NAME('+'|'-')` with an optional `#k` naming the k-th occurrence of
    /// that symbol (by start order). Without `#`, a finish closes the oldest
    /// still-open occurrence of its symbol.
    pub fn parse(text: &str, symbols: &mut SymbolTable) -> Result<Self> {
        let mut groups: Vec<Vec<PatternEndpoint>> = Vec::new();
        // per symbol: start order -> global slot
        let mut occurrences: std::collections::HashMap<SymbolId, Vec<u8>> =
            std::collections::HashMap::new();
        let mut open: std::collections::HashMap<SymbolId, Vec<u8>> =
            std::collections::HashMap::new();
        let mut next_slot: u16 = 0;

        for group_text in text.split('|') {
            let mut group = Vec::new();
            for token in group_text.split_whitespace() {
                let (body, occ) = match token.split_once('#') {
                    Some((b, k)) => {
                        let k: usize = k.parse().map_err(|_| IntervalError::Parse {
                            line: 0,
                            message: format!("bad occurrence index in `{token}`"),
                        })?;
                        (b, Some(k))
                    }
                    None => (token, None),
                };
                let (name, kind) = if let Some(n) = body.strip_suffix('+') {
                    (n, EndpointKind::Start)
                } else if let Some(n) = body.strip_suffix('-') {
                    (n, EndpointKind::Finish)
                } else {
                    return Err(IntervalError::Parse {
                        line: 0,
                        message: format!("endpoint `{token}` must end with + or -"),
                    });
                };
                if name.is_empty() {
                    return Err(IntervalError::Parse {
                        line: 0,
                        message: format!("empty symbol name in `{token}`"),
                    });
                }
                let symbol = symbols.intern(name);
                let slot = match kind {
                    EndpointKind::Start => {
                        if next_slot > u8::MAX as u16 {
                            return Err(IntervalError::MalformedPattern(
                                "pattern arity exceeds 255".into(),
                            ));
                        }
                        let slot = next_slot as u8;
                        next_slot += 1;
                        let occs = occurrences.entry(symbol).or_default();
                        if let Some(k) = occ {
                            if k != occs.len() {
                                return Err(IntervalError::Parse {
                                    line: 0,
                                    message: format!(
                                        "start `{token}` has occurrence #{k} but is the #{} start of its symbol",
                                        occs.len()
                                    ),
                                });
                            }
                        }
                        occs.push(slot);
                        open.entry(symbol).or_default().push(slot);
                        slot
                    }
                    EndpointKind::Finish => {
                        let open_list = open.entry(symbol).or_default();
                        let slot = match occ {
                            Some(k) => {
                                let slot = occurrences.get(&symbol).and_then(|o| o.get(k)).copied();
                                let slot = slot.ok_or_else(|| IntervalError::Parse {
                                    line: 0,
                                    message: format!("finish `{token}` names unknown occurrence"),
                                })?;
                                let pos =
                                    open_list.iter().position(|&s| s == slot).ok_or_else(|| {
                                        IntervalError::Parse {
                                            line: 0,
                                            message: format!("finish `{token}` already closed"),
                                        }
                                    })?;
                                open_list.remove(pos);
                                slot
                            }
                            None => {
                                if open_list.is_empty() {
                                    return Err(IntervalError::Parse {
                                        line: 0,
                                        message: format!("finish `{token}` has no open start"),
                                    });
                                }
                                open_list.remove(0)
                            }
                        };
                        slot
                    }
                };
                group.push(PatternEndpoint { kind, symbol, slot });
            }
            if !group.is_empty() {
                groups.push(group);
            }
        }
        Self::from_groups(groups)
    }
}

/// Display adaptor returned by [`TemporalPattern::display`].
#[derive(Debug)]
pub struct PatternDisplay<'a> {
    pattern: &'a TemporalPattern,
    symbols: Option<&'a SymbolTable>,
}

impl fmt::Display for PatternDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Count symbol multiplicity to decide whether `#k` is needed.
        let infos = self.pattern.slot_infos();
        let mut multiplicity: std::collections::HashMap<SymbolId, usize> =
            std::collections::HashMap::new();
        for s in &infos {
            *multiplicity.entry(s.symbol).or_insert(0) += 1;
        }
        // occurrence index of each slot among its symbol, by slot order
        // (canonical slot order == start order).
        let mut seen: std::collections::HashMap<SymbolId, usize> = std::collections::HashMap::new();
        let mut occ_of_slot = vec![0usize; infos.len()];
        for (slot, s) in infos.iter().enumerate() {
            let c = seen.entry(s.symbol).or_insert(0);
            occ_of_slot[slot] = *c;
            *c += 1;
        }

        let mut first_group = true;
        for g in self.pattern.groups() {
            if !first_group {
                f.write_str(" | ")?;
            }
            first_group = false;
            let mut first = true;
            for e in g {
                if !first {
                    f.write_str(" ")?;
                }
                first = false;
                match self.symbols {
                    Some(t) => match t.try_name(e.symbol) {
                        Some(name) => write!(f, "{name}{}", e.kind.sigil())?,
                        None => write!(f, "{}{}", e.symbol, e.kind.sigil())?,
                    },
                    None => write!(f, "{}{}", e.symbol, e.kind.sigil())?,
                }
                if multiplicity[&e.symbol] > 1 {
                    write!(f, "#{}", occ_of_slot[e.slot as usize])?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(sym: u32, start: i64, end: i64) -> EventInterval {
        EventInterval::new(SymbolId(sym), start, end).unwrap()
    }

    #[test]
    fn singleton_shape() {
        let p = TemporalPattern::singleton(SymbolId(3));
        assert_eq!(p.arity(), 1);
        assert_eq!(p.num_groups(), 2);
        assert_eq!(p.slot_infos()[0].symbol, SymbolId(3));
    }

    #[test]
    fn arrangement_overlap() {
        let p = TemporalPattern::arrangement_of(&[iv(0, 0, 5), iv(1, 3, 8)]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.num_groups(), 4);
        assert_eq!(p.relation(0, 1), AllenRelation::Overlaps);
    }

    #[test]
    fn arrangement_meets_shares_group() {
        let p = TemporalPattern::arrangement_of(&[iv(0, 0, 5), iv(1, 5, 8)]);
        assert_eq!(p.num_groups(), 3);
        assert_eq!(p.relation(0, 1), AllenRelation::Meets);
        // shared group lists the finish first
        let shared = &p.groups()[1];
        assert_eq!(shared[0].kind, EndpointKind::Finish);
        assert_eq!(shared[1].kind, EndpointKind::Start);
    }

    #[test]
    fn arrangement_is_invariant_under_time_warping() {
        let p1 = TemporalPattern::arrangement_of(&[iv(0, 0, 5), iv(1, 3, 8)]);
        let p2 = TemporalPattern::arrangement_of(&[iv(0, 100, 500), iv(1, 300, 80000)]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn arrangement_is_invariant_under_interval_order() {
        let p1 = TemporalPattern::arrangement_of(&[iv(0, 0, 5), iv(1, 3, 8)]);
        let p2 = TemporalPattern::arrangement_of(&[iv(1, 3, 8), iv(0, 0, 5)]);
        assert_eq!(p1, p2, "canonical slot renumbering must kick in");
    }

    #[test]
    fn crossing_and_nesting_same_symbol_are_distinct() {
        // Crossing: A starts, A starts, first ends, second ends.
        let crossing = TemporalPattern::arrangement_of(&[iv(0, 0, 2), iv(0, 1, 3)]);
        // Nesting: A starts, A starts, second ends, first ends.
        let nesting = TemporalPattern::arrangement_of(&[iv(0, 0, 3), iv(0, 1, 2)]);
        assert_ne!(crossing, nesting);
        assert_eq!(crossing.relation(0, 1), AllenRelation::Overlaps);
        assert_eq!(nesting.relation(0, 1), AllenRelation::Contains);
    }

    #[test]
    fn same_group_same_symbol_starts_are_canonicalized() {
        // Two A's starting together, ending apart: only one canonical form.
        let p1 = TemporalPattern::arrangement_of(&[iv(0, 0, 2), iv(0, 0, 5)]);
        let p2 = TemporalPattern::arrangement_of(&[iv(0, 0, 5), iv(0, 0, 2)]);
        assert_eq!(p1, p2);
        // Lower slot finishes first.
        let infos = p1.slot_infos();
        assert!(infos[0].end_group < infos[1].end_group);
    }

    #[test]
    fn from_groups_rejects_malformed() {
        let start = |sym: u32, slot: u8| PatternEndpoint {
            kind: EndpointKind::Start,
            symbol: SymbolId(sym),
            slot,
        };
        let finish = |sym: u32, slot: u8| PatternEndpoint {
            kind: EndpointKind::Finish,
            symbol: SymbolId(sym),
            slot,
        };
        // unmatched start
        assert!(TemporalPattern::from_groups(vec![vec![start(0, 0)]]).is_err());
        // finish before start
        assert!(TemporalPattern::from_groups(vec![vec![finish(0, 0)], vec![start(0, 0)]]).is_err());
        // start and finish in the same group
        assert!(TemporalPattern::from_groups(vec![vec![start(0, 0), finish(0, 0)]]).is_err());
        // symbol mismatch
        assert!(TemporalPattern::from_groups(vec![vec![start(0, 0)], vec![finish(1, 0)]]).is_err());
        // duplicate start
        assert!(TemporalPattern::from_groups(vec![
            vec![start(0, 0)],
            vec![start(0, 0)],
            vec![finish(0, 0)]
        ])
        .is_err());
        // empty group
        assert!(
            TemporalPattern::from_groups(vec![vec![start(0, 0)], vec![], vec![finish(0, 0)]])
                .is_err()
        );
        // gap in slot numbering (slot 1 missing its endpoints entirely)
        assert!(TemporalPattern::from_groups(vec![
            vec![start(0, 0)],
            vec![finish(0, 0), start(0, 2)],
            vec![finish(0, 2)]
        ])
        .is_err());
    }

    #[test]
    fn realization_round_trips() {
        let samples = vec![
            vec![iv(0, 0, 5)],
            vec![iv(0, 0, 5), iv(1, 3, 8)],
            vec![iv(0, 0, 5), iv(1, 5, 8), iv(2, 2, 3)],
            vec![iv(0, 0, 4), iv(0, 2, 6), iv(1, 2, 4)],
            vec![iv(3, 0, 1), iv(2, 0, 1), iv(1, 0, 1)],
        ];
        for s in samples {
            let p = TemporalPattern::arrangement_of(&s);
            let q = TemporalPattern::arrangement_of(&p.realization());
            assert_eq!(p, q, "realization must reproduce the pattern");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index symmetry (i, j) vs (j, i)
    fn relation_matrix_is_consistent() {
        let p = TemporalPattern::arrangement_of(&[iv(0, 0, 10), iv(1, 2, 5), iv(2, 5, 12)]);
        let m = p.relation_matrix();
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m[i][i], AllenRelation::Equals);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i].inverse());
            }
        }
        assert_eq!(m[1][0], AllenRelation::During);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let mut table = SymbolTable::new();
        let a = table.intern("A");
        let b = table.intern("B");
        let p = TemporalPattern::arrangement_of(&[
            EventInterval::new(a, 0, 5).unwrap(),
            EventInterval::new(b, 3, 8).unwrap(),
        ]);
        let text = p.display(&table).to_string();
        assert_eq!(text, "A+ | B+ | A- | B-");
        let parsed = TemporalPattern::parse(&text, &mut table).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn display_disambiguates_repeated_symbols() {
        let mut table = SymbolTable::new();
        let a = table.intern("A");
        let p = TemporalPattern::arrangement_of(&[
            EventInterval::new(a, 0, 2).unwrap(),
            EventInterval::new(a, 1, 3).unwrap(),
        ]);
        let text = p.display(&table).to_string();
        assert_eq!(text, "A+#0 | A+#1 | A-#0 | A-#1");
        let parsed = TemporalPattern::parse(&text, &mut table).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn parse_crossing_vs_nesting() {
        let mut t = SymbolTable::new();
        let crossing = TemporalPattern::parse("A+#0 | A+#1 | A-#0 | A-#1", &mut t).unwrap();
        let nesting = TemporalPattern::parse("A+#0 | A+#1 | A-#1 | A-#0", &mut t).unwrap();
        assert_ne!(crossing, nesting);
    }

    #[test]
    fn parse_rejects_garbage() {
        let mut t = SymbolTable::new();
        assert!(TemporalPattern::parse("A* | A-", &mut t).is_err());
        assert!(TemporalPattern::parse("A-", &mut t).is_err());
        assert!(TemporalPattern::parse("A+ | B-", &mut t).is_err());
        assert!(TemporalPattern::parse("+", &mut t).is_err());
        assert!(TemporalPattern::parse("A+#x | A-", &mut t).is_err());
        assert!(TemporalPattern::parse("A+#1 | A-", &mut t).is_err());
        assert!(TemporalPattern::parse("A+ | A-#3", &mut t).is_err());
    }

    #[test]
    fn subpattern_relation() {
        let p_ab = TemporalPattern::arrangement_of(&[iv(0, 0, 5), iv(1, 3, 8)]);
        let p_a = TemporalPattern::singleton(SymbolId(0));
        let p_b = TemporalPattern::singleton(SymbolId(1));
        let p_c = TemporalPattern::singleton(SymbolId(2));
        assert!(p_a.is_subpattern_of(&p_ab));
        assert!(p_b.is_subpattern_of(&p_ab));
        assert!(!p_c.is_subpattern_of(&p_ab));
        assert!(!p_ab.is_subpattern_of(&p_a));
        assert!(p_ab.is_subpattern_of(&p_ab));
        assert!(TemporalPattern::empty().is_subpattern_of(&p_a));
    }

    #[test]
    fn symbols_are_sorted_and_deduped() {
        let p = TemporalPattern::arrangement_of(&[iv(2, 0, 5), iv(0, 3, 8), iv(2, 9, 12)]);
        assert_eq!(p.symbols(), vec![SymbolId(0), SymbolId(2)]);
    }

    #[test]
    fn ascii_timeline_aligns_groups() {
        let mut table = SymbolTable::new();
        let fever = table.intern("fever");
        let rash = table.intern("rash");
        let p = TemporalPattern::arrangement_of(&[
            EventInterval::new(fever, 0, 5).unwrap(),
            EventInterval::new(rash, 3, 8).unwrap(),
        ]);
        let art = p.ascii_timeline(&table);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("fever"));
        assert!(lines[1].starts_with("rash"));
        // fever: groups 0..2, rash: groups 1..3 — rash starts one cell later
        let fever_bar = lines[0].find('|').unwrap();
        let rash_bar = lines[1].find('|').unwrap();
        assert_eq!(rash_bar - fever_bar, 4, "{art}");
        // equal-length bars (both span two endpoint sets)
        assert_eq!(lines[0].matches('=').count(), lines[1].matches('=').count());
    }

    #[test]
    fn ascii_timeline_shows_simultaneity() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let b = table.intern("b");
        let p = TemporalPattern::arrangement_of(&[
            EventInterval::new(a, 0, 10).unwrap(),
            EventInterval::new(b, 0, 10).unwrap(),
        ]);
        let art = p.ascii_timeline(&table);
        let lines: Vec<&str> = art.lines().collect();
        // equal intervals: bars start at the same column
        assert_eq!(lines[0].find('|'), lines[1].find('|'));
        assert_eq!(
            TemporalPattern::empty().ascii_timeline(&table),
            "(empty pattern)\n"
        );
    }

    #[test]
    fn empty_pattern_properties() {
        let p = TemporalPattern::empty();
        assert!(p.is_empty());
        assert_eq!(p.arity(), 0);
        assert_eq!(p.num_groups(), 0);
        assert!(p.realization().is_empty());
    }
}
