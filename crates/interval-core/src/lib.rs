//! Core data model for interval-based temporal pattern mining.
//!
//! This crate is the substrate shared by every miner in the workspace. It
//! defines:
//!
//! - [`EventInterval`] / [`IntervalSequence`] / [`IntervalDatabase`] — the
//!   interval data model, plus the uncertain variants
//!   ([`UncertainInterval`], [`UncertainSequence`], [`UncertainDatabase`])
//!   where intervals carry existence probabilities;
//! - [`AllenRelation`] — Allen's 13 qualitative interval relations;
//! - [`EndpointSeq`] — the paper's *endpoint representation* of a sequence;
//! - [`StreamEvent`] — the event/watermark model for streaming ingestion
//!   (consumed by the `stream` crate's sliding-window database);
//! - [`TemporalPattern`] — canonical arrangement patterns in the endpoint
//!   representation;
//! - [`matcher`] — a ground-truth backtracking containment matcher used as
//!   the oracle in tests and the naive baseline;
//! - [`probability`] — containment probabilities and expected support over
//!   uncertain sequences.
//!
//! # Example
//!
//! ```
//! use interval_core::{matcher, DatabaseBuilder, TemporalPattern};
//!
//! let mut b = DatabaseBuilder::new();
//! b.sequence().interval("fever", 0, 10).interval("rash", 5, 20);
//! b.sequence().interval("fever", 2, 9).interval("rash", 11, 15);
//! let db = b.build();
//!
//! let mut table = db.symbols().clone();
//! let overlap = TemporalPattern::parse("fever+ | rash+ | fever- | rash-", &mut table).unwrap();
//! assert_eq!(matcher::support(&db, &overlap), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allen;
pub mod budget;
pub mod composition;
pub mod database;
pub mod endpoint;
pub mod error;
pub mod event;
pub mod interval;
pub mod matcher;
pub mod pattern;
pub mod probability;
pub mod sequence;
pub mod symbols;
pub mod wire;

pub use allen::AllenRelation;
pub use budget::{BudgetMeter, CancellationToken, MiningBudget, Termination};
pub use composition::{compose, is_path_consistent, RelationSet};
pub use database::{
    DatabaseBuilder, IntervalDatabase, SequenceBuilder, UncertainDatabase,
    UncertainDatabaseBuilder, UncertainSequenceBuilder,
};
pub use endpoint::{DataEndpoint, EndpointKind, EndpointSeq, InstanceInfo};
pub use error::{IntervalError, Result};
pub use event::{SequenceId, StreamEvent};
pub use interval::{EventInterval, Time, UncertainInterval};
pub use matcher::MatchConstraints;
pub use pattern::{PatternEndpoint, SlotInfo, TemporalPattern};
pub use probability::ProbabilityConfig;
pub use sequence::{IntervalSequence, UncertainSequence};
pub use symbols::{SymbolId, SymbolTable};
pub use wire::{CreateSpec, Request, SupportSpec, WireError};
