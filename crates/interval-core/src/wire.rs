//! Wire protocol for the pattern-mining service tier.
//!
//! The server (`crates/server`) speaks a line-delimited text protocol: one
//! request per line, commands case-insensitive, stream names case-sensitive.
//! This module owns the *request* grammar — frame types, parse errors with
//! did-you-mean suggestions, stream-name validation and the shared
//! edit-distance machinery the CLI reuses for its own suggestions. Response
//! framing lives server-side: requests must parse identically in the server,
//! the `client` helper and the protocol unit tests, so they are core.
//!
//! # Grammar
//!
//! ```text
//! CREATE <stream> WINDOW <w> (SUPPORT <fraction> | ABS-SUPPORT <n>)
//!        [REFRESH-EVERY <n>] [MAX-ARITY <k>] [MAX-GAP <g>] [WAL]
//! EVENT  <stream> <event line>        # StreamEvent text format
//! BATCH  <stream> <count>             # <count> event lines follow
//! QUERY  <stream> [PREFIX <symbol>] [TOP <k>]
//! HISTORY <stream> FROM <t1> TO <t2>  # re-mine a sealed time range
//!        [SUPPORT <fraction> | ABS-SUPPORT <n>] [TOP <k>]
//! SYNC   <stream>                     # block until a fresh refresh lands
//! SUBSCRIBE   <stream>                # push revision lines until UNSUBSCRIBE
//! UNSUBSCRIBE [<stream>]              # stop the connection's subscription
//! STATS  [<stream>]
//! DROP   <stream>
//! HEALTH | PING | SHUTDOWN | QUIT
//! ```
//!
//! Blank lines and `#` comments carry no request and parse to `Ok(None)`.

use std::fmt;

use crate::error::IntervalError;
use crate::event::StreamEvent;
use crate::interval::Time;

/// Longest request line (in bytes) a conforming server accepts. Bounds the
/// per-connection read buffer; longer lines are rejected (and drained)
/// without allocating them.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Largest `BATCH` count a conforming server accepts, so a malicious header
/// cannot pin a connection reading events forever.
pub const MAX_BATCH_EVENTS: usize = 65_536;

/// Longest stream name in bytes.
pub const MAX_STREAM_NAME: usize = 64;

/// Every protocol verb, for did-you-mean suggestions and docs.
pub const VERBS: &[&str] = &[
    "CREATE",
    "EVENT",
    "BATCH",
    "QUERY",
    "HISTORY",
    "SYNC",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "STATS",
    "DROP",
    "HEALTH",
    "PING",
    "SHUTDOWN",
    "QUIT",
];

/// Keyword parameters accepted inside `CREATE`.
const CREATE_KEYWORDS: &[&str] = &[
    "WINDOW",
    "SUPPORT",
    "ABS-SUPPORT",
    "REFRESH-EVERY",
    "MAX-ARITY",
    "MAX-GAP",
    "WAL",
];

/// Keyword parameters accepted inside `QUERY`.
const QUERY_KEYWORDS: &[&str] = &["PREFIX", "TOP"];

/// Keyword parameters accepted inside `HISTORY`.
const HISTORY_KEYWORDS: &[&str] = &["FROM", "TO", "SUPPORT", "ABS-SUPPORT", "TOP"];

/// A minimum-support threshold as specified on the wire or the CLI: either
/// an absolute sequence count or a fraction of the live window resolved per
/// refresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SupportSpec {
    /// Fraction of the sequences currently in the window, `0 < f <= 1`.
    Fraction(f64),
    /// Absolute number of supporting sequences, `>= 1`.
    Absolute(usize),
}

impl SupportSpec {
    /// Resolves the threshold against the number of sequences currently in
    /// the window. Fractions round up (a pattern must appear in *at least*
    /// the fraction) and never resolve below 1.
    pub fn absolute_for(&self, sequences: usize) -> usize {
        match *self {
            SupportSpec::Absolute(n) => n.max(1),
            SupportSpec::Fraction(f) => (((sequences as f64) * f).ceil() as usize).max(1),
        }
    }
}

impl fmt::Display for SupportSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupportSpec::Fraction(v) => write!(f, "SUPPORT {v}"),
            SupportSpec::Absolute(n) => write!(f, "ABS-SUPPORT {n}"),
        }
    }
}

/// Everything a `CREATE` frame specifies about a new stream session.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateSpec {
    /// Sliding-window length in event-time units.
    pub window: Time,
    /// Minimum support threshold.
    pub support: SupportSpec,
    /// Refresh the miner after this many accepted events (default 1024).
    pub refresh_every: u64,
    /// Optional cap on pattern arity.
    pub max_arity: Option<usize>,
    /// Optional cap on the gap between pattern elements.
    pub max_gap: Option<Time>,
    /// Whether the stream journals to a per-stream WAL directory.
    pub durable: bool,
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create (or recover) a named stream session.
    Create {
        /// Stream name (validated by [`validate_stream_name`]).
        stream: String,
        /// Session parameters.
        spec: CreateSpec,
    },
    /// Ingest a single event into a stream.
    Event {
        /// Target stream.
        stream: String,
        /// The event.
        event: StreamEvent,
    },
    /// Announce `count` event lines that follow this frame.
    Batch {
        /// Target stream.
        stream: String,
        /// Number of event lines that follow.
        count: usize,
    },
    /// Read frequent patterns from the latest published snapshot.
    Query {
        /// Target stream.
        stream: String,
        /// Only patterns rooted at this symbol.
        prefix: Option<String>,
        /// At most this many patterns, by descending support.
        top: Option<usize>,
    },
    /// Re-mine a sealed historical time range out of the stream's cold
    /// segment store (served without touching the live ingest path).
    History {
        /// Target stream (its segment directory; the live session need
        /// not exist).
        stream: String,
        /// Start of the historical range (inclusive).
        from: Time,
        /// End of the historical range (inclusive).
        to: Time,
        /// Minimum-support threshold, resolved against the sequences in
        /// the loaded range. Defaults to every pattern (support 1).
        support: Option<SupportSpec>,
        /// At most this many patterns, by descending support.
        top: Option<usize>,
    },
    /// Block until a refresh covering everything ingested so far publishes.
    Sync {
        /// Target stream.
        stream: String,
    },
    /// Start pushing this stream's published revisions to the connection
    /// (one `REV` line per snapshot) until `UNSUBSCRIBE` or disconnect.
    Subscribe {
        /// Target stream.
        stream: String,
    },
    /// Stop the connection's active subscription. The stream name is
    /// optional; when given it must match the active subscription.
    Unsubscribe {
        /// Restrict to one stream when given.
        stream: Option<String>,
    },
    /// Pipeline/server statistics for one stream or all of them.
    Stats {
        /// Restrict to one stream when given.
        stream: Option<String>,
    },
    /// Tear down a stream session (drains its worker first).
    Drop {
        /// Target stream.
        stream: String,
    },
    /// Liveness probe.
    Health,
    /// No-op round trip.
    Ping,
    /// Graceful whole-server drain.
    Shutdown,
    /// Close this connection only.
    Quit,
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The line exceeded [`MAX_LINE_BYTES`].
    Oversize {
        /// The configured limit the line exceeded.
        limit: usize,
    },
    /// Unrecognized verb, with a did-you-mean when one is close.
    UnknownCommand {
        /// What the client sent.
        got: String,
        /// The closest known verb, if plausibly a typo.
        suggestion: Option<&'static str>,
    },
    /// Stream name failed [`validate_stream_name`].
    BadStreamName {
        /// The offending name.
        name: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Structurally invalid frame for a known verb.
    Malformed {
        /// The verb whose grammar was violated.
        command: &'static str,
        /// Human-readable detail.
        message: String,
    },
    /// The embedded `EVENT` payload failed the event parser.
    Event(IntervalError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversize { limit } => {
                write!(f, "line exceeds the {limit}-byte limit")
            }
            WireError::UnknownCommand { got, suggestion } => {
                write!(f, "unknown command {got:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s}?)")?;
                }
                Ok(())
            }
            WireError::BadStreamName { name, reason } => {
                write!(f, "invalid stream name {name:?}: {reason}")
            }
            WireError::Malformed { command, message } => {
                write!(f, "malformed {command}: {message}")
            }
            WireError::Event(e) => write!(f, "invalid event: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Validates a stream name: 1..=[`MAX_STREAM_NAME`] bytes of
/// `[A-Za-z0-9._-]`, starting with an alphanumeric. The charset doubles as
/// path-traversal protection — a valid name can never escape the WAL root
/// it becomes a directory under.
pub fn validate_stream_name(name: &str) -> Result<(), WireError> {
    let bad = |reason: &'static str| WireError::BadStreamName {
        name: name.to_owned(),
        reason,
    };
    if name.is_empty() {
        return Err(bad("must not be empty"));
    }
    if name.len() > MAX_STREAM_NAME {
        return Err(bad("longer than 64 bytes"));
    }
    let mut chars = name.chars();
    let first = chars.next().unwrap_or('-');
    if !first.is_ascii_alphanumeric() {
        return Err(bad("must start with an ASCII letter or digit"));
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')) {
        return Err(bad("allowed characters are [A-Za-z0-9._-]"));
    }
    Ok(())
}

impl Request {
    /// Parses one request line. Blank lines and `#` comments carry no
    /// request and return `Ok(None)`. Verbs and keywords are matched
    /// case-insensitively; stream names and symbols are case-sensitive.
    pub fn parse_line(line: &str) -> Result<Option<Request>, WireError> {
        if line.len() > MAX_LINE_BYTES {
            return Err(WireError::Oversize {
                limit: MAX_LINE_BYTES,
            });
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(None);
        }
        let (verb_raw, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim_start()),
            None => (trimmed, ""),
        };
        let verb = verb_raw.to_ascii_uppercase();
        let request = match verb.as_str() {
            "CREATE" => parse_create(rest)?,
            "EVENT" => parse_event(rest)?,
            "BATCH" => parse_batch(rest)?,
            "QUERY" => parse_query(rest)?,
            "HISTORY" => parse_history(rest)?,
            "SYNC" => Request::Sync {
                stream: one_stream("SYNC", rest)?,
            },
            "SUBSCRIBE" => Request::Subscribe {
                stream: one_stream("SUBSCRIBE", rest)?,
            },
            "UNSUBSCRIBE" => Request::Unsubscribe {
                stream: optional_stream("UNSUBSCRIBE", rest)?,
            },
            "STATS" => Request::Stats {
                stream: optional_stream("STATS", rest)?,
            },
            "DROP" => Request::Drop {
                stream: one_stream("DROP", rest)?,
            },
            "HEALTH" => bare("HEALTH", rest, Request::Health)?,
            "PING" => bare("PING", rest, Request::Ping)?,
            "SHUTDOWN" => bare("SHUTDOWN", rest, Request::Shutdown)?,
            "QUIT" => bare("QUIT", rest, Request::Quit)?,
            _ => {
                return Err(WireError::UnknownCommand {
                    got: verb_raw.to_owned(),
                    suggestion: closest(&verb, VERBS),
                })
            }
        };
        Ok(Some(request))
    }
}

fn malformed(command: &'static str, message: impl Into<String>) -> WireError {
    WireError::Malformed {
        command,
        message: message.into(),
    }
}

fn bare(command: &'static str, rest: &str, request: Request) -> Result<Request, WireError> {
    if rest.is_empty() {
        Ok(request)
    } else {
        Err(malformed(
            command,
            format!("takes no arguments, got {rest:?}"),
        ))
    }
}

fn stream_name(command: &'static str, field: Option<&str>) -> Result<String, WireError> {
    let name = field.ok_or_else(|| malformed(command, "missing stream name"))?;
    validate_stream_name(name)?;
    Ok(name.to_owned())
}

fn one_stream(command: &'static str, rest: &str) -> Result<String, WireError> {
    let mut fields = rest.split_whitespace();
    let name = stream_name(command, fields.next())?;
    if let Some(extra) = fields.next() {
        return Err(malformed(command, format!("unexpected argument {extra:?}")));
    }
    Ok(name)
}

fn optional_stream(command: &'static str, rest: &str) -> Result<Option<String>, WireError> {
    let mut fields = rest.split_whitespace();
    let name = match fields.next() {
        None => return Ok(None),
        Some(f) => stream_name(command, Some(f))?,
    };
    if let Some(extra) = fields.next() {
        return Err(malformed(command, format!("unexpected argument {extra:?}")));
    }
    Ok(Some(name))
}

fn parse_num<T: std::str::FromStr>(
    command: &'static str,
    what: &str,
    field: &str,
) -> Result<T, WireError> {
    field
        .parse()
        .map_err(|_| malformed(command, format!("invalid {what} {field:?}")))
}

fn keyword_typo(command: &'static str, got: &str, known: &[&str]) -> WireError {
    let mut message = format!("unknown keyword {got:?}");
    if let Some(s) = closest(&got.to_ascii_uppercase(), known) {
        message.push_str(&format!(" (did you mean {s}?)"));
    }
    malformed(command, message)
}

fn parse_create(rest: &str) -> Result<Request, WireError> {
    const CMD: &str = "CREATE";
    let mut fields = rest.split_whitespace();
    let stream = stream_name(CMD, fields.next())?;
    let mut window: Option<Time> = None;
    let mut support: Option<SupportSpec> = None;
    let mut refresh_every: u64 = 1024;
    let mut max_arity: Option<usize> = None;
    let mut max_gap: Option<Time> = None;
    let mut durable = false;
    while let Some(raw) = fields.next() {
        let keyword = raw.to_ascii_uppercase();
        let mut value = |what: &str| -> Result<String, WireError> {
            fields
                .next()
                .map(str::to_owned)
                .ok_or_else(|| malformed(CMD, format!("{keyword} needs a {what}")))
        };
        match keyword.as_str() {
            "WINDOW" => {
                let w: Time = parse_num(CMD, "window length", &value("length")?)?;
                if w <= 0 {
                    return Err(malformed(CMD, "WINDOW must be positive"));
                }
                window = Some(w);
            }
            "SUPPORT" => {
                let f: f64 = parse_num(CMD, "support fraction", &value("fraction")?)?;
                if !(f > 0.0 && f <= 1.0) {
                    return Err(malformed(CMD, "SUPPORT must be in (0, 1]"));
                }
                support = Some(SupportSpec::Fraction(f));
            }
            "ABS-SUPPORT" => {
                let n: usize = parse_num(CMD, "support count", &value("count")?)?;
                if n == 0 {
                    return Err(malformed(CMD, "ABS-SUPPORT must be at least 1"));
                }
                support = Some(SupportSpec::Absolute(n));
            }
            "REFRESH-EVERY" => {
                let n: u64 = parse_num(CMD, "refresh interval", &value("count")?)?;
                if n == 0 {
                    return Err(malformed(CMD, "REFRESH-EVERY must be at least 1"));
                }
                refresh_every = n;
            }
            "MAX-ARITY" => {
                max_arity = Some(parse_num(CMD, "arity", &value("arity")?)?);
            }
            "MAX-GAP" => {
                max_gap = Some(parse_num(CMD, "gap", &value("gap")?)?);
            }
            "WAL" => durable = true,
            _ => return Err(keyword_typo(CMD, raw, CREATE_KEYWORDS)),
        }
    }
    let window = window.ok_or_else(|| malformed(CMD, "missing WINDOW"))?;
    let support = support.ok_or_else(|| malformed(CMD, "missing SUPPORT or ABS-SUPPORT"))?;
    Ok(Request::Create {
        stream,
        spec: CreateSpec {
            window,
            support,
            refresh_every,
            max_arity,
            max_gap,
            durable,
        },
    })
}

fn parse_event(rest: &str) -> Result<Request, WireError> {
    const CMD: &str = "EVENT";
    let (name, payload) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| malformed(CMD, "expected EVENT <stream> <event line>"))?;
    validate_stream_name(name)?;
    let event = StreamEvent::parse_line(payload, 0)
        .map_err(WireError::Event)?
        .ok_or_else(|| malformed(CMD, "event payload is empty"))?;
    Ok(Request::Event {
        stream: name.to_owned(),
        event,
    })
}

fn parse_batch(rest: &str) -> Result<Request, WireError> {
    const CMD: &str = "BATCH";
    let mut fields = rest.split_whitespace();
    let stream = stream_name(CMD, fields.next())?;
    let count_field = fields
        .next()
        .ok_or_else(|| malformed(CMD, "missing event count"))?;
    let count: usize = parse_num(CMD, "event count", count_field)?;
    if count == 0 || count > MAX_BATCH_EVENTS {
        return Err(malformed(
            CMD,
            format!("count must be in 1..={MAX_BATCH_EVENTS}"),
        ));
    }
    if let Some(extra) = fields.next() {
        return Err(malformed(CMD, format!("unexpected argument {extra:?}")));
    }
    Ok(Request::Batch { stream, count })
}

fn parse_query(rest: &str) -> Result<Request, WireError> {
    const CMD: &str = "QUERY";
    let mut fields = fields_of(rest);
    let stream = stream_name(CMD, fields.next())?;
    let mut prefix = None;
    let mut top = None;
    while let Some(raw) = fields.next() {
        match raw.to_ascii_uppercase().as_str() {
            "PREFIX" => {
                let symbol = fields
                    .next()
                    .ok_or_else(|| malformed(CMD, "PREFIX needs a symbol"))?;
                prefix = Some(symbol.to_owned());
            }
            "TOP" => {
                let field = fields
                    .next()
                    .ok_or_else(|| malformed(CMD, "TOP needs a count"))?;
                let k: usize = parse_num(CMD, "top-k count", field)?;
                if k == 0 {
                    return Err(malformed(CMD, "TOP must be at least 1"));
                }
                top = Some(k);
            }
            _ => return Err(keyword_typo(CMD, raw, QUERY_KEYWORDS)),
        }
    }
    Ok(Request::Query {
        stream,
        prefix,
        top,
    })
}

fn parse_history(rest: &str) -> Result<Request, WireError> {
    const CMD: &str = "HISTORY";
    let mut fields = fields_of(rest);
    let stream = stream_name(CMD, fields.next())?;
    let mut from: Option<Time> = None;
    let mut to: Option<Time> = None;
    let mut support: Option<SupportSpec> = None;
    let mut top: Option<usize> = None;
    while let Some(raw) = fields.next() {
        let keyword = raw.to_ascii_uppercase();
        let mut value = |what: &str| -> Result<String, WireError> {
            fields
                .next()
                .map(str::to_owned)
                .ok_or_else(|| malformed(CMD, format!("{keyword} needs a {what}")))
        };
        match keyword.as_str() {
            "FROM" => from = Some(parse_num(CMD, "start time", &value("time")?)?),
            "TO" => to = Some(parse_num(CMD, "end time", &value("time")?)?),
            "SUPPORT" => {
                let f: f64 = parse_num(CMD, "support fraction", &value("fraction")?)?;
                if !(f > 0.0 && f <= 1.0) {
                    return Err(malformed(CMD, "SUPPORT must be in (0, 1]"));
                }
                support = Some(SupportSpec::Fraction(f));
            }
            "ABS-SUPPORT" => {
                let n: usize = parse_num(CMD, "support count", &value("count")?)?;
                if n == 0 {
                    return Err(malformed(CMD, "ABS-SUPPORT must be at least 1"));
                }
                support = Some(SupportSpec::Absolute(n));
            }
            "TOP" => {
                let k: usize = parse_num(CMD, "top-k count", &value("count")?)?;
                if k == 0 {
                    return Err(malformed(CMD, "TOP must be at least 1"));
                }
                top = Some(k);
            }
            _ => return Err(keyword_typo(CMD, raw, HISTORY_KEYWORDS)),
        }
    }
    let from = from.ok_or_else(|| malformed(CMD, "missing FROM"))?;
    let to = to.ok_or_else(|| malformed(CMD, "missing TO"))?;
    if from > to {
        return Err(malformed(CMD, format!("FROM {from} is after TO {to}")));
    }
    Ok(Request::History {
        stream,
        from,
        to,
        support,
        top,
    })
}

fn fields_of(rest: &str) -> impl Iterator<Item = &str> {
    rest.split_whitespace()
}

/// The known candidate with the smallest edit distance to `needle`, if close
/// enough (distance ≤ 2) to be a plausible typo. Shared by the server
/// protocol and the CLI's option/command suggestions.
pub fn closest<'a>(needle: &str, known: &[&'a str]) -> Option<&'a str> {
    known
        .iter()
        .map(|&k| (edit_distance(needle, k), k))
        .min()
        .filter(|&(d, _)| d <= 2)
        .map(|(_, k)| k)
}

/// Plain Levenshtein distance (inputs are short; O(nm) is fine).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            current.push((prev[j] + cost).min(prev[j + 1] + 1).min(current[j] + 1));
        }
        prev = current;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Request {
        Request::parse_line(line).expect("parse").expect("a frame")
    }

    fn err(line: &str) -> WireError {
        Request::parse_line(line).expect_err("should fail")
    }

    #[test]
    fn create_parses_full_and_minimal_forms() {
        let r = parse(
            "CREATE vitals WINDOW 100 SUPPORT 0.1 REFRESH-EVERY 64 MAX-ARITY 3 MAX-GAP 10 WAL",
        );
        match r {
            Request::Create { stream, spec } => {
                assert_eq!(stream, "vitals");
                assert_eq!(spec.window, 100);
                assert_eq!(spec.support, SupportSpec::Fraction(0.1));
                assert_eq!(spec.refresh_every, 64);
                assert_eq!(spec.max_arity, Some(3));
                assert_eq!(spec.max_gap, Some(10));
                assert!(spec.durable);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = parse("create s1 window 20 abs-support 2");
        match r {
            Request::Create { spec, .. } => {
                assert_eq!(spec.support, SupportSpec::Absolute(2));
                assert_eq!(spec.refresh_every, 1024);
                assert!(!spec.durable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_rejects_missing_and_out_of_range_parameters() {
        assert!(matches!(err("CREATE s"), WireError::Malformed { .. }));
        assert!(matches!(
            err("CREATE s WINDOW 100"),
            WireError::Malformed { message, .. } if message.contains("SUPPORT")
        ));
        assert!(matches!(
            err("CREATE s SUPPORT 0.5"),
            WireError::Malformed { message, .. } if message.contains("WINDOW")
        ));
        assert!(matches!(
            err("CREATE s WINDOW 0 SUPPORT 0.5"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("CREATE s WINDOW -5 SUPPORT 0.5"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("CREATE s WINDOW 10 SUPPORT 0"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("CREATE s WINDOW 10 SUPPORT 1.5"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("CREATE s WINDOW 10 ABS-SUPPORT 0"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("CREATE s WINDOW 10 SUPPORT 0.5 REFRESH-EVERY 0"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("CREATE s WINDOW 10 SUPPORT"),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn create_keyword_typos_get_suggestions() {
        match err("CREATE s WINDWO 10 SUPPORT 0.5") {
            WireError::Malformed { message, .. } => {
                assert!(message.contains("did you mean WINDOW"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match err("CREATE s WINDOW 10 ABS-SUPORT 2") {
            WireError::Malformed { message, .. } => {
                assert!(message.contains("did you mean ABS-SUPPORT"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn command_typos_get_suggestions() {
        match err("QUREY s") {
            WireError::UnknownCommand { got, suggestion } => {
                assert_eq!(got, "QUREY");
                assert_eq!(suggestion, Some("QUERY"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match err("CRATE s WINDOW 10 SUPPORT 0.5") {
            WireError::UnknownCommand { suggestion, .. } => {
                assert_eq!(suggestion, Some("CREATE"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match err("frobnicate") {
            WireError::UnknownCommand { suggestion, .. } => assert_eq!(suggestion, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn event_embeds_the_stream_event_grammar() {
        let r = parse("EVENT vitals interval 1 fever 0 5");
        match r {
            Request::Event { stream, event } => {
                assert_eq!(stream, "vitals");
                assert_eq!(
                    event,
                    StreamEvent::Interval {
                        sequence: 1,
                        symbol: "fever".into(),
                        start: 0,
                        end: 5
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse("EVENT s watermark 9"),
            Request::Event { .. }
        ));
        assert!(matches!(err("EVENT s"), WireError::Malformed { .. }));
        assert!(matches!(
            err("EVENT s interval 1 fever 5 5"),
            WireError::Event(IntervalError::DegenerateInterval { .. })
        ));
        assert!(matches!(err("EVENT s frobnicate 1"), WireError::Event(_)));
    }

    #[test]
    fn batch_bounds_its_count() {
        assert_eq!(
            parse("BATCH s 100"),
            Request::Batch {
                stream: "s".into(),
                count: 100
            }
        );
        assert!(matches!(err("BATCH s 0"), WireError::Malformed { .. }));
        assert!(matches!(
            err("BATCH s 1000000"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(err("BATCH s"), WireError::Malformed { .. }));
        assert!(matches!(
            err("BATCH s 5 extra"),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn query_accepts_prefix_and_top_in_any_order() {
        assert_eq!(
            parse("QUERY s"),
            Request::Query {
                stream: "s".into(),
                prefix: None,
                top: None
            }
        );
        assert_eq!(
            parse("QUERY s PREFIX fever TOP 5"),
            Request::Query {
                stream: "s".into(),
                prefix: Some("fever".into()),
                top: Some(5)
            }
        );
        assert_eq!(
            parse("query s top 3 prefix Rash"),
            Request::Query {
                stream: "s".into(),
                prefix: Some("Rash".into()),
                top: Some(3)
            }
        );
        assert!(matches!(err("QUERY s TOP 0"), WireError::Malformed { .. }));
        assert!(matches!(err("QUERY s PREFIX"), WireError::Malformed { .. }));
        match err("QUERY s PERFIX fever") {
            WireError::Malformed { message, .. } => {
                assert!(message.contains("did you mean PREFIX"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn history_requires_a_range_and_bounds_its_keywords() {
        assert_eq!(
            parse("HISTORY vitals FROM 0 TO 100"),
            Request::History {
                stream: "vitals".into(),
                from: 0,
                to: 100,
                support: None,
                top: None
            }
        );
        assert_eq!(
            parse("history s from -5 to 10 abs-support 2 top 3"),
            Request::History {
                stream: "s".into(),
                from: -5,
                to: 10,
                support: Some(SupportSpec::Absolute(2)),
                top: Some(3)
            }
        );
        assert_eq!(
            parse("HISTORY s FROM 0 TO 10 SUPPORT 0.5"),
            Request::History {
                stream: "s".into(),
                from: 0,
                to: 10,
                support: Some(SupportSpec::Fraction(0.5)),
                top: None
            }
        );
        assert!(matches!(err("HISTORY s"), WireError::Malformed { .. }));
        assert!(matches!(
            err("HISTORY s FROM 5"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(err("HISTORY s TO 5"), WireError::Malformed { .. }));
        assert!(matches!(
            err("HISTORY s FROM 10 TO 5"),
            WireError::Malformed { message, .. } if message.contains("after")
        ));
        assert!(matches!(
            err("HISTORY s FROM 0 TO 10 SUPPORT 0"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("HISTORY s FROM 0 TO 10 TOP 0"),
            WireError::Malformed { .. }
        ));
        assert!(matches!(
            err("HISTORY bad/name FROM 0 TO 10"),
            WireError::BadStreamName { .. }
        ));
        match err("HISTORY s FORM 0 TO 10") {
            WireError::Malformed { message, .. } => {
                assert!(message.contains("did you mean FROM"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match err("HISOTRY s FROM 0 TO 10") {
            WireError::UnknownCommand { suggestion, .. } => {
                assert_eq!(suggestion, Some("HISTORY"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subscribe_takes_one_stream_and_unsubscribe_an_optional_one() {
        assert_eq!(
            parse("SUBSCRIBE vitals"),
            Request::Subscribe {
                stream: "vitals".into()
            }
        );
        assert_eq!(
            parse("subscribe s1"),
            Request::Subscribe {
                stream: "s1".into()
            }
        );
        assert!(matches!(err("SUBSCRIBE"), WireError::Malformed { .. }));
        assert!(matches!(err("SUBSCRIBE a b"), WireError::Malformed { .. }));
        assert!(matches!(
            err("SUBSCRIBE bad/name"),
            WireError::BadStreamName { .. }
        ));
        assert_eq!(parse("UNSUBSCRIBE"), Request::Unsubscribe { stream: None });
        assert_eq!(
            parse("UNSUBSCRIBE vitals"),
            Request::Unsubscribe {
                stream: Some("vitals".into())
            }
        );
        assert!(matches!(
            err("UNSUBSCRIBE a b"),
            WireError::Malformed { .. }
        ));
        match err("SUBSCIRBE s") {
            WireError::UnknownCommand { suggestion, .. } => {
                assert_eq!(suggestion, Some("SUBSCRIBE"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_commands_reject_arguments() {
        assert_eq!(parse("HEALTH"), Request::Health);
        assert_eq!(parse("ping"), Request::Ping);
        assert_eq!(parse("SHUTDOWN"), Request::Shutdown);
        assert_eq!(parse("QUIT"), Request::Quit);
        assert!(matches!(err("HEALTH now"), WireError::Malformed { .. }));
        assert_eq!(parse("STATS"), Request::Stats { stream: None });
        assert_eq!(
            parse("STATS vitals"),
            Request::Stats {
                stream: Some("vitals".into())
            }
        );
        assert!(matches!(err("STATS a b"), WireError::Malformed { .. }));
    }

    #[test]
    fn blanks_and_comments_carry_no_request() {
        assert_eq!(Request::parse_line("").unwrap(), None);
        assert_eq!(Request::parse_line("   \t").unwrap(), None);
        assert_eq!(Request::parse_line("# comment").unwrap(), None);
    }

    #[test]
    fn oversize_lines_are_rejected_before_parsing() {
        let long = format!("PING {}", "x".repeat(MAX_LINE_BYTES));
        assert!(matches!(
            Request::parse_line(&long),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn stream_names_are_validated_everywhere() {
        for bad in [
            "",
            "-leading-dash",
            ".hidden",
            "has space",
            "path/../escape",
            "dot\\slash",
            &"x".repeat(MAX_STREAM_NAME + 1),
        ] {
            assert!(
                validate_stream_name(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
        for good in [
            "a",
            "vitals",
            "tenant-7.shard_2",
            &"x".repeat(MAX_STREAM_NAME),
        ] {
            assert!(validate_stream_name(good).is_ok(), "{good:?} should pass");
        }
        assert!(matches!(
            err("SYNC bad/name"),
            WireError::BadStreamName { .. }
        ));
        assert!(matches!(err("DROP -x"), WireError::BadStreamName { .. }));
        assert!(matches!(
            err("QUERY ../etc"),
            WireError::BadStreamName { .. }
        ));
    }

    #[test]
    fn support_spec_resolves_thresholds() {
        assert_eq!(SupportSpec::Absolute(3).absolute_for(100), 3);
        assert_eq!(SupportSpec::Absolute(0).absolute_for(100), 1);
        assert_eq!(SupportSpec::Fraction(0.1).absolute_for(100), 10);
        assert_eq!(SupportSpec::Fraction(0.1).absolute_for(5), 1);
        assert_eq!(SupportSpec::Fraction(0.25).absolute_for(10), 3, "ceil");
        assert_eq!(SupportSpec::Fraction(1.0).absolute_for(0), 1, "never 0");
    }

    #[test]
    fn edit_distance_and_closest_are_shared_helpers() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(closest("QUREY", VERBS), Some("QUERY"));
        assert_eq!(closest("zzzzzz", VERBS), None);
    }
}
