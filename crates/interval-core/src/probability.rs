//! Containment probabilities over uncertain interval sequences.
//!
//! Under tuple-level uncertainty (every interval exists independently with
//! its probability) the *containment probability* `Pr[P ⊑ S]` is the
//! probability that a random possible world of `S` contains the pattern.
//! The **expected support** of `P` in an uncertain database is the sum of
//! containment probabilities over all sequences; it is anti-monotone in the
//! pattern, which is what makes probabilistic mining with pattern growth
//! sound.
//!
//! Computing `Pr[P ⊑ S]` exactly is #P-hard in general, so this module
//! offers the standard two-tier scheme:
//!
//! - **exact** enumeration over the *relevant* uncertain intervals (those
//!   whose symbol occurs in the pattern) when there are at most
//!   [`ProbabilityConfig::exact_limit`] of them;
//! - **Monte-Carlo** possible-world sampling (seeded, deterministic)
//!   otherwise.
//!
//! Both tiers exploit containment monotonicity: adding intervals to a world
//! never destroys an embedding.

use crate::database::UncertainDatabase;
use crate::matcher;
use crate::pattern::TemporalPattern;
use crate::sequence::{IntervalSequence, UncertainSequence};
use crate::symbols::SymbolId;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning for containment-probability computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityConfig {
    /// Maximum number of relevant *uncertain* (p < 1) intervals for which the
    /// exact `2^n` enumeration is used.
    pub exact_limit: usize,
    /// Number of Monte-Carlo samples beyond the exact limit.
    pub mc_samples: u32,
    /// Base RNG seed; combined with a caller-supplied stream id so that
    /// per-sequence estimates are independent yet reproducible.
    pub seed: u64,
}

impl Default for ProbabilityConfig {
    fn default() -> Self {
        Self {
            exact_limit: 12,
            mc_samples: 512,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Splits a sequence's relevant intervals into always-present (p == 1) and
/// genuinely uncertain ones, dropping intervals whose symbol the pattern
/// never uses.
fn relevant_split(
    seq: &UncertainSequence,
    symbols: &[SymbolId],
) -> (
    Vec<crate::interval::EventInterval>,
    Vec<(crate::interval::EventInterval, f64)>,
) {
    let mut certain = Vec::new();
    let mut uncertain = Vec::new();
    for u in seq.intervals() {
        if symbols.binary_search(&u.interval.symbol).is_ok() {
            if u.probability >= 1.0 {
                certain.push(u.interval);
            } else {
                uncertain.push((u.interval, u.probability));
            }
        }
    }
    (certain, uncertain)
}

/// `Pr[pattern ⊑ seq]`, exact when few uncertain intervals are relevant,
/// Monte-Carlo otherwise. `stream` disambiguates the RNG across call sites
/// (pass e.g. the sequence index).
pub fn containment_probability(
    seq: &UncertainSequence,
    pattern: &TemporalPattern,
    cfg: &ProbabilityConfig,
    stream: u64,
) -> f64 {
    if pattern.is_empty() {
        return 1.0;
    }
    let symbols = pattern.symbols();
    let (certain, uncertain) = relevant_split(seq, &symbols);

    // Quick monotone bounds: if the certain part already contains the
    // pattern the probability is 1; if even the full world does not, it is 0.
    let certain_seq = IntervalSequence::from_intervals(certain.clone());
    if matcher::contains(&certain_seq, pattern) {
        return 1.0;
    }
    if uncertain.is_empty() {
        return 0.0;
    }
    let full_seq = IntervalSequence::from_intervals(
        certain
            .iter()
            .copied()
            .chain(uncertain.iter().map(|&(iv, _)| iv))
            .collect(),
    );
    if !matcher::contains(&full_seq, pattern) {
        return 0.0;
    }

    if uncertain.len() <= cfg.exact_limit {
        exact_probability(&certain, &uncertain, pattern)
    } else {
        monte_carlo_probability(&certain, &uncertain, pattern, cfg, stream)
    }
}

fn exact_probability(
    certain: &[crate::interval::EventInterval],
    uncertain: &[(crate::interval::EventInterval, f64)],
    pattern: &TemporalPattern,
) -> f64 {
    let n = uncertain.len();
    debug_assert!(n < usize::BITS as usize);
    let mut total = 0.0f64;
    let mut world = Vec::with_capacity(certain.len() + n);
    for mask in 0u64..(1u64 << n) {
        let mut p = 1.0f64;
        world.clear();
        world.extend_from_slice(certain);
        for (i, &(iv, prob)) in uncertain.iter().enumerate() {
            if mask & (1 << i) != 0 {
                p *= prob;
                world.push(iv);
            } else {
                p *= 1.0 - prob;
            }
        }
        if p == 0.0 {
            continue;
        }
        let seq = IntervalSequence::from_intervals(world.clone());
        if matcher::contains(&seq, pattern) {
            total += p;
        }
    }
    total.clamp(0.0, 1.0)
}

fn monte_carlo_probability(
    certain: &[crate::interval::EventInterval],
    uncertain: &[(crate::interval::EventInterval, f64)],
    pattern: &TemporalPattern,
    cfg: &ProbabilityConfig,
    stream: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(
        cfg.seed
            .wrapping_add(stream.wrapping_mul(0xa076_1d64_78bd_642f)),
    );
    let mut hits = 0u32;
    let mut world = Vec::with_capacity(certain.len() + uncertain.len());
    for _ in 0..cfg.mc_samples {
        world.clear();
        world.extend_from_slice(certain);
        for &(iv, prob) in uncertain {
            if rng.gen::<f64>() < prob {
                world.push(iv);
            }
        }
        let seq = IntervalSequence::from_intervals(world.clone());
        if matcher::contains(&seq, pattern) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(cfg.mc_samples)
}

/// A cheap anti-monotone upper bound on `Pr[pattern ⊑ seq]`: the pattern
/// needs at least `m_s` instances of every symbol `s` it uses, so the
/// probability is at most `min_s Pr[#instances of s ≥ m_s]` (a
/// Poisson-binomial tail per symbol).
pub fn containment_upper_bound(seq: &UncertainSequence, pattern: &TemporalPattern) -> f64 {
    if pattern.is_empty() {
        return 1.0;
    }
    let infos = pattern.slot_infos();
    let mut need: std::collections::HashMap<SymbolId, usize> = std::collections::HashMap::new();
    for i in &infos {
        *need.entry(i.symbol).or_insert(0) += 1;
    }
    let mut bound = 1.0f64;
    for (&symbol, &m) in &need {
        let probs: Vec<f64> = seq
            .intervals()
            .iter()
            .filter(|u| u.interval.symbol == symbol)
            .map(|u| u.probability)
            .collect();
        bound = bound.min(tail_at_least(&probs, m));
        if bound == 0.0 {
            return 0.0;
        }
    }
    bound
}

/// `Pr[X ≥ m]` where `X` is the number of successes of independent Bernoulli
/// trials with probabilities `probs` (Poisson-binomial tail).
fn tail_at_least(probs: &[f64], m: usize) -> f64 {
    if m == 0 {
        return 1.0;
    }
    if probs.len() < m {
        return 0.0;
    }
    // dp[k] = Pr[k successes so far]; bucket m absorbs "m or more".
    let mut dp = vec![0.0f64; m + 1];
    dp[0] = 1.0;
    for &p in probs {
        dp[m] += dp[m - 1] * p;
        for k in (1..m).rev() {
            dp[k] = dp[k] * (1.0 - p) + dp[k - 1] * p;
        }
        dp[0] *= 1.0 - p;
    }
    dp[m].clamp(0.0, 1.0)
}

/// Expected support of `pattern` in `db`: `Σ_S Pr[pattern ⊑ S]`.
pub fn expected_support(
    db: &UncertainDatabase,
    pattern: &TemporalPattern,
    cfg: &ProbabilityConfig,
) -> f64 {
    db.sequences()
        .iter()
        .enumerate()
        .map(|(i, s)| containment_probability(s, pattern, cfg, i as u64))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::UncertainDatabaseBuilder;
    use crate::symbols::SymbolTable;

    fn pat(text: &str, t: &mut SymbolTable) -> TemporalPattern {
        TemporalPattern::parse(text, t).unwrap()
    }

    #[test]
    fn tail_at_least_matches_binomial() {
        // 3 fair coins: P[X >= 2] = 0.5
        let p = tail_at_least(&[0.5, 0.5, 0.5], 2);
        assert!((p - 0.5).abs() < 1e-12, "{p}");
        assert_eq!(tail_at_least(&[0.5], 2), 0.0);
        assert_eq!(tail_at_least(&[], 0), 1.0);
        assert!((tail_at_least(&[0.3, 0.7], 1) - (1.0 - 0.7 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn certain_pattern_has_probability_one() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5, 1.0)
            .interval("B", 3, 8, 1.0);
        let db = b.build();
        let mut t = db.symbols().clone();
        let p = pat("A+ | B+ | A- | B-", &mut t);
        let cfg = ProbabilityConfig::default();
        let prob = containment_probability(&db.sequences()[0], &p, &cfg, 0);
        assert_eq!(prob, 1.0);
    }

    #[test]
    fn independent_pair_multiplies() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5, 0.5)
            .interval("B", 3, 8, 0.4);
        let db = b.build();
        let mut t = db.symbols().clone();
        let p = pat("A+ | B+ | A- | B-", &mut t);
        let cfg = ProbabilityConfig::default();
        let prob = containment_probability(&db.sequences()[0], &p, &cfg, 0);
        assert!((prob - 0.2).abs() < 1e-12, "{prob}");
    }

    #[test]
    fn disjunction_of_alternative_instances() {
        // Two alternative A's, either one supports the singleton.
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5, 0.5)
            .interval("A", 10, 15, 0.5);
        let db = b.build();
        let mut t = db.symbols().clone();
        let p = pat("A+ | A-", &mut t);
        let cfg = ProbabilityConfig::default();
        let prob = containment_probability(&db.sequences()[0], &p, &cfg, 0);
        assert!((prob - 0.75).abs() < 1e-12, "{prob}");
    }

    #[test]
    fn impossible_pattern_has_probability_zero() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence().interval("A", 0, 5, 0.9);
        let db = b.build();
        let mut t = db.symbols().clone();
        let p = pat("B+ | B-", &mut t);
        let cfg = ProbabilityConfig::default();
        assert_eq!(
            containment_probability(&db.sequences()[0], &p, &cfg, 0),
            0.0
        );
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        // Force the MC path by setting exact_limit to 0, compare to exact.
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5, 0.5)
            .interval("B", 3, 8, 0.7)
            .interval("B", 4, 9, 0.3);
        let db = b.build();
        let mut t = db.symbols().clone();
        let p = pat("A+ | B+ | A- | B-", &mut t);
        let exact_cfg = ProbabilityConfig {
            exact_limit: 16,
            ..Default::default()
        };
        let mc_cfg = ProbabilityConfig {
            exact_limit: 0,
            mc_samples: 20_000,
            ..Default::default()
        };
        let exact = containment_probability(&db.sequences()[0], &p, &exact_cfg, 0);
        let mc = containment_probability(&db.sequences()[0], &p, &mc_cfg, 0);
        assert!((exact - mc).abs() < 0.02, "exact={exact} mc={mc}");
    }

    #[test]
    fn upper_bound_dominates_probability() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5, 0.6)
            .interval("B", 3, 8, 0.4)
            .interval("A", 10, 12, 0.5);
        let db = b.build();
        let mut t = db.symbols().clone();
        for text in ["A+ | A-", "A+ | B+ | A- | B-", "A+#0 | A-#0 | A+#1 | A-#1"] {
            let p = pat(text, &mut t);
            let cfg = ProbabilityConfig::default();
            let prob = containment_probability(&db.sequences()[0], &p, &cfg, 0);
            let bound = containment_upper_bound(&db.sequences()[0], &p);
            assert!(
                bound >= prob - 1e-9,
                "{text}: bound {bound} < probability {prob}"
            );
        }
    }

    #[test]
    fn expected_support_sums_sequences() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence().interval("A", 0, 5, 0.5);
        b.sequence().interval("A", 0, 5, 0.25);
        b.sequence().interval("B", 0, 5, 1.0);
        let db = b.build();
        let mut t = db.symbols().clone();
        let p = pat("A+ | A-", &mut t);
        let cfg = ProbabilityConfig::default();
        let esup = expected_support(&db, &p, &cfg);
        assert!((esup - 0.75).abs() < 1e-12, "{esup}");
    }

    #[test]
    fn empty_pattern_probability_is_one() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence().interval("A", 0, 5, 0.1);
        let db = b.build();
        let cfg = ProbabilityConfig::default();
        assert_eq!(
            containment_probability(&db.sequences()[0], &TemporalPattern::empty(), &cfg, 0),
            1.0
        );
        assert_eq!(
            containment_upper_bound(&db.sequences()[0], &TemporalPattern::empty()),
            1.0
        );
    }
}
