//! Composition in Allen's interval algebra.
//!
//! Given `A r1 B` and `B r2 C`, the composition `r1 ∘ r2` is the set of
//! relations possible between `A` and `C`. The full 13×13 table is the
//! backbone of qualitative temporal reasoning (path consistency, constraint
//! propagation) and a useful consistency oracle for arrangement patterns.
//!
//! Rather than transcribing the table (169 entries, classic source of
//! typos), it is *derived once* by enumerating concrete interval triples
//! over a small grid — 7 distinct endpoint values are enough to realize
//! every composition entry — and cached behind a `OnceLock`.

use crate::allen::AllenRelation;
use crate::interval::EventInterval;
use crate::symbols::SymbolId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// A set of Allen relations, stored as a 13-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationSet(u16);

impl RelationSet {
    /// The empty set.
    pub const EMPTY: RelationSet = RelationSet(0);
    /// The full set of all 13 relations.
    pub const FULL: RelationSet = RelationSet((1 << 13) - 1);

    fn bit(r: AllenRelation) -> u16 {
        // `ALL` lists the relations in declaration order, so the enum
        // discriminant is the bit position (asserted in tests).
        1 << (r as u16)
    }

    /// The singleton set `{r}`.
    pub fn singleton(r: AllenRelation) -> RelationSet {
        RelationSet(Self::bit(r))
    }

    /// Builds a set from an iterator of relations.
    pub fn from_relations(rels: impl IntoIterator<Item = AllenRelation>) -> RelationSet {
        let mut s = RelationSet::EMPTY;
        for r in rels {
            s = s.insert(r);
        }
        s
    }

    /// The set with `r` added.
    #[must_use]
    pub fn insert(self, r: AllenRelation) -> RelationSet {
        RelationSet(self.0 | Self::bit(r))
    }

    /// Whether `r` is in the set.
    pub fn contains(self, r: AllenRelation) -> bool {
        self.0 & Self::bit(r) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 & other.0)
    }

    /// The set of inverses of the members.
    #[must_use]
    pub fn inverse(self) -> RelationSet {
        RelationSet::from_relations(self.iter().map(AllenRelation::inverse))
    }

    /// Number of relations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in declaration order.
    pub fn iter(self) -> impl Iterator<Item = AllenRelation> {
        AllenRelation::ALL
            .into_iter()
            .filter(move |&r| self.contains(r))
    }
}

impl fmt::Display for RelationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{}", r.mnemonic())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<AllenRelation> for RelationSet {
    fn from_iter<I: IntoIterator<Item = AllenRelation>>(iter: I) -> Self {
        RelationSet::from_relations(iter)
    }
}

/// `r1 ∘ r2`: the possible relations `A ? C` given `A r1 B` and `B r2 C`.
///
/// ```
/// use interval_core::{compose, AllenRelation, RelationSet};
///
/// // before ∘ before = {before}
/// assert_eq!(
///     compose(AllenRelation::Before, AllenRelation::Before),
///     RelationSet::singleton(AllenRelation::Before)
/// );
/// // equals is the identity
/// for r in AllenRelation::ALL {
///     assert_eq!(compose(AllenRelation::Equals, r), RelationSet::singleton(r));
/// }
/// ```
pub fn compose(r1: AllenRelation, r2: AllenRelation) -> RelationSet {
    let table = composition_table();
    table[index(r1)][index(r2)]
}

fn index(r: AllenRelation) -> usize {
    // Discriminants follow `ALL`'s declaration order (asserted in tests).
    r as usize
}

/// Derives and caches the 13×13 composition table by brute-force
/// enumeration of interval triples over a 7-point grid.
fn composition_table() -> &'static [[RelationSet; 13]; 13] {
    static TABLE: OnceLock<[[RelationSet; 13]; 13]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[RelationSet::EMPTY; 13]; 13];
        let intervals: Vec<EventInterval> = all_intervals(7);
        for a in &intervals {
            for b in &intervals {
                let r1 = AllenRelation::relate(a, b);
                for c in &intervals {
                    let r2 = AllenRelation::relate(b, c);
                    let rc = AllenRelation::relate(a, c);
                    table[index(r1)][index(r2)] = table[index(r1)][index(r2)].insert(rc);
                }
            }
        }
        table
    })
}

/// All intervals with endpoints on `0..n` (`start < end`).
fn all_intervals(n: i64) -> Vec<EventInterval> {
    let mut out = Vec::new();
    for s in 0..n {
        for e in (s + 1)..n {
            out.push(EventInterval::new_unchecked(SymbolId(0), s, e));
        }
    }
    out
}

/// Checks an arrangement's pairwise relations for path consistency: for all
/// slots `(i, j, k)`, `rel(i, k)` must be in `rel(i, j) ∘ rel(j, k)`.
/// Always true for relations derived from a concrete arrangement — used as
/// a sanity oracle in tests and by downstream constraint reasoning.
pub fn is_path_consistent(matrix: &[Vec<AllenRelation>]) -> bool {
    let n = matrix.len();
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if !compose(matrix[i][j], matrix[j][k]).contains(matrix[i][k]) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TemporalPattern;
    use AllenRelation::*;

    #[test]
    fn discriminants_match_all_order() {
        // `bit`/`index` rely on discriminant == position in `ALL`.
        for (pos, &r) in AllenRelation::ALL.iter().enumerate() {
            assert_eq!(r as usize, pos, "{r:?} out of declaration order");
        }
    }

    #[test]
    fn relation_set_basics() {
        let s = RelationSet::from_relations([Before, Meets]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Before));
        assert!(!s.contains(After));
        assert!(!s.is_empty());
        assert!(RelationSet::EMPTY.is_empty());
        assert_eq!(RelationSet::FULL.len(), 13);
        assert_eq!(s.union(RelationSet::singleton(After)).len(), 3);
        assert_eq!(s.intersect(RelationSet::singleton(Meets)).len(), 1);
        assert_eq!(s.to_string(), "{b,m}");
    }

    #[test]
    fn inverse_of_set() {
        let s = RelationSet::from_relations([Before, Overlaps]);
        assert_eq!(
            s.inverse(),
            RelationSet::from_relations([After, OverlappedBy])
        );
        assert_eq!(RelationSet::FULL.inverse(), RelationSet::FULL);
    }

    #[test]
    fn equals_is_two_sided_identity() {
        for r in AllenRelation::ALL {
            assert_eq!(compose(Equals, r), RelationSet::singleton(r));
            assert_eq!(compose(r, Equals), RelationSet::singleton(r));
        }
    }

    #[test]
    fn classic_entries() {
        assert_eq!(compose(Before, Before), RelationSet::singleton(Before));
        assert_eq!(compose(Meets, Meets), RelationSet::singleton(Before));
        // during ∘ during = during
        assert_eq!(compose(During, During), RelationSet::singleton(During));
        // overlaps ∘ overlaps = {before, meets, overlaps}
        assert_eq!(
            compose(Overlaps, Overlaps),
            RelationSet::from_relations([Before, Meets, Overlaps])
        );
        // before ∘ after = full ambiguity
        assert_eq!(compose(Before, After), RelationSet::FULL);
    }

    #[test]
    fn composition_respects_inversion_law() {
        // (r1 ∘ r2)⁻¹ = r2⁻¹ ∘ r1⁻¹
        for r1 in AllenRelation::ALL {
            for r2 in AllenRelation::ALL {
                assert_eq!(
                    compose(r1, r2).inverse(),
                    compose(r2.inverse(), r1.inverse()),
                    "inversion law failed for {r1} ∘ {r2}"
                );
            }
        }
    }

    #[test]
    fn every_entry_is_nonempty_and_sound() {
        // Soundness against an independent larger grid: any concrete triple's
        // (A,C) relation must be in the table entry.
        for r1 in AllenRelation::ALL {
            for r2 in AllenRelation::ALL {
                assert!(!compose(r1, r2).is_empty(), "{r1} ∘ {r2} empty");
            }
        }
        let intervals = all_intervals(9);
        for a in intervals.iter().step_by(3) {
            for b in intervals.iter().step_by(2) {
                for c in intervals.iter().step_by(3) {
                    let entry = compose(AllenRelation::relate(a, b), AllenRelation::relate(b, c));
                    assert!(entry.contains(AllenRelation::relate(a, c)));
                }
            }
        }
    }

    #[test]
    fn arrangements_are_path_consistent() {
        let iv = |s: u32, a: i64, b: i64| EventInterval::new_unchecked(SymbolId(s), a, b);
        for ivs in [
            vec![iv(0, 0, 5), iv(1, 3, 8), iv(2, 4, 6)],
            vec![iv(0, 0, 2), iv(0, 2, 4), iv(1, 1, 3), iv(2, 0, 4)],
            vec![iv(0, 0, 9), iv(1, 1, 8), iv(2, 2, 7), iv(3, 3, 6)],
        ] {
            let p = TemporalPattern::arrangement_of(&ivs);
            assert!(is_path_consistent(&p.relation_matrix()));
        }
    }

    #[test]
    fn inconsistent_matrix_is_detected() {
        // A before B, B before C, but C before A: impossible.
        let m = vec![
            vec![Equals, Before, After],
            vec![After, Equals, Before],
            vec![Before, After, Equals],
        ];
        assert!(!is_path_consistent(&m));
    }
}
