//! Event intervals: the atomic unit of interval-based data.

use crate::error::{IntervalError, Result};
use crate::symbols::SymbolId;
use serde::{Deserialize, Serialize};

/// Timestamps are signed 64-bit integers. Real datasets with sub-second
/// resolution should be quantized by the caller; only the *order* (and
/// equality) of endpoints matters to temporal patterns.
pub type Time = i64;

/// An event interval `(symbol, start, end)` with `start < end`.
///
/// Intervals are *proper*: the model follows the paper in requiring a strictly
/// positive duration, which guarantees that an interval's start endpoint
/// precedes its end endpoint in the endpoint representation.
///
/// ```
/// use interval_core::{EventInterval, SymbolId};
///
/// let iv = EventInterval::new(SymbolId(0), 3, 9).unwrap();
/// assert_eq!(iv.duration(), 6);
/// assert!(EventInterval::new(SymbolId(0), 9, 3).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventInterval {
    /// Start time (inclusive).
    pub start: Time,
    /// End time (exclusive by convention; only endpoint order matters).
    pub end: Time,
    /// The interned event symbol.
    pub symbol: SymbolId,
}

impl EventInterval {
    /// Creates an interval, validating `start < end`.
    pub fn new(symbol: SymbolId, start: Time, end: Time) -> Result<Self> {
        if start < end {
            Ok(Self { start, end, symbol })
        } else {
            Err(IntervalError::DegenerateInterval { start, end })
        }
    }

    /// Creates an interval without validation.
    ///
    /// # Panics
    /// Panics in debug builds when `start >= end`.
    pub fn new_unchecked(symbol: SymbolId, start: Time, end: Time) -> Self {
        debug_assert!(start < end, "degenerate interval [{start}, {end})");
        Self { start, end, symbol }
    }

    /// Duration `end - start` (always positive).
    #[inline]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// Whether the two intervals share at least one time point, treating
    /// intervals as closed (`meets` counts as intersecting).
    #[inline]
    pub fn intersects(&self, other: &EventInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Whether `self` fully contains `other` (non-strictly).
    #[inline]
    pub fn contains(&self, other: &EventInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// An interval paired with an existence probability, for uncertain databases.
///
/// The probability models tuple-level uncertainty: the interval exists in a
/// possible world independently with probability `probability`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncertainInterval {
    /// The underlying event interval.
    pub interval: EventInterval,
    /// Existence probability, in `(0, 1]`.
    pub probability: f64,
}

impl UncertainInterval {
    /// Creates an uncertain interval, validating the probability range.
    pub fn new(interval: EventInterval, probability: f64) -> Result<Self> {
        if probability > 0.0 && probability <= 1.0 {
            Ok(Self {
                interval,
                probability,
            })
        } else {
            Err(IntervalError::InvalidProbability(probability))
        }
    }

    /// A certain (probability-1) wrapper around `interval`.
    pub fn certain(interval: EventInterval) -> Self {
        Self {
            interval,
            probability: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: Time, end: Time) -> EventInterval {
        EventInterval::new(SymbolId(0), start, end).unwrap()
    }

    #[test]
    fn new_validates_order() {
        assert!(EventInterval::new(SymbolId(0), 1, 2).is_ok());
        assert_eq!(
            EventInterval::new(SymbolId(0), 2, 2),
            Err(IntervalError::DegenerateInterval { start: 2, end: 2 })
        );
        assert!(EventInterval::new(SymbolId(0), 3, 2).is_err());
    }

    #[test]
    fn duration_is_positive() {
        assert_eq!(iv(-5, 5).duration(), 10);
    }

    #[test]
    fn intersects_includes_touching() {
        assert!(iv(0, 5).intersects(&iv(5, 10)));
        assert!(iv(0, 5).intersects(&iv(3, 4)));
        assert!(!iv(0, 5).intersects(&iv(6, 10)));
    }

    #[test]
    fn contains_is_non_strict() {
        assert!(iv(0, 10).contains(&iv(0, 10)));
        assert!(iv(0, 10).contains(&iv(2, 8)));
        assert!(!iv(2, 8).contains(&iv(0, 10)));
    }

    #[test]
    fn uncertain_probability_is_validated() {
        let base = iv(0, 1);
        assert!(UncertainInterval::new(base, 0.5).is_ok());
        assert!(UncertainInterval::new(base, 1.0).is_ok());
        assert!(UncertainInterval::new(base, 0.0).is_err());
        assert!(UncertainInterval::new(base, 1.1).is_err());
        assert_eq!(UncertainInterval::certain(base).probability, 1.0);
    }

    #[test]
    fn ordering_sorts_by_start_then_end() {
        let mut v = vec![iv(3, 4), iv(0, 9), iv(0, 2)];
        v.sort();
        assert_eq!(v, vec![iv(0, 2), iv(0, 9), iv(3, 4)]);
    }
}
