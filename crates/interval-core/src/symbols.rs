//! Symbol interning.
//!
//! Event symbols (e.g. `"fever"`, `"AAPL-up"`) are interned into dense
//! [`SymbolId`]s so the mining hot paths work on `u32`s while display and I/O
//! keep human-readable names.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an interned event symbol.
///
/// Ids are assigned consecutively from 0 by the [`SymbolTable`] that created
/// them; they are only meaningful together with that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The id as a `usize`, for indexing per-symbol arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interning table mapping symbol names to dense [`SymbolId`]s.
///
/// ```
/// use interval_core::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let fever = table.intern("fever");
/// assert_eq!(table.intern("fever"), fever); // idempotent
/// assert_eq!(table.name(fever), "fever");
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table pre-populated with `n` synthetic symbols named
    /// `e0, e1, …` — convenient for generators that only need ids.
    pub fn with_synthetic_symbols(n: usize) -> Self {
        let mut table = Self::new();
        for i in 0..n {
            table.intern(&format!("e{i}"));
        }
        table
    }

    /// Interns `name`, returning its id. Repeated calls with the same name
    /// return the same id.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        // xlint::allow(no-panic-lib): id-space exhaustion (> 4 billion distinct symbols) is unrecoverable capacity corruption, not an input error worth a Result in every signature
        let id = SymbolId(u32::try_from(self.names.len()).expect("more than u32::MAX symbols"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.index.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not created by this table.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// The name of `id`, or `None` if it is out of range.
    pub fn try_name(&self, id: SymbolId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId(i as u32), n.as_str()))
    }

    /// Rebuilds the name→id index after deserialization (the index is not
    /// serialized). Called automatically by [`IntervalDatabase`]'s loaders.
    ///
    /// [`IntervalDatabase`]: crate::IntervalDatabase
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), SymbolId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn names_round_trip() {
        let mut t = SymbolTable::new();
        let id = t.intern("fever");
        assert_eq!(t.name(id), "fever");
        assert_eq!(t.lookup("fever"), Some(id));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn synthetic_symbols_are_named_consecutively() {
        let t = SymbolTable::with_synthetic_symbols(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.name(SymbolId(0)), "e0");
        assert_eq!(t.name(SymbolId(2)), "e2");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = SymbolTable::new();
        t.intern("x");
        t.intern("y");
        let mut clone = SymbolTable {
            names: t.names.clone(),
            index: HashMap::new(),
        };
        assert_eq!(clone.lookup("x"), None);
        clone.rebuild_index();
        assert_eq!(clone.lookup("x"), Some(SymbolId(0)));
        assert_eq!(clone.lookup("y"), Some(SymbolId(1)));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let pairs: Vec<_> = t.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
