//! Streaming event model for interval data.
//!
//! Batch mining consumes an [`IntervalDatabase`](crate::IntervalDatabase)
//! that is fully materialized up front. Streaming ingestion instead observes
//! a sequence of *events*: an interval's start and finish may arrive as two
//! separate records ([`StreamEvent::Open`] / [`StreamEvent::Close`]), or as
//! one completed record ([`StreamEvent::Interval`]). Progress of event time
//! is communicated out-of-band by [`StreamEvent::Watermark`] records: a
//! watermark `w` is the source's promise that every endpoint at time `< w`
//! has already been delivered, which is what makes window eviction safe.
//!
//! The textual wire format is deliberately line-oriented so streams can be
//! tailed from files or pipes:
//!
//! ```text
//! open      <sequence> <symbol> <time>
//! close     <sequence> <symbol> <time>
//! interval  <sequence> <symbol> <start> <end>
//! watermark <time>
//! ```
//!
//! Blank lines and lines starting with `#` are ignored. Symbols must be
//! non-empty and must not contain whitespace (they are whitespace-delimited
//! on the wire).
//!
//! Parsing ([`StreamEvent::parse_line`]) and rendering
//! ([`Display`](std::fmt::Display)) round-trip:
//!
//! ```
//! use interval_core::StreamEvent;
//!
//! let lines = "\
//! ## one patient's vitals
//! open      7 fever 3
//! interval  7 rash 5 20
//! close     7 fever 12
//! watermark 21
//! ";
//! let events: Vec<StreamEvent> = lines
//!     .lines()
//!     .enumerate()
//!     .filter_map(|(i, line)| StreamEvent::parse_line(line, i + 1).transpose())
//!     .collect::<Result<_, _>>()
//!     .unwrap();
//!
//! assert_eq!(events.len(), 4); // the comment line carries no event
//! assert_eq!(events[1].to_string(), "interval 7 rash 5 20");
//! assert_eq!(events[3], StreamEvent::Watermark(21));
//! ```

use std::fmt;
use std::str::FromStr;

use crate::error::{IntervalError, Result};
use crate::interval::Time;

/// Identifier of a logical sequence (e.g. one patient, one stock) within a
/// stream. Sequence ids are assigned by the source and need not be dense.
pub type SequenceId = u64;

/// One record of an interval event stream.
///
/// See the [module documentation](self) for the wire format and watermark
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StreamEvent {
    /// An interval with the given symbol started at `at` in sequence
    /// `sequence`. The interval stays *open* (end unknown) until a matching
    /// [`StreamEvent::Close`] arrives.
    Open {
        /// Logical sequence the interval belongs to.
        sequence: SequenceId,
        /// Event symbol, e.g. `"fever"`.
        symbol: String,
        /// Start time of the interval.
        at: Time,
    },
    /// The earliest currently-open interval with this symbol in `sequence`
    /// finished at `at`.
    Close {
        /// Logical sequence the interval belongs to.
        sequence: SequenceId,
        /// Event symbol, matching a prior [`StreamEvent::Open`].
        symbol: String,
        /// End time of the interval; must exceed the matched start.
        at: Time,
    },
    /// A completed interval delivered as a single record.
    Interval {
        /// Logical sequence the interval belongs to.
        sequence: SequenceId,
        /// Event symbol.
        symbol: String,
        /// Start time (`start < end`).
        start: Time,
        /// End time.
        end: Time,
    },
    /// Watermark: every endpoint strictly before this time has been
    /// delivered. Watermarks must be non-decreasing.
    Watermark(Time),
}

impl StreamEvent {
    /// The sequence this event belongs to, if any (watermarks are global).
    pub fn sequence(&self) -> Option<SequenceId> {
        match self {
            StreamEvent::Open { sequence, .. }
            | StreamEvent::Close { sequence, .. }
            | StreamEvent::Interval { sequence, .. } => Some(*sequence),
            StreamEvent::Watermark(_) => None,
        }
    }

    /// The latest timestamp mentioned by this event.
    pub fn time(&self) -> Time {
        match self {
            StreamEvent::Open { at, .. } | StreamEvent::Close { at, .. } => *at,
            StreamEvent::Interval { end, .. } => *end,
            StreamEvent::Watermark(at) => *at,
        }
    }

    /// Parses one line of the wire format, skipping blanks and `#` comments.
    ///
    /// Returns `Ok(None)` for lines that carry no event. `line_no` (1-based,
    /// 0 when unknown) is only used to annotate errors.
    pub fn parse_line(line: &str, line_no: usize) -> Result<Option<StreamEvent>> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(None);
        }
        trimmed
            .parse()
            .map(Some)
            .map_err(|e| annotate_line(e, line_no))
    }
}

fn annotate_line(e: IntervalError, line_no: usize) -> IntervalError {
    match e {
        IntervalError::Parse { line: 0, message } => IntervalError::Parse {
            line: line_no,
            message,
        },
        other => other,
    }
}

fn parse_err(message: impl Into<String>) -> IntervalError {
    IntervalError::Parse {
        line: 0,
        message: message.into(),
    }
}

fn next_field<'a, 'b>(
    fields: &mut impl Iterator<Item = &'a str>,
    what: &'b str,
) -> Result<&'a str> {
    fields
        .next()
        .ok_or_else(|| parse_err(format!("missing {what}")))
}

fn parse_num<T: FromStr>(field: &str, what: &str) -> Result<T> {
    field
        .parse()
        .map_err(|_| parse_err(format!("invalid {what} {field:?}")))
}

fn parse_symbol(field: &str) -> Result<String> {
    // Whitespace-containing symbols cannot appear here (the line is
    // whitespace-split), so only emptiness needs checking.
    if field.is_empty() {
        Err(parse_err("empty symbol"))
    } else {
        Ok(field.to_owned())
    }
}

impl FromStr for StreamEvent {
    type Err = IntervalError;

    fn from_str(s: &str) -> Result<StreamEvent> {
        let mut fields = s.split_whitespace();
        let keyword = next_field(&mut fields, "event keyword")?;
        let event = match keyword {
            "open" | "close" => {
                let sequence = parse_num(next_field(&mut fields, "sequence id")?, "sequence id")?;
                let symbol = parse_symbol(next_field(&mut fields, "symbol")?)?;
                let at = parse_num(next_field(&mut fields, "time")?, "time")?;
                if keyword == "open" {
                    StreamEvent::Open {
                        sequence,
                        symbol,
                        at,
                    }
                } else {
                    StreamEvent::Close {
                        sequence,
                        symbol,
                        at,
                    }
                }
            }
            "interval" => {
                let sequence = parse_num(next_field(&mut fields, "sequence id")?, "sequence id")?;
                let symbol = parse_symbol(next_field(&mut fields, "symbol")?)?;
                let start = parse_num(next_field(&mut fields, "start time")?, "start time")?;
                let end = parse_num(next_field(&mut fields, "end time")?, "end time")?;
                if start >= end {
                    return Err(IntervalError::DegenerateInterval { start, end });
                }
                StreamEvent::Interval {
                    sequence,
                    symbol,
                    start,
                    end,
                }
            }
            "watermark" => {
                StreamEvent::Watermark(parse_num(next_field(&mut fields, "time")?, "time")?)
            }
            other => {
                return Err(parse_err(format!(
                    "unknown event keyword {other:?} (expected open, close, interval or watermark)"
                )))
            }
        };
        if let Some(extra) = fields.next() {
            return Err(parse_err(format!("unexpected trailing field {extra:?}")));
        }
        Ok(event)
    }
}

// ---------------------------------------------------------------- codec ----
//
// Binary record codec used by the durability write-ahead log. The format is
// deliberately trivial — a tag byte plus fixed-width little-endian fields —
// so a record's bytes can be validated and decoded without any allocation
// beyond the symbol string, and without serde (the offline dev-stub
// environment ships a panicking `serde_json`). Framing (length + CRC) is the
// WAL's job, not the codec's: these bytes are exactly one record's payload.
//
// ```text
// open      tag=0  sequence:u64  at:i64                sym_len:u64  sym
// close     tag=1  sequence:u64  at:i64                sym_len:u64  sym
// interval  tag=2  sequence:u64  start:i64  end:i64    sym_len:u64  sym
// watermark tag=3  at:i64
// ```

/// Longest symbol (in bytes) [`StreamEvent::decode`] accepts. Caps the
/// allocation a corrupt length field can demand.
pub const MAX_SYMBOL_LEN: usize = 64 * 1024;

const TAG_OPEN: u8 = 0;
const TAG_CLOSE: u8 = 1;
const TAG_INTERVAL: u8 = 2;
const TAG_WATERMARK: u8 = 3;

fn codec_err(message: impl Into<String>) -> IntervalError {
    IntervalError::Parse {
        line: 0,
        message: message.into(),
    }
}

/// Bounds-checked reader over one record's bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| codec_err(format!("record truncated reading {what}")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8, what)?);
        Ok(u64::from_le_bytes(raw))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8, what)?);
        Ok(i64::from_le_bytes(raw))
    }

    fn symbol(&mut self) -> Result<String> {
        let len = self.u64("symbol length")?;
        if len == 0 {
            return Err(codec_err("empty symbol"));
        }
        if len > MAX_SYMBOL_LEN as u64 {
            return Err(codec_err(format!(
                "symbol length {len} exceeds the {MAX_SYMBOL_LEN}-byte cap"
            )));
        }
        let raw = self.take(len as usize, "symbol bytes")?;
        String::from_utf8(raw.to_vec()).map_err(|_| codec_err("symbol is not valid UTF-8"))
    }

    fn finish(self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(codec_err(format!(
                "{} trailing bytes after the record",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn push_symbol(out: &mut Vec<u8>, symbol: &str) {
    out.extend_from_slice(&(symbol.len() as u64).to_le_bytes());
    out.extend_from_slice(symbol.as_bytes());
}

impl StreamEvent {
    /// Appends the record's binary encoding (see the codec notes in the
    /// source) to `out`. Infallible: every in-memory event is encodable.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StreamEvent::Open {
                sequence,
                symbol,
                at,
            } => {
                out.push(TAG_OPEN);
                out.extend_from_slice(&sequence.to_le_bytes());
                out.extend_from_slice(&at.to_le_bytes());
                push_symbol(out, symbol);
            }
            StreamEvent::Close {
                sequence,
                symbol,
                at,
            } => {
                out.push(TAG_CLOSE);
                out.extend_from_slice(&sequence.to_le_bytes());
                out.extend_from_slice(&at.to_le_bytes());
                push_symbol(out, symbol);
            }
            StreamEvent::Interval {
                sequence,
                symbol,
                start,
                end,
            } => {
                out.push(TAG_INTERVAL);
                out.extend_from_slice(&sequence.to_le_bytes());
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                push_symbol(out, symbol);
            }
            StreamEvent::Watermark(at) => {
                out.push(TAG_WATERMARK);
                out.extend_from_slice(&at.to_le_bytes());
            }
        }
    }

    /// Decodes one binary record produced by [`StreamEvent::encode`].
    ///
    /// Every malformation — unknown tag, truncation, oversized or non-UTF-8
    /// symbol, trailing bytes, degenerate interval — is an error, so a
    /// record that decodes is semantically valid (the same contract the
    /// textual parser gives).
    pub fn decode(bytes: &[u8]) -> Result<StreamEvent> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let event = match cursor.u8("record tag")? {
            TAG_OPEN => StreamEvent::Open {
                sequence: cursor.u64("sequence id")?,
                at: cursor.i64("time")?,
                symbol: cursor.symbol()?,
            },
            TAG_CLOSE => StreamEvent::Close {
                sequence: cursor.u64("sequence id")?,
                at: cursor.i64("time")?,
                symbol: cursor.symbol()?,
            },
            TAG_INTERVAL => {
                let sequence = cursor.u64("sequence id")?;
                let start = cursor.i64("start time")?;
                let end = cursor.i64("end time")?;
                let symbol = cursor.symbol()?;
                if start >= end {
                    return Err(IntervalError::DegenerateInterval { start, end });
                }
                StreamEvent::Interval {
                    sequence,
                    symbol,
                    start,
                    end,
                }
            }
            TAG_WATERMARK => StreamEvent::Watermark(cursor.i64("time")?),
            other => return Err(codec_err(format!("unknown record tag {other}"))),
        };
        cursor.finish()?;
        Ok(event)
    }
}

impl fmt::Display for StreamEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamEvent::Open {
                sequence,
                symbol,
                at,
            } => write!(f, "open {sequence} {symbol} {at}"),
            StreamEvent::Close {
                sequence,
                symbol,
                at,
            } => write!(f, "close {sequence} {symbol} {at}"),
            StreamEvent::Interval {
                sequence,
                symbol,
                start,
                end,
            } => write!(f, "interval {sequence} {symbol} {start} {end}"),
            StreamEvent::Watermark(at) => write!(f, "watermark {at}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_variant() {
        let events = [
            StreamEvent::Open {
                sequence: 7,
                symbol: "fever".into(),
                at: -3,
            },
            StreamEvent::Close {
                sequence: 7,
                symbol: "fever".into(),
                at: 12,
            },
            StreamEvent::Interval {
                sequence: 0,
                symbol: "rash".into(),
                start: 5,
                end: 20,
            },
            StreamEvent::Watermark(99),
        ];
        for event in events {
            let line = event.to_string();
            let back: StreamEvent = line.parse().expect("round trip");
            assert_eq!(back, event, "line {line:?}");
        }
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        assert_eq!(StreamEvent::parse_line("", 1).unwrap(), None);
        assert_eq!(StreamEvent::parse_line("   \t ", 2).unwrap(), None);
        assert_eq!(StreamEvent::parse_line("# comment", 3).unwrap(), None);
        assert_eq!(
            StreamEvent::parse_line(" watermark 4 ", 4).unwrap(),
            Some(StreamEvent::Watermark(4))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = StreamEvent::parse_line("frobnicate 1 a 2", 17).unwrap_err();
        match err {
            IntervalError::Parse { line, message } => {
                assert_eq!(line, 17);
                assert!(message.contains("frobnicate"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_records() {
        assert!("open".parse::<StreamEvent>().is_err());
        assert!("open x fever 3".parse::<StreamEvent>().is_err());
        assert!("open 1 fever x".parse::<StreamEvent>().is_err());
        assert!("open 1 fever 3 extra".parse::<StreamEvent>().is_err());
        assert!("watermark".parse::<StreamEvent>().is_err());
        assert!(matches!(
            "interval 1 fever 5 5".parse::<StreamEvent>(),
            Err(IntervalError::DegenerateInterval { start: 5, end: 5 })
        ));
    }

    #[test]
    fn binary_codec_round_trips_every_variant() {
        let events = [
            StreamEvent::Open {
                sequence: u64::MAX,
                symbol: "fever".into(),
                at: -3,
            },
            StreamEvent::Close {
                sequence: 7,
                symbol: "ünïcode✓".into(),
                at: Time::MAX,
            },
            StreamEvent::Interval {
                sequence: 0,
                symbol: "rash".into(),
                start: Time::MIN,
                end: 20,
            },
            StreamEvent::Watermark(-99),
        ];
        for event in events {
            let mut bytes = Vec::new();
            event.encode(&mut bytes);
            assert_eq!(StreamEvent::decode(&bytes).expect("decode"), event);
        }
    }

    #[test]
    fn binary_codec_rejects_malformed_records() {
        let mut good = Vec::new();
        StreamEvent::Watermark(5).encode(&mut good);

        // Empty input, unknown tag, truncation, trailing garbage.
        assert!(StreamEvent::decode(&[]).is_err());
        assert!(StreamEvent::decode(&[9]).is_err());
        assert!(StreamEvent::decode(&good[..good.len() - 1]).is_err());
        let mut long = good.clone();
        long.push(0);
        assert!(StreamEvent::decode(&long).is_err());

        // Symbol validation: empty, oversized length claim, bad UTF-8.
        let mut open = Vec::new();
        StreamEvent::Open {
            sequence: 1,
            symbol: "ab".into(),
            at: 2,
        }
        .encode(&mut open);
        let sym_len_at = 1 + 8 + 8;
        let mut empty_sym = open.clone();
        empty_sym[sym_len_at..sym_len_at + 8].copy_from_slice(&0u64.to_le_bytes());
        empty_sym.truncate(sym_len_at + 8);
        assert!(StreamEvent::decode(&empty_sym).is_err());
        let mut huge_sym = open.clone();
        huge_sym[sym_len_at..sym_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(StreamEvent::decode(&huge_sym).is_err());
        let mut bad_utf8 = open.clone();
        bad_utf8[sym_len_at + 8] = 0xFF;
        assert!(StreamEvent::decode(&bad_utf8).is_err());

        // Degenerate intervals are rejected exactly like the text parser.
        let mut degenerate = Vec::new();
        StreamEvent::Interval {
            sequence: 1,
            symbol: "x".into(),
            start: 4,
            end: 9,
        }
        .encode(&mut degenerate);
        degenerate[17..25].copy_from_slice(&4i64.to_le_bytes());
        assert!(matches!(
            StreamEvent::decode(&degenerate),
            Err(IntervalError::DegenerateInterval { start: 4, end: 4 })
        ));
    }

    #[test]
    fn accessors_report_sequence_and_time() {
        let open = StreamEvent::Open {
            sequence: 3,
            symbol: "a".into(),
            at: 10,
        };
        assert_eq!(open.sequence(), Some(3));
        assert_eq!(open.time(), 10);
        let iv = StreamEvent::Interval {
            sequence: 4,
            symbol: "b".into(),
            start: 1,
            end: 9,
        };
        assert_eq!(iv.time(), 9);
        assert_eq!(StreamEvent::Watermark(5).sequence(), None);
        assert_eq!(StreamEvent::Watermark(5).time(), 5);
    }
}
