//! Interval sequences: one entity's (patient, customer, stock, …) timeline of
//! event intervals.

use crate::interval::{EventInterval, Time, UncertainInterval};
use crate::symbols::SymbolId;
use serde::{Deserialize, Serialize};

/// A normalized multiset of event intervals belonging to one entity.
///
/// Intervals are kept sorted by `(start, end, symbol)`; duplicates are
/// allowed (the same symbol may occur any number of times, including with
/// identical endpoints).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSequence {
    intervals: Vec<EventInterval>,
}

impl IntervalSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sequence from arbitrary-order intervals, normalizing order.
    pub fn from_intervals(mut intervals: Vec<EventInterval>) -> Self {
        intervals.sort_unstable();
        Self { intervals }
    }

    /// Adds an interval, keeping the sequence normalized.
    pub fn push(&mut self, interval: EventInterval) {
        let pos = self.intervals.partition_point(|iv| iv <= &interval);
        self.intervals.insert(pos, interval);
    }

    /// The intervals in normalized order.
    pub fn intervals(&self) -> &[EventInterval] {
        &self.intervals
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the sequence has no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether any interval carries `symbol`.
    pub fn contains_symbol(&self, symbol: SymbolId) -> bool {
        self.intervals.iter().any(|iv| iv.symbol == symbol)
    }

    /// The earliest start time, if any.
    pub fn min_start(&self) -> Option<Time> {
        self.intervals.first().map(|iv| iv.start)
    }

    /// The latest end time, if any.
    pub fn max_end(&self) -> Option<Time> {
        self.intervals.iter().map(|iv| iv.end).max()
    }

    /// Total time span covered (`max_end - min_start`), or 0 when empty.
    pub fn span(&self) -> Time {
        match (self.min_start(), self.max_end()) {
            (Some(s), Some(e)) => e - s,
            _ => 0,
        }
    }

    /// Iterates over the intervals.
    pub fn iter(&self) -> std::slice::Iter<'_, EventInterval> {
        self.intervals.iter()
    }
}

impl FromIterator<EventInterval> for IntervalSequence {
    fn from_iter<I: IntoIterator<Item = EventInterval>>(iter: I) -> Self {
        Self::from_intervals(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a IntervalSequence {
    type Item = &'a EventInterval;
    type IntoIter = std::slice::Iter<'a, EventInterval>;
    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

/// A normalized sequence of [`UncertainInterval`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UncertainSequence {
    intervals: Vec<UncertainInterval>,
}

impl UncertainSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from arbitrary-order uncertain intervals, normalizing order by
    /// the underlying interval.
    pub fn from_intervals(mut intervals: Vec<UncertainInterval>) -> Self {
        intervals.sort_unstable_by_key(|u| u.interval);
        Self { intervals }
    }

    /// Adds an uncertain interval, keeping the sequence normalized.
    pub fn push(&mut self, interval: UncertainInterval) {
        let pos = self
            .intervals
            .partition_point(|u| u.interval <= interval.interval);
        self.intervals.insert(pos, interval);
    }

    /// The uncertain intervals in normalized order.
    pub fn intervals(&self) -> &[UncertainInterval] {
        &self.intervals
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the sequence has no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The certain sequence obtained by keeping every interval (the "all
    /// exist" possible world).
    pub fn to_certain(&self) -> IntervalSequence {
        IntervalSequence::from_intervals(self.intervals.iter().map(|u| u.interval).collect())
    }
}

impl FromIterator<UncertainInterval> for UncertainSequence {
    fn from_iter<I: IntoIterator<Item = UncertainInterval>>(iter: I) -> Self {
        Self::from_intervals(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(sym: u32, start: Time, end: Time) -> EventInterval {
        EventInterval::new(SymbolId(sym), start, end).unwrap()
    }

    #[test]
    fn from_intervals_normalizes_order() {
        let s = IntervalSequence::from_intervals(vec![iv(1, 5, 9), iv(0, 0, 3), iv(0, 0, 2)]);
        let starts: Vec<_> = s.iter().map(|i| (i.start, i.end)).collect();
        assert_eq!(starts, vec![(0, 2), (0, 3), (5, 9)]);
    }

    #[test]
    fn push_keeps_order() {
        let mut s = IntervalSequence::new();
        s.push(iv(0, 5, 9));
        s.push(iv(0, 0, 3));
        s.push(iv(0, 2, 4));
        let starts: Vec<_> = s.iter().map(|i| i.start).collect();
        assert_eq!(starts, vec![0, 2, 5]);
    }

    #[test]
    fn stats_are_correct() {
        let s = IntervalSequence::from_intervals(vec![iv(0, 2, 10), iv(1, 4, 6)]);
        assert_eq!(s.min_start(), Some(2));
        assert_eq!(s.max_end(), Some(10));
        assert_eq!(s.span(), 8);
        assert!(s.contains_symbol(SymbolId(1)));
        assert!(!s.contains_symbol(SymbolId(2)));
    }

    #[test]
    fn empty_sequence_stats() {
        let s = IntervalSequence::new();
        assert!(s.is_empty());
        assert_eq!(s.min_start(), None);
        assert_eq!(s.span(), 0);
    }

    #[test]
    fn max_end_scans_all_intervals() {
        // The interval with the latest end is not the last in sort order.
        let s = IntervalSequence::from_intervals(vec![iv(0, 0, 100), iv(0, 5, 6)]);
        assert_eq!(s.max_end(), Some(100));
    }

    #[test]
    fn duplicates_are_allowed() {
        let s = IntervalSequence::from_intervals(vec![iv(0, 1, 2), iv(0, 1, 2)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn uncertain_to_certain_drops_probabilities() {
        let u = UncertainSequence::from_intervals(vec![
            UncertainInterval::new(iv(0, 3, 5), 0.5).unwrap(),
            UncertainInterval::new(iv(1, 0, 2), 0.9).unwrap(),
        ]);
        let c = u.to_certain();
        assert_eq!(c.len(), 2);
        assert_eq!(c.intervals()[0].start, 0);
    }
}
