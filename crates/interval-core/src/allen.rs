//! Allen's interval algebra: the 13 qualitative relations between two
//! intervals, plus helpers to compute, invert and display them.
//!
//! Temporal patterns in this workspace are *not* stored as Allen-relation
//! matrices (the endpoint representation is the canonical form precisely
//! because matrices are ambiguous to grow), but the algebra remains the
//! natural vocabulary for describing and displaying 2-interval relationships,
//! and it is the ground truth the endpoint representation must agree with.

use crate::interval::EventInterval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of Allen's 13 relations, as `A rel B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AllenRelation {
    /// `A` ends strictly before `B` starts.
    Before,
    /// `A` ends exactly when `B` starts.
    Meets,
    /// `A` starts first and the two intervals properly overlap.
    Overlaps,
    /// `A` and `B` start together; `A` ends first.
    Starts,
    /// `A` lies strictly inside `B`.
    During,
    /// `A` and `B` end together; `A` starts later.
    Finishes,
    /// Identical intervals.
    Equals,
    /// Inverse of [`AllenRelation::Finishes`].
    FinishedBy,
    /// Inverse of [`AllenRelation::During`].
    Contains,
    /// Inverse of [`AllenRelation::Starts`].
    StartedBy,
    /// Inverse of [`AllenRelation::Overlaps`].
    OverlappedBy,
    /// Inverse of [`AllenRelation::Meets`].
    MetBy,
    /// Inverse of [`AllenRelation::Before`].
    After,
}

impl AllenRelation {
    /// All 13 relations, in declaration order.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Starts,
        AllenRelation::During,
        AllenRelation::Finishes,
        AllenRelation::Equals,
        AllenRelation::FinishedBy,
        AllenRelation::Contains,
        AllenRelation::StartedBy,
        AllenRelation::OverlappedBy,
        AllenRelation::MetBy,
        AllenRelation::After,
    ];

    /// The seven *basic* relations (the canonical half plus `Equals`): every
    /// relation is either basic or the inverse of a basic one.
    pub const BASIC: [AllenRelation; 7] = [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Starts,
        AllenRelation::During,
        AllenRelation::Finishes,
        AllenRelation::Equals,
    ];

    /// Computes the relation of `a` to `b`.
    ///
    /// ```
    /// use interval_core::{AllenRelation, EventInterval, SymbolId};
    ///
    /// let a = EventInterval::new(SymbolId(0), 0, 5).unwrap();
    /// let b = EventInterval::new(SymbolId(1), 3, 8).unwrap();
    /// assert_eq!(AllenRelation::relate(&a, &b), AllenRelation::Overlaps);
    /// assert_eq!(AllenRelation::relate(&b, &a), AllenRelation::OverlappedBy);
    /// ```
    pub fn relate(a: &EventInterval, b: &EventInterval) -> AllenRelation {
        use std::cmp::Ordering::*;
        match (
            a.start.cmp(&b.start),
            a.end.cmp(&b.end),
            a.end.cmp(&b.start),
            b.end.cmp(&a.start),
        ) {
            (Equal, Equal, _, _) => AllenRelation::Equals,
            (Equal, Less, _, _) => AllenRelation::Starts,
            (Equal, Greater, _, _) => AllenRelation::StartedBy,
            (_, Equal, _, _) => {
                if a.start < b.start {
                    AllenRelation::FinishedBy
                } else {
                    AllenRelation::Finishes
                }
            }
            (Less, _, Less, _) => AllenRelation::Before,
            (Less, _, Equal, _) => AllenRelation::Meets,
            (Greater, _, _, Less) => AllenRelation::After,
            (Greater, _, _, Equal) => AllenRelation::MetBy,
            (Less, Less, Greater, _) => AllenRelation::Overlaps,
            (Less, Greater, _, _) => AllenRelation::Contains,
            (Greater, Less, _, _) => AllenRelation::During,
            (Greater, Greater, _, _) => AllenRelation::OverlappedBy,
        }
    }

    /// The inverse relation: `A rel B` iff `B rel.inverse() A`.
    pub fn inverse(self) -> AllenRelation {
        match self {
            AllenRelation::Before => AllenRelation::After,
            AllenRelation::Meets => AllenRelation::MetBy,
            AllenRelation::Overlaps => AllenRelation::OverlappedBy,
            AllenRelation::Starts => AllenRelation::StartedBy,
            AllenRelation::During => AllenRelation::Contains,
            AllenRelation::Finishes => AllenRelation::FinishedBy,
            AllenRelation::Equals => AllenRelation::Equals,
            AllenRelation::FinishedBy => AllenRelation::Finishes,
            AllenRelation::Contains => AllenRelation::During,
            AllenRelation::StartedBy => AllenRelation::Starts,
            AllenRelation::OverlappedBy => AllenRelation::Overlaps,
            AllenRelation::MetBy => AllenRelation::Meets,
            AllenRelation::After => AllenRelation::Before,
        }
    }

    /// Whether the relation is one of the seven basic (non-inverse) forms.
    pub fn is_basic(self) -> bool {
        AllenRelation::BASIC.contains(&self)
    }

    /// Short mnemonic used by displays: `b m o s d f e fi di si oi mi bi`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AllenRelation::Before => "b",
            AllenRelation::Meets => "m",
            AllenRelation::Overlaps => "o",
            AllenRelation::Starts => "s",
            AllenRelation::During => "d",
            AllenRelation::Finishes => "f",
            AllenRelation::Equals => "e",
            AllenRelation::FinishedBy => "fi",
            AllenRelation::Contains => "di",
            AllenRelation::StartedBy => "si",
            AllenRelation::OverlappedBy => "oi",
            AllenRelation::MetBy => "mi",
            AllenRelation::After => "bi",
        }
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AllenRelation::Before => "before",
            AllenRelation::Meets => "meets",
            AllenRelation::Overlaps => "overlaps",
            AllenRelation::Starts => "starts",
            AllenRelation::During => "during",
            AllenRelation::Finishes => "finishes",
            AllenRelation::Equals => "equals",
            AllenRelation::FinishedBy => "finished-by",
            AllenRelation::Contains => "contains",
            AllenRelation::StartedBy => "started-by",
            AllenRelation::OverlappedBy => "overlapped-by",
            AllenRelation::MetBy => "met-by",
            AllenRelation::After => "after",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolId;

    fn iv(start: i64, end: i64) -> EventInterval {
        EventInterval::new(SymbolId(0), start, end).unwrap()
    }

    #[test]
    fn all_thirteen_relations_are_reachable() {
        let cases: [(EventInterval, EventInterval, AllenRelation); 13] = [
            (iv(0, 1), iv(2, 3), AllenRelation::Before),
            (iv(0, 2), iv(2, 3), AllenRelation::Meets),
            (iv(0, 3), iv(2, 5), AllenRelation::Overlaps),
            (iv(0, 2), iv(0, 5), AllenRelation::Starts),
            (iv(2, 3), iv(0, 5), AllenRelation::During),
            (iv(3, 5), iv(0, 5), AllenRelation::Finishes),
            (iv(0, 5), iv(0, 5), AllenRelation::Equals),
            (iv(0, 5), iv(3, 5), AllenRelation::FinishedBy),
            (iv(0, 5), iv(2, 3), AllenRelation::Contains),
            (iv(0, 5), iv(0, 2), AllenRelation::StartedBy),
            (iv(2, 5), iv(0, 3), AllenRelation::OverlappedBy),
            (iv(2, 3), iv(0, 2), AllenRelation::MetBy),
            (iv(2, 3), iv(0, 1), AllenRelation::After),
        ];
        for (a, b, expected) in cases {
            assert_eq!(AllenRelation::relate(&a, &b), expected, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn inverse_is_an_involution_and_matches_swapped_arguments() {
        let samples = [
            iv(0, 1),
            iv(0, 2),
            iv(0, 5),
            iv(1, 3),
            iv(2, 3),
            iv(2, 5),
            iv(3, 5),
            iv(4, 6),
        ];
        for a in &samples {
            for b in &samples {
                let r = AllenRelation::relate(a, b);
                assert_eq!(r.inverse().inverse(), r);
                assert_eq!(AllenRelation::relate(b, a), r.inverse());
            }
        }
    }

    #[test]
    fn exactly_one_relation_holds_between_any_pair() {
        // Exhaustive over a small grid of endpoint configurations.
        let mut seen = std::collections::HashSet::new();
        for as_ in 0..6i64 {
            for ae in (as_ + 1)..7 {
                for bs in 0..6i64 {
                    for be in (bs + 1)..7 {
                        let r = AllenRelation::relate(&iv(as_, ae), &iv(bs, be));
                        seen.insert(r);
                    }
                }
            }
        }
        assert_eq!(seen.len(), 13, "grid must realize all 13 relations");
    }

    #[test]
    fn basic_relations_partition() {
        for r in AllenRelation::ALL {
            assert!(
                r.is_basic() || r.inverse().is_basic(),
                "{r} must be basic or have a basic inverse"
            );
        }
        assert!(AllenRelation::Equals.is_basic());
        assert_eq!(AllenRelation::Equals.inverse(), AllenRelation::Equals);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut s = std::collections::HashSet::new();
        for r in AllenRelation::ALL {
            assert!(s.insert(r.mnemonic()));
        }
    }

    #[test]
    fn display_names_are_human_readable() {
        assert_eq!(AllenRelation::Overlaps.to_string(), "overlaps");
        assert_eq!(AllenRelation::MetBy.to_string(), "met-by");
    }
}
