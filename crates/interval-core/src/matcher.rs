//! Ground-truth pattern containment.
//!
//! A pattern `P` is contained in a sequence `S` (`P ⊑ S`) when there is an
//! injective mapping from pattern slots to interval instances of `S`,
//! symbol-preserving, such that the endpoint order/equality structure of the
//! mapped instances is exactly the pattern's group structure.
//!
//! The matcher here is a direct backtracking search over slot assignments.
//! It is deliberately simple — it serves as the *oracle* that every miner in
//! the workspace is validated against, and as the support-counting engine of
//! the naive baseline. The miners themselves never call it on their hot
//! paths.

use crate::database::IntervalDatabase;
use crate::interval::EventInterval;
use crate::pattern::{SlotInfo, TemporalPattern};
use crate::sequence::IntervalSequence;
use serde::{Deserialize, Serialize};

/// Embedding constraints accepted by the constrained matcher entry points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchConstraints {
    /// Maximum embedding time span (latest end − earliest start).
    pub max_window: Option<i64>,
    /// Maximum gap between *consecutive distinct endpoint times* of the
    /// embedding (equivalently, between consecutive pattern endpoint sets as
    /// mapped into the sequence).
    pub max_gap: Option<i64>,
}

impl MatchConstraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Only a window constraint.
    pub fn window(w: i64) -> Self {
        Self {
            max_window: Some(w),
            ..Self::default()
        }
    }

    /// Only a gap constraint.
    pub fn gap(g: i64) -> Self {
        Self {
            max_gap: Some(g),
            ..Self::default()
        }
    }

    fn is_none(&self) -> bool {
        self.max_window.is_none() && self.max_gap.is_none()
    }
}

/// Whether a complete assignment satisfies the gap constraint: consecutive
/// distinct endpoint times may be at most `gap` apart.
fn gap_ok(assigned: &[EventInterval], gap: i64) -> bool {
    let mut times: Vec<i64> = assigned.iter().flat_map(|iv| [iv.start, iv.end]).collect();
    times.sort_unstable();
    times.dedup();
    times.windows(2).all(|w| w[1] - w[0] <= gap)
}

/// Compares two pattern group indices and the corresponding concrete times,
/// returning whether the concrete order matches the abstract one.
#[inline]
fn order_matches(g_a: u16, g_b: u16, t_a: i64, t_b: i64) -> bool {
    g_a.cmp(&g_b) == t_a.cmp(&t_b)
}

/// Whether a candidate instance for `slot` is consistent with the instances
/// already assigned to previous slots.
fn consistent(
    infos: &[SlotInfo],
    assigned: &[EventInterval],
    slot: usize,
    candidate: &EventInterval,
) -> bool {
    let me = &infos[slot];
    for (other_slot, other_iv) in assigned.iter().enumerate() {
        let other = &infos[other_slot];
        if !order_matches(
            me.start_group,
            other.start_group,
            candidate.start,
            other_iv.start,
        ) || !order_matches(
            me.start_group,
            other.end_group,
            candidate.start,
            other_iv.end,
        ) || !order_matches(
            me.end_group,
            other.start_group,
            candidate.end,
            other_iv.start,
        ) || !order_matches(me.end_group, other.end_group, candidate.end, other_iv.end)
        {
            return false;
        }
    }
    true
}

/// Backtracking search. `count_all = false` stops at the first embedding.
///
/// The window constraint is checked incrementally (the span of a partial
/// assignment only grows, so violating prefixes are cut immediately); the
/// gap constraint is checked on complete assignments only, because a later
/// slot may legitimately *fill* a gap left by earlier ones.
fn search(
    infos: &[SlotInfo],
    by_symbol: &[Vec<EventInterval>],
    symbol_of_slot: &[usize],
    assigned: &mut Vec<EventInterval>,
    used: &mut Vec<Vec<bool>>,
    count_all: bool,
    constraints: MatchConstraints,
) -> u64 {
    let slot = assigned.len();
    if slot == infos.len() {
        if let Some(g) = constraints.max_gap {
            if !gap_ok(assigned, g) {
                return 0;
            }
        }
        return 1;
    }
    let sym_idx = symbol_of_slot[slot];
    let mut total = 0u64;
    for i in 0..by_symbol[sym_idx].len() {
        if used[sym_idx][i] {
            continue;
        }
        let candidate = by_symbol[sym_idx][i];
        if !consistent(infos, assigned, slot, &candidate) {
            continue;
        }
        if let Some(w) = constraints.max_window {
            let min_start = assigned
                .iter()
                .map(|iv| iv.start)
                .fold(candidate.start, |a, b| a.min(b));
            let max_end = assigned
                .iter()
                .map(|iv| iv.end)
                .fold(candidate.end, |a, b| a.max(b));
            if max_end - min_start > w {
                continue;
            }
        }
        used[sym_idx][i] = true;
        assigned.push(candidate);
        total += search(
            infos,
            by_symbol,
            symbol_of_slot,
            assigned,
            used,
            count_all,
            constraints,
        );
        assigned.pop();
        used[sym_idx][i] = false;
        if !count_all && total > 0 {
            return total;
        }
    }
    total
}

/// Pre-resolved search inputs: slot views, per-symbol instance buckets, and
/// each slot's bucket index.
type Prepared = (Vec<SlotInfo>, Vec<Vec<EventInterval>>, Vec<usize>);

fn prepare(seq: &IntervalSequence, pattern: &TemporalPattern) -> Option<Prepared> {
    let infos = pattern.slot_infos();
    let symbols = pattern.symbols();
    // Bucket the sequence's instances by pattern symbol.
    let mut by_symbol: Vec<Vec<EventInterval>> = vec![Vec::new(); symbols.len()];
    for iv in seq.iter() {
        if let Ok(idx) = symbols.binary_search(&iv.symbol) {
            by_symbol[idx].push(*iv);
        }
    }
    let mut symbol_of_slot = Vec::with_capacity(infos.len());
    for info in &infos {
        let idx = symbols.binary_search(&info.symbol).ok()?;
        if by_symbol[idx].is_empty() {
            return None;
        }
        symbol_of_slot.push(idx);
    }
    Some((infos, by_symbol, symbol_of_slot))
}

/// Whether `pattern ⊑ seq`.
///
/// ```
/// use interval_core::{matcher, DatabaseBuilder, TemporalPattern, SymbolTable};
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("A", 0, 5).interval("B", 3, 8);
/// let db = b.build();
/// let mut t = db.symbols().clone();
/// let overlap = TemporalPattern::parse("A+ | B+ | A- | B-", &mut t).unwrap();
/// let before = TemporalPattern::parse("A+ | A- | B+ | B-", &mut t).unwrap();
/// assert!(matcher::contains(&db.sequences()[0], &overlap));
/// assert!(!matcher::contains(&db.sequences()[0], &before));
/// ```
pub fn contains(seq: &IntervalSequence, pattern: &TemporalPattern) -> bool {
    contains_constrained(seq, pattern, MatchConstraints::none())
}

/// Whether `pattern ⊑ seq` with an embedding whose total time span (latest
/// end − earliest start) is at most `max_window` (`None` = unconstrained).
pub fn contains_within_window(
    seq: &IntervalSequence,
    pattern: &TemporalPattern,
    max_window: Option<i64>,
) -> bool {
    contains_constrained(
        seq,
        pattern,
        MatchConstraints {
            max_window,
            max_gap: None,
        },
    )
}

/// Whether `pattern ⊑ seq` under arbitrary [`MatchConstraints`].
pub fn contains_constrained(
    seq: &IntervalSequence,
    pattern: &TemporalPattern,
    constraints: MatchConstraints,
) -> bool {
    if pattern.is_empty() {
        return true;
    }
    let Some((infos, by_symbol, symbol_of_slot)) = prepare(seq, pattern) else {
        return false;
    };
    let mut used: Vec<Vec<bool>> = by_symbol.iter().map(|v| vec![false; v.len()]).collect();
    let mut assigned = Vec::with_capacity(infos.len());
    search(
        &infos,
        &by_symbol,
        &symbol_of_slot,
        &mut assigned,
        &mut used,
        false,
        constraints,
    ) > 0
}

/// Finds one concrete embedding of `pattern` into `seq` under `constraints`:
/// the returned vector maps each pattern slot (by index) to the interval
/// instance realizing it. Returns `None` when the pattern is not contained.
///
/// This is the *witness* API behind "explain why this pattern matched".
///
/// ```
/// use interval_core::{matcher, DatabaseBuilder, MatchConstraints, TemporalPattern};
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("A", 0, 5).interval("B", 3, 8);
/// let db = b.build();
/// let mut t = db.symbols().clone();
/// let overlap = TemporalPattern::parse("A+ | B+ | A- | B-", &mut t).unwrap();
/// let witness = matcher::find_embedding(
///     &db.sequences()[0],
///     &overlap,
///     MatchConstraints::none(),
/// )
/// .unwrap();
/// assert_eq!(witness.len(), 2);
/// assert_eq!((witness[0].start, witness[0].end), (0, 5)); // slot 0 = the A
/// ```
pub fn find_embedding(
    seq: &IntervalSequence,
    pattern: &TemporalPattern,
    constraints: MatchConstraints,
) -> Option<Vec<EventInterval>> {
    if pattern.is_empty() {
        return Some(Vec::new());
    }
    let (infos, by_symbol, symbol_of_slot) = prepare(seq, pattern)?;
    let mut used: Vec<Vec<bool>> = by_symbol.iter().map(|v| vec![false; v.len()]).collect();
    let mut assigned = Vec::with_capacity(infos.len());
    let found = search_witness(
        &infos,
        &by_symbol,
        &symbol_of_slot,
        &mut assigned,
        &mut used,
        constraints,
    );
    found.then_some(assigned)
}

/// Like [`search`] with `count_all = false`, but leaves the successful
/// assignment in `assigned` instead of unwinding it.
fn search_witness(
    infos: &[SlotInfo],
    by_symbol: &[Vec<EventInterval>],
    symbol_of_slot: &[usize],
    assigned: &mut Vec<EventInterval>,
    used: &mut Vec<Vec<bool>>,
    constraints: MatchConstraints,
) -> bool {
    let slot = assigned.len();
    if slot == infos.len() {
        if let Some(g) = constraints.max_gap {
            if !gap_ok(assigned, g) {
                return false;
            }
        }
        return true;
    }
    let sym_idx = symbol_of_slot[slot];
    for i in 0..by_symbol[sym_idx].len() {
        if used[sym_idx][i] {
            continue;
        }
        let candidate = by_symbol[sym_idx][i];
        if !consistent(infos, assigned, slot, &candidate) {
            continue;
        }
        if let Some(w) = constraints.max_window {
            let min_start = assigned
                .iter()
                .map(|iv| iv.start)
                .fold(candidate.start, |a, b| a.min(b));
            let max_end = assigned
                .iter()
                .map(|iv| iv.end)
                .fold(candidate.end, |a, b| a.max(b));
            if max_end - min_start > w {
                continue;
            }
        }
        used[sym_idx][i] = true;
        assigned.push(candidate);
        if search_witness(
            infos,
            by_symbol,
            symbol_of_slot,
            assigned,
            used,
            constraints,
        ) {
            return true;
        }
        assigned.pop();
        used[sym_idx][i] = false;
    }
    false
}

/// The number of distinct embeddings of `pattern` into `seq` (slots of equal
/// symbol are distinguishable, so a symmetric pattern may count a single
/// physical occurrence more than once).
pub fn count_embeddings(seq: &IntervalSequence, pattern: &TemporalPattern) -> u64 {
    if pattern.is_empty() {
        return 1;
    }
    let Some((infos, by_symbol, symbol_of_slot)) = prepare(seq, pattern) else {
        return 0;
    };
    let mut used: Vec<Vec<bool>> = by_symbol.iter().map(|v| vec![false; v.len()]).collect();
    let mut assigned = Vec::with_capacity(infos.len());
    search(
        &infos,
        &by_symbol,
        &symbol_of_slot,
        &mut assigned,
        &mut used,
        true,
        MatchConstraints::none(),
    )
}

/// The absolute support of `pattern` in `db`: the number of sequences that
/// contain it.
pub fn support(db: &IntervalDatabase, pattern: &TemporalPattern) -> usize {
    db.sequences()
        .iter()
        .filter(|s| contains(s, pattern))
        .count()
}

/// The window-constrained support: sequences containing the pattern within
/// `max_window`.
pub fn support_within_window(
    db: &IntervalDatabase,
    pattern: &TemporalPattern,
    max_window: Option<i64>,
) -> usize {
    support_constrained(
        db,
        pattern,
        MatchConstraints {
            max_window,
            max_gap: None,
        },
    )
}

/// The constrained support: sequences containing the pattern under
/// `constraints`.
pub fn support_constrained(
    db: &IntervalDatabase,
    pattern: &TemporalPattern,
    constraints: MatchConstraints,
) -> usize {
    if constraints.is_none() {
        return support(db, pattern);
    }
    db.sequences()
        .iter()
        .filter(|s| contains_constrained(s, pattern, constraints))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::symbols::{SymbolId, SymbolTable};

    fn pat(text: &str, table: &mut SymbolTable) -> TemporalPattern {
        TemporalPattern::parse(text, table).unwrap()
    }

    #[test]
    fn contains_respects_strict_order_vs_equality() {
        let mut b = DatabaseBuilder::new();
        // A meets B (A- and B+ coincide at 5)
        b.sequence().interval("A", 0, 5).interval("B", 5, 9);
        let db = b.build();
        let mut t = db.symbols().clone();
        let meets = pat("A+ | A- B+ | B-", &mut t);
        let before = pat("A+ | A- | B+ | B-", &mut t);
        let overlaps = pat("A+ | B+ | A- | B-", &mut t);
        let seq = &db.sequences()[0];
        assert!(contains(seq, &meets));
        assert!(!contains(seq, &before), "meets is not before");
        assert!(!contains(seq, &overlaps), "meets is not overlaps");
    }

    #[test]
    fn contains_finds_embedded_subpattern() {
        let mut b = DatabaseBuilder::new();
        // Lots of clutter around an A-overlaps-B core.
        b.sequence()
            .interval("X", -10, -5)
            .interval("A", 0, 5)
            .interval("Y", 1, 2)
            .interval("B", 3, 8)
            .interval("Z", 20, 30);
        let db = b.build();
        let mut t = db.symbols().clone();
        let overlap = pat("A+ | B+ | A- | B-", &mut t);
        assert!(contains(&db.sequences()[0], &overlap));
    }

    #[test]
    fn repeated_symbols_require_distinct_instances() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 5);
        b.sequence().interval("A", 0, 5).interval("A", 2, 8);
        let db = b.build();
        let mut t = db.symbols().clone();
        let two_crossing_as = pat("A+#0 | A+#1 | A-#0 | A-#1", &mut t);
        assert!(!contains(&db.sequences()[0], &two_crossing_as));
        assert!(contains(&db.sequences()[1], &two_crossing_as));
    }

    #[test]
    fn crossing_does_not_match_nesting() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 10).interval("A", 2, 5); // nesting
        let db = b.build();
        let mut t = db.symbols().clone();
        let crossing = pat("A+#0 | A+#1 | A-#0 | A-#1", &mut t);
        let nesting = pat("A+#0 | A+#1 | A-#1 | A-#0", &mut t);
        let seq = &db.sequences()[0];
        assert!(!contains(seq, &crossing));
        assert!(contains(seq, &nesting));
    }

    #[test]
    fn count_embeddings_counts_all_assignments() {
        let mut b = DatabaseBuilder::new();
        // Two disjoint A's before one B: "A before B" embeds twice.
        b.sequence()
            .interval("A", 0, 1)
            .interval("A", 2, 3)
            .interval("B", 10, 12);
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);
        assert_eq!(count_embeddings(&db.sequences()[0], &before), 2);
    }

    #[test]
    fn empty_pattern_is_everywhere() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 1);
        b.sequence(); // empty sequence
        let db = b.build();
        let p = TemporalPattern::empty();
        assert!(contains(&db.sequences()[0], &p));
        assert!(contains(&db.sequences()[1], &p));
        assert_eq!(support(&db, &p), 2);
        assert_eq!(count_embeddings(&db.sequences()[1], &p), 1);
    }

    #[test]
    fn support_counts_sequences_not_occurrences() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 1)
            .interval("A", 2, 3)
            .interval("A", 4, 5);
        b.sequence().interval("A", 0, 1);
        b.sequence().interval("B", 0, 1);
        let db = b.build();
        let p = TemporalPattern::singleton(SymbolId(0));
        assert_eq!(support(&db, &p), 2);
    }

    #[test]
    fn missing_symbol_short_circuits() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("A", 0, 1);
        let db = b.build();
        let p = TemporalPattern::singleton(SymbolId(99));
        assert!(!contains(&db.sequences()[0], &p));
    }

    #[test]
    fn pattern_matches_its_own_realization() {
        let mut t = SymbolTable::new();
        for text in [
            "A+ | A-",
            "A+ | B+ | A- | B-",
            "A+ B+ | A- B-",
            "A+ | A- B+ | B-",
            "A+#0 | A+#1 | A-#0 | A-#1",
            "A+#0 | A+#1 | A-#1 | A-#0",
            "A+ | B+ | C+ | C- | B- | A-",
        ] {
            let p = pat(text, &mut t);
            assert!(
                contains(&p.realization_sequence(), &p),
                "pattern {text} must match its realization"
            );
        }
    }

    #[test]
    fn window_constraint_restricts_embeddings() {
        let mut b = DatabaseBuilder::new();
        // Two A-before-B realizations: tight (span 6) and wide (span 40).
        b.sequence().interval("A", 0, 2).interval("B", 4, 6);
        b.sequence().interval("A", 0, 2).interval("B", 30, 40);
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);
        assert!(contains_within_window(&db.sequences()[0], &before, Some(6)));
        assert!(!contains_within_window(
            &db.sequences()[1],
            &before,
            Some(6)
        ));
        assert!(contains_within_window(
            &db.sequences()[1],
            &before,
            Some(40)
        ));
        assert_eq!(support_within_window(&db, &before, Some(10)), 1);
        assert_eq!(support_within_window(&db, &before, None), 2);
    }

    #[test]
    fn find_embedding_returns_a_valid_witness() {
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 5)
            .interval("A", 10, 20)
            .interval("B", 12, 15);
        let db = b.build();
        let mut t = db.symbols().clone();
        // A contains B: only the second A works.
        let contains = pat("A+ | B+ | B- | A-", &mut t);
        let seq = &db.sequences()[0];
        let witness = find_embedding(seq, &contains, MatchConstraints::none()).unwrap();
        assert_eq!(witness.len(), 2);
        assert_eq!((witness[0].start, witness[0].end), (10, 20));
        assert_eq!((witness[1].start, witness[1].end), (12, 15));
        // the witness itself realizes the pattern
        assert_eq!(
            crate::pattern::TemporalPattern::arrangement_of(&witness),
            contains
        );
        // no witness for an absent pattern
        let absent = pat("B+ | B- | A+ | A-", &mut t);
        assert!(find_embedding(seq, &absent, MatchConstraints::none()).is_none());
        // constraints narrow the witness choice
        let single_a = pat("A+ | A-", &mut t);
        let tight = find_embedding(seq, &single_a, MatchConstraints::window(5)).unwrap();
        assert_eq!((tight[0].start, tight[0].end), (0, 5));
        // empty pattern has the empty witness
        assert_eq!(
            find_embedding(seq, &TemporalPattern::empty(), MatchConstraints::none()),
            Some(vec![])
        );
    }

    #[test]
    fn gap_constraint_bounds_consecutive_endpoint_times() {
        let mut b = DatabaseBuilder::new();
        // A ends at 2; B starts at 4 (gap 2) / at 30 (gap 28).
        b.sequence().interval("A", 0, 2).interval("B", 4, 6);
        b.sequence().interval("A", 0, 2).interval("B", 30, 33);
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);
        assert!(contains_constrained(
            &db.sequences()[0],
            &before,
            MatchConstraints::gap(2)
        ));
        assert!(!contains_constrained(
            &db.sequences()[1],
            &before,
            MatchConstraints::gap(2)
        ));
        assert_eq!(
            support_constrained(&db, &before, MatchConstraints::gap(28)),
            2
        );
    }

    #[test]
    fn later_intervals_can_fill_gaps() {
        // A..(gap)..C with B bridging the middle: the 3-pattern passes a gap
        // limit that the 2-pattern A,C alone would fail. (Endpoint times of
        // the 3-pattern embedding: 0,2,3,5,6,8 — max gap 2; of the 2-pattern:
        // 0,2,6,8 — gap 4.)
        let mut b = DatabaseBuilder::new();
        b.sequence()
            .interval("A", 0, 2)
            .interval("B", 3, 5)
            .interval("C", 6, 8);
        let db = b.build();
        let mut t = db.symbols().clone();
        let ac = pat("A+ | A- | C+ | C-", &mut t);
        let abc = pat("A+ | A- | B+ | B- | C+ | C-", &mut t);
        let seq = &db.sequences()[0];
        assert!(!contains_constrained(seq, &ac, MatchConstraints::gap(2)));
        assert!(contains_constrained(seq, &abc, MatchConstraints::gap(2)));
    }

    #[test]
    fn combined_window_and_gap() {
        let mut b = DatabaseBuilder::new();
        // endpoint times 0,1,2,3: all consecutive gaps are 1, span is 3.
        b.sequence().interval("A", 0, 1).interval("B", 2, 3);
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);
        let seq = &db.sequences()[0];
        let both = MatchConstraints {
            max_window: Some(3),
            max_gap: Some(1),
        };
        assert!(contains_constrained(seq, &before, both));
        let tight_window = MatchConstraints {
            max_window: Some(2),
            max_gap: Some(1),
        };
        assert!(!contains_constrained(seq, &before, tight_window));
        let tight_gap = MatchConstraints {
            max_window: Some(3),
            max_gap: Some(0),
        };
        assert!(!contains_constrained(seq, &before, tight_gap));
    }

    #[test]
    fn window_picks_any_qualifying_embedding() {
        let mut b = DatabaseBuilder::new();
        // A wide A plus a tight A: the tight one satisfies the window.
        b.sequence()
            .interval("A", 0, 100)
            .interval("A", 0, 3)
            .interval("B", 4, 6);
        let db = b.build();
        let mut t = db.symbols().clone();
        let before = pat("A+ | A- | B+ | B-", &mut t);
        assert!(contains_within_window(&db.sequences()[0], &before, Some(6)));
        assert!(!contains_within_window(
            &db.sequences()[0],
            &before,
            Some(2)
        ));
    }

    #[test]
    fn simultaneity_in_data_must_match_pattern() {
        let mut b = DatabaseBuilder::new();
        // A and B start together.
        b.sequence().interval("A", 0, 5).interval("B", 0, 9);
        let db = b.build();
        let mut t = db.symbols().clone();
        let starts_together = pat("A+ B+ | A- | B-", &mut t);
        let a_first = pat("A+ | B+ | A- | B-", &mut t);
        let seq = &db.sequences()[0];
        assert!(contains(seq, &starts_together));
        assert!(!contains(seq, &a_first));
    }
}
