//! Interval databases: collections of sequences sharing one symbol table,
//! plus ergonomic builders.

use crate::interval::{EventInterval, Time, UncertainInterval};
use crate::sequence::{IntervalSequence, UncertainSequence};
use crate::symbols::{SymbolId, SymbolTable};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A database of interval sequences over a shared symbol table.
///
/// This is the input type of every miner in the workspace. Use
/// [`DatabaseBuilder`] for ergonomic construction from names, or
/// [`IntervalDatabase::from_parts`] when symbols are already interned.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalDatabase {
    symbols: SymbolTable,
    sequences: Vec<IntervalSequence>,
}

impl IntervalDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles a database from pre-interned parts.
    pub fn from_parts(symbols: SymbolTable, sequences: Vec<IntervalSequence>) -> Self {
        Self { symbols, sequences }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table (e.g. for incremental loading).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// The sequences.
    pub fn sequences(&self) -> &[IntervalSequence] {
        &self.sequences
    }

    /// Appends a sequence.
    pub fn push_sequence(&mut self, sequence: IntervalSequence) {
        self.sequences.push(sequence);
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the database has no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total number of intervals across all sequences.
    pub fn total_intervals(&self) -> usize {
        self.sequences.iter().map(IntervalSequence::len).sum()
    }

    /// Mean intervals per sequence (0.0 when empty).
    pub fn mean_sequence_len(&self) -> f64 {
        if self.sequences.is_empty() {
            0.0
        } else {
            self.total_intervals() as f64 / self.sequences.len() as f64
        }
    }

    /// Converts an absolute support count into a relative one.
    pub fn relative_support(&self, count: usize) -> f64 {
        if self.sequences.is_empty() {
            0.0
        } else {
            count as f64 / self.sequences.len() as f64
        }
    }

    /// Converts a relative minimum support in `[0, 1]` into the smallest
    /// absolute count that satisfies it (at least 1).
    pub fn absolute_support(&self, fraction: f64) -> usize {
        ((fraction * self.sequences.len() as f64).ceil() as usize).max(1)
    }
}

/// A database of uncertain interval sequences.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UncertainDatabase {
    symbols: SymbolTable,
    sequences: Vec<UncertainSequence>,
}

impl UncertainDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles an uncertain database from pre-interned parts.
    pub fn from_parts(symbols: SymbolTable, sequences: Vec<UncertainSequence>) -> Self {
        Self { symbols, sequences }
    }

    /// Lifts a certain database: every interval exists with probability 1.
    pub fn from_certain(db: &IntervalDatabase) -> Self {
        let sequences = db
            .sequences()
            .iter()
            .map(|s| s.iter().copied().map(UncertainInterval::certain).collect())
            .collect();
        Self {
            symbols: db.symbols().clone(),
            sequences,
        }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The sequences.
    pub fn sequences(&self) -> &[UncertainSequence] {
        &self.sequences
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the database has no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total number of intervals across all sequences.
    pub fn total_intervals(&self) -> usize {
        self.sequences.iter().map(UncertainSequence::len).sum()
    }

    /// Samples one possible world: each interval is kept independently with
    /// its probability. Deterministic for a fixed `seed`.
    pub fn sample_world(&self, seed: u64) -> IntervalDatabase {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sequences = self
            .sequences
            .iter()
            .map(|s| {
                s.intervals()
                    .iter()
                    .filter(|u| rng.gen::<f64>() < u.probability)
                    .map(|u| u.interval)
                    .collect()
            })
            .collect();
        IntervalDatabase {
            symbols: self.symbols.clone(),
            sequences,
        }
    }
}

/// Fluent builder for [`IntervalDatabase`] that interns symbol names on the
/// fly.
///
/// ```
/// use interval_core::DatabaseBuilder;
///
/// let mut b = DatabaseBuilder::new();
/// b.sequence().interval("a", 0, 5).interval("b", 3, 8);
/// b.sequence().interval("a", 1, 2);
/// let db = b.build();
/// assert_eq!(db.len(), 2);
/// assert_eq!(db.total_intervals(), 3);
/// ```
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    symbols: SymbolTable,
    sequences: Vec<IntervalSequence>,
}

impl DatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol name up front (e.g. from a file header), fixing its
    /// id before any interval mentions it.
    pub fn intern_symbol(&mut self, name: &str) -> SymbolId {
        self.symbols.intern(name)
    }

    /// Starts a new (initially empty) sequence and returns a handle for
    /// adding intervals to it.
    pub fn sequence(&mut self) -> SequenceBuilder<'_> {
        self.sequences.push(IntervalSequence::new());
        SequenceBuilder { db: self }
    }

    /// Finalizes the database.
    pub fn build(self) -> IntervalDatabase {
        IntervalDatabase {
            symbols: self.symbols,
            sequences: self.sequences,
        }
    }
}

/// Handle appending intervals to the sequence most recently started on a
/// [`DatabaseBuilder`].
#[derive(Debug)]
pub struct SequenceBuilder<'a> {
    db: &'a mut DatabaseBuilder,
}

impl SequenceBuilder<'_> {
    /// Appends `(symbol, start, end)`, interning the symbol name.
    ///
    /// # Panics
    /// Panics when `start >= end`; use [`EventInterval::new`] directly for
    /// fallible construction.
    pub fn interval(self, symbol: &str, start: Time, end: Time) -> Self {
        let id = self.db.symbols.intern(symbol);
        let iv = EventInterval::new(id, start, end)
            // xlint::allow(no-panic-lib): documented `# Panics` contract of the test/example builder; EventInterval::new is the fallible API
            .unwrap_or_else(|e| panic!("DatabaseBuilder::interval: {e}"));
        self.db
            .sequences
            .last_mut()
            // xlint::allow(no-panic-lib): the builder type is only reachable via sequence(), which pushes the entry this unwraps
            .expect("sequence() was called")
            .push(iv);
        self
    }

    /// Appends an already-interned interval.
    pub fn raw(self, symbol: SymbolId, start: Time, end: Time) -> Self {
        let iv = EventInterval::new(symbol, start, end)
            // xlint::allow(no-panic-lib): documented `# Panics` contract of the test/example builder; EventInterval::new is the fallible API
            .unwrap_or_else(|e| panic!("DatabaseBuilder::raw: {e}"));
        self.db
            .sequences
            .last_mut()
            // xlint::allow(no-panic-lib): the builder type is only reachable via sequence(), which pushes the entry this unwraps
            .expect("sequence() was called")
            .push(iv);
        self
    }
}

/// Fluent builder for [`UncertainDatabase`].
#[derive(Debug, Default)]
pub struct UncertainDatabaseBuilder {
    symbols: SymbolTable,
    sequences: Vec<UncertainSequence>,
}

impl UncertainDatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol name up front (e.g. from a file header), fixing its
    /// id before any interval mentions it.
    pub fn intern_symbol(&mut self, name: &str) -> SymbolId {
        self.symbols.intern(name)
    }

    /// Starts a new sequence.
    pub fn sequence(&mut self) -> UncertainSequenceBuilder<'_> {
        self.sequences.push(UncertainSequence::new());
        UncertainSequenceBuilder { db: self }
    }

    /// Finalizes the database.
    pub fn build(self) -> UncertainDatabase {
        UncertainDatabase {
            symbols: self.symbols,
            sequences: self.sequences,
        }
    }
}

/// Handle appending uncertain intervals to the sequence most recently started
/// on an [`UncertainDatabaseBuilder`].
#[derive(Debug)]
pub struct UncertainSequenceBuilder<'a> {
    db: &'a mut UncertainDatabaseBuilder,
}

impl UncertainSequenceBuilder<'_> {
    /// Appends `(symbol, start, end)` existing with probability `p`.
    ///
    /// # Panics
    /// Panics when `start >= end` or `p` is outside `(0, 1]`.
    pub fn interval(self, symbol: &str, start: Time, end: Time, p: f64) -> Self {
        let id = self.db.symbols.intern(symbol);
        let iv = EventInterval::new(id, start, end)
            // xlint::allow(no-panic-lib): documented `# Panics` contract of the test/example builder; EventInterval::new is the fallible API
            .unwrap_or_else(|e| panic!("UncertainDatabaseBuilder::interval: {e}"));
        let u = UncertainInterval::new(iv, p)
            // xlint::allow(no-panic-lib): documented `# Panics` contract of the test/example builder; UncertainInterval::new is the fallible API
            .unwrap_or_else(|e| panic!("UncertainDatabaseBuilder::interval: {e}"));
        self.db
            .sequences
            .last_mut()
            // xlint::allow(no-panic-lib): the builder type is only reachable via sequence(), which pushes the entry this unwraps
            .expect("sequence() was called")
            .push(u);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_and_collects() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("a", 0, 5).interval("b", 3, 8);
        b.sequence().interval("a", 1, 2);
        let db = b.build();
        assert_eq!(db.len(), 2);
        assert_eq!(db.symbols().len(), 2);
        assert_eq!(db.total_intervals(), 3);
        assert!((db.mean_sequence_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn support_conversions() {
        let mut b = DatabaseBuilder::new();
        for _ in 0..10 {
            b.sequence().interval("a", 0, 1);
        }
        let db = b.build();
        assert_eq!(db.absolute_support(0.25), 3);
        assert_eq!(db.absolute_support(0.0), 1);
        assert!((db.relative_support(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uncertain_from_certain_has_probability_one() {
        let mut b = DatabaseBuilder::new();
        b.sequence().interval("a", 0, 5);
        let db = b.build();
        let udb = UncertainDatabase::from_certain(&db);
        assert_eq!(udb.len(), 1);
        assert_eq!(udb.sequences()[0].intervals()[0].probability, 1.0);
    }

    #[test]
    fn sample_world_is_deterministic_and_respects_extremes() {
        let mut b = UncertainDatabaseBuilder::new();
        b.sequence()
            .interval("sure", 0, 5, 1.0)
            .interval("maybe", 1, 3, 0.5);
        let udb = b.build();
        let w1 = udb.sample_world(42);
        let w2 = udb.sample_world(42);
        assert_eq!(w1, w2);
        // probability-1 intervals are always present
        for seed in 0..20 {
            let w = udb.sample_world(seed);
            assert!(w.sequences()[0]
                .iter()
                .any(|iv| udb.symbols().name(iv.symbol) == "sure"));
        }
        // probability-0.5 interval appears in some but not all worlds
        let kept = (0..200)
            .filter(|&seed| udb.sample_world(seed).sequences()[0].len() == 2)
            .count();
        assert!(kept > 40 && kept < 160, "kept={kept}");
    }

    #[test]
    fn empty_database_stats() {
        let db = IntervalDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.mean_sequence_len(), 0.0);
        assert_eq!(db.relative_support(0), 0.0);
    }
}
