//! Resource governance for long-running mining operations.
//!
//! Pattern-growth search is exponential in the worst case, so a production
//! deployment cannot offer only two outcomes — "ran to completion" or
//! "process aborted". This module provides the third: **bounded runs with
//! sound partial results**. A [`MiningBudget`] carries a wall-clock
//! deadline, a search-node budget, a candidate-count budget and a shareable
//! [`CancellationToken`]; the search checks it cooperatively and unwinds
//! cleanly when any limit trips, reporting *why* through a [`Termination`]
//! status.
//!
//! # The soundness-under-truncation invariant
//!
//! A budget never changes *what* a reported pattern means, only *how many*
//! patterns get reported:
//!
//! - every pattern in a truncated result is a pattern of the unbudgeted
//!   result, with **exactly** the same support (supports are computed from a
//!   fully materialized projection before the pattern is emitted — a budget
//!   can only prevent emission, never corrupt a count);
//! - only **completeness** is lost: frequent patterns whose search-tree
//!   nodes were never reached are missing.
//!
//! This invariant is property-tested in `tests/robustness.rs`.
//!
//! # Sharing
//!
//! Cloning a [`MiningBudget`] shares its cancellation token and its charge
//! counters. Handing clones of one budget to several worker threads
//! therefore makes the limits *global*: the node budget bounds the sum of
//! nodes explored across all workers, and cancelling the token stops every
//! worker.

use crate::symbols::SymbolId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, shareable across threads.
///
/// Cancellation is level-triggered and permanent: once [`cancel`] has been
/// called, every present and future observer of the token (or of any clone
/// of it) sees it cancelled. The flag is a single atomic store, so it is
/// safe to flip from a Unix signal handler.
///
/// [`cancel`]: CancellationToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    ///
    /// The load is `Relaxed`: the flag carries no data of its own, and the
    /// search only needs to observe it eventually (within one node
    /// expansion).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a mining run stopped.
///
/// `Complete` is the only status under which the reported pattern set is
/// exhaustive. Under every other status the result is a **sound partial
/// result**: each reported support is exact, but some frequent patterns may
/// be missing (see the [module docs](self) for the invariant).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Termination {
    /// The search space was exhausted; the result is exact and complete.
    #[default]
    Complete,
    /// The wall-clock deadline passed before the search finished.
    DeadlineExceeded,
    /// The search-node budget was spent before the search finished.
    NodeBudgetExceeded,
    /// The candidate-count budget was spent before the search finished.
    CandidateBudgetExceeded,
    /// The cancellation token was flipped (operator Ctrl-C, caller abort).
    Cancelled,
    /// One or more worker threads panicked. Only the named root-symbol
    /// partitions are missing; every surviving worker's patterns are
    /// reported with exact supports.
    WorkerFailed {
        /// The root symbols whose level-1 subtrees were lost.
        roots: Vec<SymbolId>,
    },
}

impl Termination {
    /// Whether the run exhausted its search space (the result is complete).
    pub fn is_complete(&self) -> bool {
        matches!(self, Termination::Complete)
    }

    /// Coarse ordering used by [`merge`](Termination::merge): higher means
    /// "more abnormal".
    fn severity(&self) -> u8 {
        match self {
            Termination::Complete => 0,
            Termination::CandidateBudgetExceeded => 1,
            Termination::NodeBudgetExceeded => 2,
            Termination::DeadlineExceeded => 3,
            Termination::Cancelled => 4,
            Termination::WorkerFailed { .. } => 5,
        }
    }

    /// Combines the statuses of two partial runs (e.g. two parallel
    /// workers) into the status of their merged result: the more abnormal
    /// one wins, and failed-root lists are unioned.
    pub fn merge(self, other: Termination) -> Termination {
        match (self, other) {
            (
                Termination::WorkerFailed { mut roots },
                Termination::WorkerFailed { roots: other_roots },
            ) => {
                roots.extend(other_roots);
                roots.sort_unstable();
                roots.dedup();
                Termination::WorkerFailed { roots }
            }
            (a, b) => {
                if a.severity() >= b.severity() {
                    a
                } else {
                    b
                }
            }
        }
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Termination::Complete => write!(f, "complete"),
            Termination::DeadlineExceeded => write!(f, "deadline exceeded"),
            Termination::NodeBudgetExceeded => write!(f, "node budget exceeded"),
            Termination::CandidateBudgetExceeded => write!(f, "candidate budget exceeded"),
            Termination::Cancelled => write!(f, "cancelled"),
            Termination::WorkerFailed { roots } => {
                write!(f, "worker failed (lost roots: ")?;
                for (i, r) in roots.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", r.0)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Default number of node expansions between wall-clock deadline checks.
pub const DEFAULT_CHECK_STRIDE: u64 = 1024;

/// Resource limits for a mining run. The default is unlimited.
///
/// Budgets compose with every miner through `with_budget`-style builders;
/// see the [module docs](self) for sharing semantics and the soundness
/// invariant.
#[derive(Debug, Clone)]
pub struct MiningBudget {
    deadline: Option<Instant>,
    max_nodes: Option<u64>,
    max_candidates: Option<u64>,
    check_stride: u64,
    cancel: CancellationToken,
    nodes_charged: Arc<AtomicU64>,
    candidates_charged: Arc<AtomicU64>,
}

impl Default for MiningBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl MiningBudget {
    /// A budget with no limits (the default): the only way such a run stops
    /// early is through its cancellation token.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            max_nodes: None,
            max_candidates: None,
            check_stride: DEFAULT_CHECK_STRIDE,
            cancel: CancellationToken::new(),
            nodes_charged: Arc::new(AtomicU64::new(0)),
            candidates_charged: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the total number of search-node expansions (shared across every
    /// clone of this budget).
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Caps the total number of candidate extensions counted (shared across
    /// every clone of this budget).
    pub fn with_max_candidates(mut self, max_candidates: u64) -> Self {
        self.max_candidates = Some(max_candidates);
        self
    }

    /// Uses an external cancellation token (e.g. one flipped by a signal
    /// handler) instead of the budget's private one.
    pub fn with_token(mut self, token: CancellationToken) -> Self {
        self.cancel = token;
        self
    }

    /// Sets how many node expansions may pass between wall-clock deadline
    /// checks (clamped to at least 1). Smaller strides react faster but
    /// call `Instant::now` more often.
    pub fn with_check_stride(mut self, stride: u64) -> Self {
        self.check_stride = stride.max(1);
        self
    }

    /// A clone of the cancellation token, for handing to signal handlers or
    /// other controllers.
    pub fn token(&self) -> CancellationToken {
        self.cancel.clone()
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The configured node cap, if any.
    pub fn max_nodes(&self) -> Option<u64> {
        self.max_nodes
    }

    /// The configured candidate cap, if any.
    pub fn max_candidates(&self) -> Option<u64> {
        self.max_candidates
    }

    /// The deadline check stride.
    pub fn check_stride(&self) -> u64 {
        self.check_stride
    }

    /// Nodes charged so far across every clone of this budget.
    pub fn nodes_charged(&self) -> u64 {
        self.nodes_charged.load(Ordering::Relaxed)
    }

    /// Whether no limit is configured (the token can still cancel the run).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_nodes.is_none() && self.max_candidates.is_none()
    }

    /// Non-charging probe: the status a run should stop with right now, if
    /// any. Used by coarse-grained loops (e.g. per-candidate probabilistic
    /// evaluation) where per-item `Instant::now` calls are affordable.
    pub fn exceeded(&self) -> Option<Termination> {
        if self.cancel.is_cancelled() {
            return Some(Termination::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(Termination::DeadlineExceeded);
            }
        }
        if let Some(m) = self.max_nodes {
            if self.nodes_charged.load(Ordering::Relaxed) >= m {
                return Some(Termination::NodeBudgetExceeded);
            }
        }
        if let Some(m) = self.max_candidates {
            if self.candidates_charged.load(Ordering::Relaxed) >= m {
                return Some(Termination::CandidateBudgetExceeded);
            }
        }
        None
    }

    /// Charges one node expansion against the shared counter. `Err` when
    /// the node budget is already spent; the caller must stop *before*
    /// performing the expansion, which keeps per-run node counters at or
    /// below the cap.
    fn charge_node(&self) -> Result<(), Termination> {
        if let Some(m) = self.max_nodes {
            if self.nodes_charged.fetch_add(1, Ordering::Relaxed) >= m {
                return Err(Termination::NodeBudgetExceeded);
            }
        }
        Ok(())
    }

    /// Charges `n` counted candidates against the shared counter.
    fn charge_candidates(&self, n: u64) -> Result<(), Termination> {
        if let Some(m) = self.max_candidates {
            if self.candidates_charged.fetch_add(n, Ordering::Relaxed) + n > m {
                return Err(Termination::CandidateBudgetExceeded);
            }
        }
        Ok(())
    }
}

/// Per-worker budget handle: amortizes the wall-clock deadline check to one
/// `Instant::now` call every [`check_stride`](MiningBudget::check_stride)
/// node expansions, while cancellation and the (atomic-counter) node and
/// candidate budgets are checked on every charge.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: MiningBudget,
    until_deadline_check: u64,
}

impl BudgetMeter {
    /// Wraps a budget. Meters of clones of one budget share its counters
    /// and token but amortize deadline checks independently.
    pub fn new(budget: MiningBudget) -> Self {
        Self {
            budget,
            until_deadline_check: 0,
        }
    }

    /// The underlying budget.
    pub fn budget(&self) -> &MiningBudget {
        &self.budget
    }

    /// Called once before each node expansion. `Err` means the run must
    /// unwind with the given status, *without* performing the expansion.
    ///
    /// The very first call always checks the deadline, so a run whose
    /// deadline has already passed stops without exploring a single node.
    pub fn on_node(&mut self) -> Result<(), Termination> {
        if self.budget.cancel.is_cancelled() {
            return Err(Termination::Cancelled);
        }
        self.budget.charge_node()?;
        if self.until_deadline_check == 0 {
            self.until_deadline_check = self.budget.check_stride;
            if let Some(d) = self.budget.deadline {
                if Instant::now() >= d {
                    return Err(Termination::DeadlineExceeded);
                }
            }
        }
        self.until_deadline_check -= 1;
        Ok(())
    }

    /// Called after counting a node's candidate extensions. `Err` means the
    /// candidate budget is spent and the run must unwind.
    pub fn on_candidates(&mut self, n: u64) -> Result<(), Termination> {
        self.budget.charge_candidates(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = MiningBudget::default();
        assert!(b.is_unlimited());
        assert_eq!(b.exceeded(), None);
        let mut meter = BudgetMeter::new(b);
        for _ in 0..10_000 {
            assert!(meter.on_node().is_ok());
        }
    }

    #[test]
    fn node_budget_trips_exactly_at_cap() {
        let budget = MiningBudget::unlimited().with_max_nodes(5);
        let mut meter = BudgetMeter::new(budget.clone());
        for _ in 0..5 {
            assert!(meter.on_node().is_ok());
        }
        assert_eq!(meter.on_node(), Err(Termination::NodeBudgetExceeded));
        assert_eq!(budget.exceeded(), Some(Termination::NodeBudgetExceeded));
    }

    #[test]
    fn node_budget_is_shared_across_clones() {
        let budget = MiningBudget::unlimited().with_max_nodes(6);
        let mut a = BudgetMeter::new(budget.clone());
        let mut b = BudgetMeter::new(budget);
        for _ in 0..3 {
            assert!(a.on_node().is_ok());
            assert!(b.on_node().is_ok());
        }
        assert!(a.on_node().is_err());
        assert!(b.on_node().is_err());
    }

    #[test]
    fn expired_deadline_trips_on_first_node() {
        let budget = MiningBudget::unlimited().with_deadline(Instant::now());
        let mut meter = BudgetMeter::new(budget);
        assert_eq!(meter.on_node(), Err(Termination::DeadlineExceeded));
    }

    #[test]
    fn cancellation_is_observed_by_clones() {
        let token = CancellationToken::new();
        let budget = MiningBudget::unlimited().with_token(token.clone());
        let mut meter = BudgetMeter::new(budget.clone());
        assert!(meter.on_node().is_ok());
        token.cancel();
        assert_eq!(meter.on_node(), Err(Termination::Cancelled));
        assert_eq!(budget.exceeded(), Some(Termination::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn candidate_budget_trips() {
        let budget = MiningBudget::unlimited().with_max_candidates(10);
        let mut meter = BudgetMeter::new(budget);
        assert!(meter.on_candidates(4).is_ok());
        assert!(meter.on_candidates(6).is_ok());
        assert_eq!(
            meter.on_candidates(1),
            Err(Termination::CandidateBudgetExceeded)
        );
    }

    #[test]
    fn merge_prefers_the_more_abnormal_status() {
        use Termination::*;
        assert_eq!(Complete.merge(Complete), Complete);
        assert_eq!(Complete.merge(DeadlineExceeded), DeadlineExceeded);
        assert_eq!(NodeBudgetExceeded.merge(Complete), NodeBudgetExceeded);
        assert_eq!(Cancelled.merge(DeadlineExceeded), Cancelled);
        let failed = WorkerFailed {
            roots: vec![SymbolId(3)],
        };
        assert_eq!(failed.clone().merge(Cancelled), failed);
        let both = WorkerFailed {
            roots: vec![SymbolId(7), SymbolId(3)],
        }
        .merge(WorkerFailed {
            roots: vec![SymbolId(3), SymbolId(1)],
        });
        assert_eq!(
            both,
            WorkerFailed {
                roots: vec![SymbolId(1), SymbolId(3), SymbolId(7)],
            }
        );
    }

    #[test]
    fn termination_display_is_human_readable() {
        assert_eq!(Termination::Complete.to_string(), "complete");
        assert_eq!(
            Termination::WorkerFailed {
                roots: vec![SymbolId(1), SymbolId(4)]
            }
            .to_string(),
            "worker failed (lost roots: 1, 4)"
        );
    }

    #[test]
    fn check_stride_amortizes_deadline_checks() {
        // A deadline in the past with a large stride still trips on the
        // first call (the meter always checks at node 0), and a fresh meter
        // over a future deadline does not trip.
        let past = MiningBudget::unlimited()
            .with_deadline(Instant::now())
            .with_check_stride(1_000_000);
        assert_eq!(
            BudgetMeter::new(past).on_node(),
            Err(Termination::DeadlineExceeded)
        );
        let future = MiningBudget::unlimited().with_timeout(Duration::from_secs(3600));
        let mut meter = BudgetMeter::new(future);
        for _ in 0..5000 {
            assert!(meter.on_node().is_ok());
        }
    }

    #[test]
    fn zero_stride_is_clamped() {
        let b = MiningBudget::unlimited().with_check_stride(0);
        assert_eq!(b.check_stride(), 1);
    }
}
