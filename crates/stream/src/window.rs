//! Sliding-window interval database fed by a stream of events.
//!
//! [`SlidingWindowDatabase`] ingests [`StreamEvent`]s and maintains, at all
//! times, the interval database induced by the current window `[watermark −
//! window, watermark]`:
//!
//! - `open`/`close` events buffer *open* intervals per `(sequence, symbol)`
//!   until the close arrives; only completed intervals are minable;
//! - watermarks advance event time and trigger **eviction**: a completed
//!   interval is expired exactly when `end < watermark − window` (it lies
//!   entirely before the window), and a sequence is dropped once it has
//!   neither live intervals nor open ones;
//! - per-symbol sequence-level support counts are maintained
//!   *incrementally* on every insert/evict (tested against from-scratch
//!   rebuilds), and per-sequence endpoint indexes ([`SeqIndex`]) are cached
//!   and invalidated only for sequences that actually changed.
//!
//! Open intervals are never evicted: a watermark `w` promises all endpoints
//! `< w` have been delivered, so an interval still open at `w` must close at
//! some `end ≥ w`, which is inside every window ending at `w`.
//!
//! The window also tracks which *root symbols* are dirty since the last
//! [`take_dirty`](SlidingWindowDatabase::take_dirty): whenever a sequence
//! changes, every symbol present in it before or after the change is marked.
//! [`IncrementalMiner`](crate::IncrementalMiner) re-mines only those
//! partitions; see `docs/ALGORITHMS.md` for why that is sufficient.

use std::collections::BTreeSet;
use std::sync::Arc;

use interval_core::{
    EventInterval, IntervalDatabase, IntervalError, IntervalSequence, Result, SequenceId,
    StreamEvent, SymbolId, SymbolTable, Time,
};
use serde::Serialize;
use tpminer::SeqIndex;

/// Counters describing everything a window has ingested and evicted.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct IngestStats {
    /// Events accepted by [`SlidingWindowDatabase::ingest`].
    pub events: u64,
    /// Intervals completed (a matched open/close pair or an `interval`
    /// record).
    pub intervals_completed: u64,
    /// Completed intervals that were already expired on arrival
    /// (`end < watermark − window`) and were dropped without entering the
    /// window.
    pub late_intervals_dropped: u64,
    /// Intervals evicted by watermark advancement.
    pub intervals_evicted: u64,
    /// Sequences dropped entirely (no live or open intervals left).
    pub sequences_evicted: u64,
    /// Watermarks that regressed (ignored, counted for observability).
    pub watermark_regressions: u64,
}

/// Looks up `key` in a `SymbolId`-sorted association list.
#[inline]
fn assoc_get_mut<V>(list: &mut [(SymbolId, V)], key: SymbolId) -> Option<&mut V> {
    match list.binary_search_by_key(&key, |(k, _)| *k) {
        Ok(pos) => Some(&mut list[pos].1),
        Err(_) => None,
    }
}

/// Returns the entry for `key`, inserting a default at its sorted position
/// when absent.
#[inline]
fn assoc_entry<V: Default>(list: &mut Vec<(SymbolId, V)>, key: SymbolId) -> &mut V {
    let pos = match list.binary_search_by_key(&key, |(k, _)| *k) {
        Ok(pos) => pos,
        Err(pos) => {
            list.insert(pos, (key, V::default()));
            pos
        }
    };
    &mut list[pos].1
}

/// Per-sequence state: completed in-window intervals, open intervals and the
/// bookkeeping that makes support maintenance and index reuse incremental.
///
/// The per-sequence symbol alphabet is tiny (a handful of symbols out of a
/// possibly large universe), so the per-symbol tables are `SymbolId`-sorted
/// flat vectors — binary-searched on access, iterated in deterministic
/// order, no hashing on the refresh path (this file is on the hot-path
/// list of `cargo run -p xlint`).
#[derive(Debug, Default)]
struct SeqState {
    /// Completed intervals currently in the window (insertion order; sorted
    /// by the index build).
    intervals: Vec<EventInterval>,
    /// Number of completed intervals per symbol (support bookkeeping),
    /// sorted by symbol.
    symbol_counts: Vec<(SymbolId, u32)>,
    /// Start times of currently-open intervals per symbol, sorted by symbol.
    open: Vec<(SymbolId, Vec<Time>)>,
    /// Cached endpoint index; invalidated whenever `intervals` changes.
    cached: Option<Arc<SeqIndex>>,
}

impl SeqState {
    fn open_count(&self) -> usize {
        self.open.iter().map(|(_, opens)| opens.len()).sum()
    }

    fn is_exhausted(&self) -> bool {
        self.intervals.is_empty() && self.open.iter().all(|(_, opens)| opens.is_empty())
    }

    /// The symbols with at least one completed interval, in sorted order.
    fn symbols(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.symbol_counts.iter().map(|&(s, _)| s)
    }
}

/// A sliding-window interval database maintained incrementally from a
/// [`StreamEvent`] stream.
///
/// ```
/// use interval_core::StreamEvent;
/// use stream::SlidingWindowDatabase;
///
/// let mut w = SlidingWindowDatabase::new(100);
/// w.ingest(StreamEvent::Interval { sequence: 1, symbol: "fever".into(), start: 0, end: 10 })
///     .unwrap();
/// w.ingest(StreamEvent::Watermark(50)).unwrap();
/// assert_eq!(w.len(), 1);
/// // The watermark reaching 111 pushes [0, 10) entirely out of the window.
/// w.ingest(StreamEvent::Watermark(111)).unwrap();
/// assert_eq!(w.len(), 0);
/// ```
#[derive(Debug)]
pub struct SlidingWindowDatabase {
    window: Time,
    watermark: Option<Time>,
    symbols: SymbolTable,
    /// Live sequences, sorted by `SequenceId` (binary-searched on ingest,
    /// iterated in id order for snapshots).
    sequences: Vec<(SequenceId, SeqState)>,
    /// Sequence-level support of every symbol — the number of sequences with
    /// at least one completed in-window interval carrying it — as a dense
    /// table indexed by [`SymbolId::index`]. Slots decay to zero on eviction
    /// and are never removed; the symbol table only grows.
    support: Vec<usize>,
    /// Root symbols touched by any sequence change since `take_dirty`.
    dirty: BTreeSet<SymbolId>,
    /// When `Some`, intervals leaving the window (watermark eviction and
    /// late drops) are captured here instead of vanishing, so a persistence
    /// layer can spill them to cold storage. `None` (the default) keeps the
    /// historical fire-and-forget behaviour with zero overhead.
    evicted: Option<Vec<(SequenceId, EventInterval)>>,
    stats: IngestStats,
}

/// Returns the state for `sequence`, inserting an empty one at its sorted
/// position when absent.
fn seq_entry(sequences: &mut Vec<(SequenceId, SeqState)>, sequence: SequenceId) -> &mut SeqState {
    let pos = match sequences.binary_search_by_key(&sequence, |(id, _)| *id) {
        Ok(pos) => pos,
        Err(pos) => {
            sequences.insert(pos, (sequence, SeqState::default()));
            pos
        }
    };
    &mut sequences[pos].1
}

/// Returns the dense support slot for `symbol`, growing the table on demand.
fn support_slot(support: &mut Vec<usize>, symbol: SymbolId) -> &mut usize {
    let idx = symbol.index();
    if idx >= support.len() {
        support.resize(idx + 1, 0);
    }
    &mut support[idx]
}

impl SlidingWindowDatabase {
    /// Creates a window of the given length (in stream time units).
    ///
    /// # Panics
    /// Panics when `window <= 0`.
    pub fn new(window: Time) -> Self {
        assert!(window > 0, "window length must be positive");
        Self {
            window,
            watermark: None,
            symbols: SymbolTable::new(),
            sequences: Vec::new(),
            support: Vec::new(),
            dirty: BTreeSet::new(),
            evicted: None,
            stats: IngestStats::default(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> Time {
        self.window
    }

    /// The highest watermark observed, if any.
    pub fn watermark(&self) -> Option<Time> {
        self.watermark
    }

    /// Lower edge of the current window (`watermark − window`), if a
    /// watermark has been observed. Completed intervals with `end` before
    /// this instant are expired.
    pub fn cutoff(&self) -> Option<Time> {
        self.watermark.map(|w| w.saturating_sub(self.window))
    }

    /// The symbol table shared by all sequences (grows monotonically).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Ingestion/eviction counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Number of sequences with at least one completed in-window interval
    /// (the size of the minable database).
    pub fn len(&self) -> usize {
        self.sequences
            .iter()
            .filter(|(_, s)| !s.intervals.is_empty())
            .count()
    }

    /// Whether no sequence has a completed in-window interval.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of currently-open (unclosed) intervals.
    pub fn open_intervals(&self) -> usize {
        self.sequences.iter().map(|(_, s)| s.open_count()).sum()
    }

    /// Sequence-level support of `symbol` in the current window.
    pub fn support(&self, symbol: SymbolId) -> usize {
        self.support.get(symbol.index()).copied().unwrap_or(0)
    }

    /// All non-zero per-symbol support counts, in `SymbolId` order.
    pub fn support_counts(&self) -> impl Iterator<Item = (SymbolId, usize)> + '_ {
        self.support
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(idx, &count)| (SymbolId(idx as u32), count))
    }

    /// Drains the set of dirty root symbols accumulated since the previous
    /// call: every symbol that occurred (before or after the change) in any
    /// sequence whose in-window intervals changed.
    pub fn take_dirty(&mut self) -> Vec<SymbolId> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// Turns capture of expiring intervals on or off.
    ///
    /// With capture on, every interval that leaves the window — evicted by
    /// a watermark or dropped on arrival because it was already expired —
    /// is recorded with its sequence id and can be drained with
    /// [`take_evicted`](Self::take_evicted). Turning capture off discards
    /// anything not yet drained.
    pub fn retain_evicted(&mut self, on: bool) {
        self.evicted = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the intervals captured since the previous call (empty unless
    /// [`retain_evicted`](Self::retain_evicted) is on).
    pub fn take_evicted(&mut self) -> Vec<(SequenceId, EventInterval)> {
        match self.evicted.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// All completed in-window intervals with their sequence ids, in
    /// `SequenceId` order. Non-draining: the window is unchanged. Used by
    /// the persistence layer to spill the final (never-to-be-evicted)
    /// window contents at shutdown so cold storage covers every interval.
    pub fn completed_intervals(&self) -> impl Iterator<Item = (SequenceId, EventInterval)> + '_ {
        self.sequences
            .iter()
            .flat_map(|(id, s)| s.intervals.iter().map(move |iv| (*id, *iv)))
    }

    /// Applies one stream event.
    ///
    /// Errors leave the window unchanged: a close without a matching open or
    /// with a non-positive duration is [`IntervalError::InconsistentStream`];
    /// degenerate `interval` records are rejected as in the batch model.
    /// Regressing watermarks are ignored (counted in
    /// [`IngestStats::watermark_regressions`]).
    pub fn ingest(&mut self, event: StreamEvent) -> Result<()> {
        match event {
            StreamEvent::Open {
                sequence,
                symbol,
                at,
            } => {
                let id = self.symbols.intern(&symbol);
                let seq = seq_entry(&mut self.sequences, sequence);
                assoc_entry(&mut seq.open, id).push(at);
            }
            StreamEvent::Close {
                sequence,
                symbol,
                at,
            } => {
                let id = self.symbols.intern(&symbol);
                let start = self.pop_open(sequence, id, &symbol, at)?;
                let interval = EventInterval::new_unchecked(id, start, at);
                self.complete(sequence, interval);
            }
            StreamEvent::Interval {
                sequence,
                symbol,
                start,
                end,
            } => {
                let id = self.symbols.intern(&symbol);
                let interval = EventInterval::new(id, start, end)?;
                self.complete(sequence, interval);
            }
            StreamEvent::Watermark(at) => self.advance_watermark(at),
        }
        self.stats.events += 1;
        Ok(())
    }

    /// Matches a close event to the earliest open interval of the symbol.
    fn pop_open(
        &mut self,
        sequence: SequenceId,
        id: SymbolId,
        symbol: &str,
        at: Time,
    ) -> Result<Time> {
        let opens = match self
            .sequences
            .binary_search_by_key(&sequence, |(id, _)| *id)
        {
            Ok(pos) => assoc_get_mut(&mut self.sequences[pos].1.open, id),
            Err(_) => None,
        }
        .filter(|opens| !opens.is_empty())
        .ok_or_else(|| {
            IntervalError::InconsistentStream(format!(
                "close of {symbol:?} at {at} in sequence {sequence} has no open interval"
            ))
        })?;
        // FIFO: a close finishes the *earliest* still-open interval of the
        // symbol, which keeps concurrent same-symbol intervals well nested.
        let mut earliest = 0;
        for (i, &start) in opens.iter().enumerate() {
            if start < opens[earliest] {
                earliest = i;
            }
        }
        let start = opens[earliest];
        // Validate before removing so errors leave the window unchanged.
        if start >= at {
            return Err(IntervalError::InconsistentStream(format!(
                "close of {symbol:?} at {at} in sequence {sequence} precedes its open at {start}"
            )));
        }
        opens.swap_remove(earliest);
        Ok(start)
    }

    /// Adds a completed interval to its sequence, maintaining support counts
    /// and dirty roots.
    fn complete(&mut self, sequence: SequenceId, interval: EventInterval) {
        self.stats.intervals_completed += 1;
        if let Some(cutoff) = self.cutoff() {
            if interval.end < cutoff {
                self.stats.late_intervals_dropped += 1;
                // A late interval never enters the window, but it is still
                // real history: capture it for the persistence layer.
                if let Some(buf) = self.evicted.as_mut() {
                    buf.push((sequence, interval));
                }
                return;
            }
        }
        let seq = seq_entry(&mut self.sequences, sequence);
        seq.intervals.push(interval);
        seq.cached = None;
        let count = assoc_entry(&mut seq.symbol_counts, interval.symbol);
        *count += 1;
        if *count == 1 {
            *support_slot(&mut self.support, interval.symbol) += 1;
        }
        // The post-change symbol set of the sequence is a superset of the
        // pre-change one, so marking it covers both sides of the change.
        self.dirty.extend(seq.symbols());
    }

    /// Advances the watermark and evicts expired intervals and sequences.
    fn advance_watermark(&mut self, at: Time) {
        if self.watermark.is_some_and(|w| at < w) {
            self.stats.watermark_regressions += 1;
            return;
        }
        self.watermark = Some(at);
        let cutoff = at.saturating_sub(self.window);

        let mut evicted_intervals = 0u64;
        let mut evicted_sequences = 0u64;
        let support = &mut self.support;
        let dirty = &mut self.dirty;
        let evicted = &mut self.evicted;
        self.sequences.retain_mut(|(id, seq)| {
            let expired = seq.intervals.iter().any(|iv| iv.end < cutoff);
            if expired {
                // Pre-change symbol set is a superset of the post-change
                // one: mark it before removal.
                dirty.extend(seq.symbols());
                seq.cached = None;
                seq.intervals.retain(|iv| {
                    if iv.end >= cutoff {
                        return true;
                    }
                    evicted_intervals += 1;
                    if let Some(buf) = evicted.as_mut() {
                        buf.push((*id, *iv));
                    }
                    // Every in-window interval was counted on insert, so its
                    // symbol must be present in both tables.
                    match seq
                        .symbol_counts
                        .binary_search_by_key(&iv.symbol, |(s, _)| *s)
                    {
                        Ok(pos) => {
                            seq.symbol_counts[pos].1 -= 1;
                            if seq.symbol_counts[pos].1 == 0 {
                                seq.symbol_counts.remove(pos);
                                let slot = support_slot(support, iv.symbol);
                                debug_assert!(*slot > 0, "supported symbol has a count");
                                *slot = slot.saturating_sub(1);
                            }
                        }
                        Err(_) => debug_assert!(false, "present symbol has a count"),
                    }
                    false
                });
            }
            if seq.is_exhausted() {
                evicted_sequences += 1;
                false
            } else {
                true
            }
        });
        self.stats.intervals_evicted += evicted_intervals;
        self.stats.sequences_evicted += evicted_sequences;
    }

    /// Materializes the current window as a batch [`IntervalDatabase`]:
    /// one sequence (in `SequenceId` order) per sequence with at least one
    /// completed interval. Open intervals are excluded — they are not
    /// minable until closed.
    pub fn snapshot_database(&self) -> IntervalDatabase {
        let sequences = self
            .sequences
            .iter()
            .filter(|(_, s)| !s.intervals.is_empty())
            .map(|(_, s)| IntervalSequence::from_intervals(s.intervals.clone()))
            .collect();
        IntervalDatabase::from_parts(self.symbols.clone(), sequences)
    }

    /// Per-sequence endpoint indexes of the current window, in the same
    /// order as [`snapshot_database`](Self::snapshot_database). Indexes of
    /// unchanged sequences are reused from the cache; only sequences whose
    /// intervals changed since the last call are re-indexed.
    pub fn seq_indexes(&mut self) -> Vec<Arc<SeqIndex>> {
        self.sequences
            .iter_mut()
            .filter(|(_, s)| !s.intervals.is_empty())
            .map(|(_, s)| {
                s.cached
                    .get_or_insert_with(|| {
                        Arc::new(SeqIndex::from_sequence(&IntervalSequence::from_intervals(
                            s.intervals.clone(),
                        )))
                    })
                    .clone()
            })
            .collect()
    }

    /// Freezes the current window contents into an immutable refresh epoch.
    ///
    /// This is the copy-on-write handoff behind pipelined refreshes: the
    /// per-sequence endpoint indexes are shared with the live window as
    /// `Arc`s (only sequences that changed since the previous freeze are
    /// re-indexed; the rest are pointer copies), the accumulated dirty set
    /// is drained into the view, and the window immediately resumes
    /// mutation on the live side. Freezing costs O(changed sequences), not
    /// O(window).
    ///
    /// Ingesting further events after a freeze never mutates the frozen
    /// indexes — a sequence change replaces the cached `Arc` rather than
    /// writing through it — so a [`FrozenView`] stays valid for the whole
    /// refresh no matter how far the live window has moved on.
    pub fn freeze(&mut self) -> FrozenView {
        let dirty = self.take_dirty();
        let seq_indexes = self.seq_indexes();
        FrozenView {
            sequences: seq_indexes.len(),
            dirty,
            seq_indexes,
            watermark: self.watermark,
            window_start: self.cutoff(),
            symbols: self.symbols.clone(),
        }
    }
}

/// An immutable view of a [`SlidingWindowDatabase`] at one refresh epoch,
/// produced by [`SlidingWindowDatabase::freeze`].
///
/// The view owns everything a refresh needs — the dirty root set, the
/// per-sequence endpoint indexes (shared with the live window via `Arc`),
/// and the window metadata stamped onto the published snapshot — so it can
/// be shipped to a background [`RefreshWorker`](crate::RefreshWorker) while
/// ingestion keeps mutating the live side.
#[derive(Debug, Clone)]
pub struct FrozenView {
    dirty: Vec<SymbolId>,
    seq_indexes: Vec<Arc<SeqIndex>>,
    watermark: Option<Time>,
    window_start: Option<Time>,
    sequences: usize,
    symbols: SymbolTable,
}

impl FrozenView {
    /// Assembles a view directly from reconstructed parts, bypassing a live
    /// window. This is how cold storage re-enters the mining pipeline: a
    /// segment reader rebuilds per-sequence indexes for a historical range
    /// and wraps them in a view the existing
    /// [`IncrementalMiner`](crate::IncrementalMiner) can refresh against,
    /// with every symbol dirty (nothing is incremental about a cold load).
    pub fn from_parts(
        dirty: Vec<SymbolId>,
        seq_indexes: Vec<Arc<SeqIndex>>,
        watermark: Option<Time>,
        window_start: Option<Time>,
        symbols: SymbolTable,
    ) -> Self {
        FrozenView {
            sequences: seq_indexes.len(),
            dirty,
            seq_indexes,
            watermark,
            window_start,
            symbols,
        }
    }

    /// Root symbols dirtied since the previous freeze (drained from the
    /// window by [`SlidingWindowDatabase::freeze`]).
    pub fn dirty(&self) -> &[SymbolId] {
        &self.dirty
    }

    /// Per-sequence endpoint indexes of the frozen window, in `SequenceId`
    /// order (same order as
    /// [`snapshot_database`](SlidingWindowDatabase::snapshot_database)).
    pub fn seq_indexes(&self) -> &[Arc<SeqIndex>] {
        &self.seq_indexes
    }

    /// The watermark at freeze time.
    pub fn watermark(&self) -> Option<Time> {
        self.watermark
    }

    /// Lower edge of the frozen window (`watermark − window`), if a
    /// watermark had been observed.
    pub fn window_start(&self) -> Option<Time> {
        self.window_start
    }

    /// Number of minable sequences in the frozen window.
    pub fn sequences(&self) -> usize {
        self.sequences
    }

    /// The symbol table at freeze time.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(sequence: SequenceId, symbol: &str, start: Time, end: Time) -> StreamEvent {
        StreamEvent::Interval {
            sequence,
            symbol: symbol.into(),
            start,
            end,
        }
    }

    #[test]
    fn open_close_completes_an_interval() {
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(StreamEvent::Open {
            sequence: 1,
            symbol: "a".into(),
            at: 5,
        })
        .unwrap();
        assert_eq!(w.len(), 0, "open intervals are not minable");
        assert_eq!(w.open_intervals(), 1);
        w.ingest(StreamEvent::Close {
            sequence: 1,
            symbol: "a".into(),
            at: 9,
        })
        .unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.open_intervals(), 0);
        let db = w.snapshot_database();
        let a = db.symbols().lookup("a").unwrap();
        assert_eq!(
            db.sequences()[0].intervals(),
            &[EventInterval::new_unchecked(a, 5, 9)]
        );
    }

    #[test]
    fn close_matches_earliest_open_of_symbol() {
        let mut w = SlidingWindowDatabase::new(100);
        for at in [10, 2, 7] {
            w.ingest(StreamEvent::Open {
                sequence: 1,
                symbol: "a".into(),
                at,
            })
            .unwrap();
        }
        w.ingest(StreamEvent::Close {
            sequence: 1,
            symbol: "a".into(),
            at: 20,
        })
        .unwrap();
        let db = w.snapshot_database();
        assert_eq!(db.sequences()[0].intervals()[0].start, 2);
        assert_eq!(w.open_intervals(), 2);
    }

    #[test]
    fn close_without_open_is_rejected_and_harmless() {
        let mut w = SlidingWindowDatabase::new(100);
        let err = w
            .ingest(StreamEvent::Close {
                sequence: 1,
                symbol: "a".into(),
                at: 9,
            })
            .unwrap_err();
        assert!(matches!(err, IntervalError::InconsistentStream(_)));
        assert_eq!(w.stats().events, 0);

        w.ingest(StreamEvent::Open {
            sequence: 1,
            symbol: "a".into(),
            at: 5,
        })
        .unwrap();
        let err = w
            .ingest(StreamEvent::Close {
                sequence: 1,
                symbol: "a".into(),
                at: 5,
            })
            .unwrap_err();
        assert!(matches!(err, IntervalError::InconsistentStream(_)));
        // The open interval survives the failed close.
        assert_eq!(w.open_intervals(), 1);
        w.ingest(StreamEvent::Close {
            sequence: 1,
            symbol: "a".into(),
            at: 6,
        })
        .unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn watermark_evicts_expired_intervals_and_sequences() {
        let mut w = SlidingWindowDatabase::new(10);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(1, "b", 8, 20)).unwrap();
        w.ingest(interval(2, "a", 1, 4)).unwrap();
        w.ingest(StreamEvent::Watermark(12)).unwrap();
        // cutoff 2: nothing expired (ends 5, 20, 4 all >= 2).
        assert_eq!(w.len(), 2);

        w.ingest(StreamEvent::Watermark(16)).unwrap();
        // cutoff 6: [0,5) and [1,4) expire; sequence 2 is dropped.
        assert_eq!(w.len(), 1);
        let a = w.symbols().lookup("a").unwrap();
        let b = w.symbols().lookup("b").unwrap();
        assert_eq!(w.support(a), 0);
        assert_eq!(w.support(b), 1);
        assert_eq!(w.stats().intervals_evicted, 2);
        assert_eq!(w.stats().sequences_evicted, 1);
    }

    #[test]
    fn interval_spanning_the_cutoff_stays_live() {
        let mut w = SlidingWindowDatabase::new(10);
        w.ingest(interval(1, "a", 0, 100)).unwrap();
        w.ingest(StreamEvent::Watermark(90)).unwrap();
        assert_eq!(w.len(), 1, "end 100 >= cutoff 80 keeps it live");
        w.ingest(StreamEvent::Watermark(111)).unwrap();
        assert_eq!(w.len(), 0, "end 100 < cutoff 101 expires it");
    }

    #[test]
    fn open_intervals_survive_eviction() {
        let mut w = SlidingWindowDatabase::new(10);
        w.ingest(StreamEvent::Open {
            sequence: 1,
            symbol: "a".into(),
            at: 0,
        })
        .unwrap();
        w.ingest(StreamEvent::Watermark(1_000)).unwrap();
        assert_eq!(w.open_intervals(), 1);
        // Closing far in the future completes a live interval.
        w.ingest(StreamEvent::Close {
            sequence: 1,
            symbol: "a".into(),
            at: 1_005,
        })
        .unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn late_intervals_are_dropped() {
        let mut w = SlidingWindowDatabase::new(10);
        w.ingest(StreamEvent::Watermark(100)).unwrap();
        w.ingest(interval(1, "a", 0, 5)).unwrap(); // end 5 < cutoff 90
        assert_eq!(w.len(), 0);
        assert_eq!(w.stats().late_intervals_dropped, 1);
    }

    #[test]
    fn regressing_watermark_is_ignored() {
        let mut w = SlidingWindowDatabase::new(10);
        w.ingest(interval(1, "a", 95, 99)).unwrap();
        w.ingest(StreamEvent::Watermark(100)).unwrap();
        w.ingest(StreamEvent::Watermark(40)).unwrap();
        assert_eq!(w.watermark(), Some(100));
        assert_eq!(w.stats().watermark_regressions, 1);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn support_counts_match_rebuild() {
        let mut w = SlidingWindowDatabase::new(15);
        let events = [
            interval(1, "a", 0, 5),
            interval(1, "a", 2, 8),
            interval(2, "a", 0, 6),
            interval(2, "b", 3, 9),
            StreamEvent::Watermark(12),
            interval(3, "b", 10, 14),
            StreamEvent::Watermark(22),
        ];
        for e in events {
            w.ingest(e).unwrap();
        }
        let db = w.snapshot_database();
        for (id, _) in w.symbols().iter() {
            let rebuilt = db
                .sequences()
                .iter()
                .filter(|s| s.intervals().iter().any(|iv| iv.symbol == id))
                .count();
            assert_eq!(w.support(id), rebuilt, "support of {id:?} drifted");
        }
    }

    #[test]
    fn dirty_symbols_cover_changed_sequences() {
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(1, "b", 2, 8)).unwrap();
        w.ingest(interval(2, "c", 0, 5)).unwrap();
        let a = w.symbols().lookup("a").unwrap();
        let b = w.symbols().lookup("b").unwrap();
        let c = w.symbols().lookup("c").unwrap();
        assert_eq!(w.take_dirty(), vec![a, b, c]);
        assert!(w.take_dirty().is_empty(), "drained");

        // Touching sequence 1 dirties a and b, not c.
        w.ingest(interval(1, "a", 3, 9)).unwrap();
        assert_eq!(w.take_dirty(), vec![a, b]);
    }

    #[test]
    fn eviction_marks_pre_change_symbols_dirty() {
        let mut w = SlidingWindowDatabase::new(10);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(1, "b", 8, 30)).unwrap();
        w.ingest(StreamEvent::Watermark(9)).unwrap();
        let _ = w.take_dirty();
        // cutoff 10: [0,5) of "a" expires; both a and b were present.
        w.ingest(StreamEvent::Watermark(20)).unwrap();
        let a = w.symbols().lookup("a").unwrap();
        let b = w.symbols().lookup("b").unwrap();
        assert_eq!(w.take_dirty(), vec![a, b]);
    }

    #[test]
    fn seq_indexes_are_cached_until_change() {
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(2, "b", 1, 6)).unwrap();
        let first = w.seq_indexes();
        let second = w.seq_indexes();
        assert!(Arc::ptr_eq(&first[0], &second[0]));
        assert!(Arc::ptr_eq(&first[1], &second[1]));

        w.ingest(interval(1, "a", 2, 7)).unwrap();
        let third = w.seq_indexes();
        assert!(!Arc::ptr_eq(&first[0], &third[0]), "changed: rebuilt");
        assert!(Arc::ptr_eq(&first[1], &third[1]), "unchanged: reused");
    }

    #[test]
    fn retain_evicted_captures_evictions_and_late_drops() {
        let mut w = SlidingWindowDatabase::new(10);
        w.retain_evicted(true);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(2, "b", 1, 4)).unwrap();
        // cutoff 6: both expire.
        w.ingest(StreamEvent::Watermark(16)).unwrap();
        // end 2 < cutoff 6: dropped on arrival, still captured.
        w.ingest(interval(3, "c", 0, 2)).unwrap();

        let a = w.symbols().lookup("a").unwrap();
        let b = w.symbols().lookup("b").unwrap();
        let c = w.symbols().lookup("c").unwrap();
        let captured = w.take_evicted();
        assert_eq!(
            captured,
            vec![
                (1, EventInterval::new_unchecked(a, 0, 5)),
                (2, EventInterval::new_unchecked(b, 1, 4)),
                (3, EventInterval::new_unchecked(c, 0, 2)),
            ]
        );
        assert!(w.take_evicted().is_empty(), "drained");

        // Capture off: evictions vanish again.
        w.retain_evicted(false);
        w.ingest(interval(4, "a", 10, 12)).unwrap();
        w.ingest(StreamEvent::Watermark(30)).unwrap();
        assert!(w.take_evicted().is_empty());
    }

    #[test]
    fn completed_intervals_lists_the_window_without_draining() {
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(5, "b", 1, 6)).unwrap();
        w.ingest(interval(2, "a", 0, 5)).unwrap();
        let listed: Vec<_> = w.completed_intervals().collect();
        let a = w.symbols().lookup("a").unwrap();
        let b = w.symbols().lookup("b").unwrap();
        assert_eq!(
            listed,
            vec![
                (2, EventInterval::new_unchecked(a, 0, 5)),
                (5, EventInterval::new_unchecked(b, 1, 6)),
            ]
        );
        assert_eq!(w.len(), 2, "non-draining");
    }

    #[test]
    fn snapshot_matches_seq_indexes_order() {
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(5, "b", 1, 6)).unwrap();
        w.ingest(interval(2, "a", 0, 5)).unwrap();
        let db = w.snapshot_database();
        let idx = w.seq_indexes();
        assert_eq!(db.len(), idx.len());
        // Sequence-id order: 2 before 5.
        let a = db.symbols().lookup("a").unwrap();
        assert_eq!(db.sequences()[0].intervals()[0].symbol, a);
        assert_eq!(idx[0].symbols_sorted(), &[a]);
    }
}
