//! Sharded refresh pool: long-lived mining workers for one refresh epoch.
//!
//! A single [`RefreshWorker`](crate::RefreshWorker) thread mines every
//! refresh alone, so refresh latency is bound by one core no matter how
//! many the host has. The [`ShardPool`] scales the *mine* half of a
//! refresh across N long-lived worker threads: the epoch's dirty roots are
//! split into N shards with the same LPT scheduling the offline miner uses
//! ([`tpminer::lpt_shards`] — heaviest estimated subtree first, each root
//! to the least-loaded shard), each worker mines its shard on its own
//! thread ([`ParallelTpMiner::mine_shard`]), and the outcomes merge into
//! one canonical result ([`ParallelTpMiner::merge_shards`]).
//!
//! # Bit parity
//!
//! The merged result is bit-identical to a single
//! [`mine_partitions`](ParallelTpMiner::mine_partitions) call over the
//! same roots, for every pool size: per-root mining is deterministic, the
//! shards partition the roots exactly, counters merge additively, and the
//! merge sorts patterns canonically. `tests/streaming_pipeline.rs`
//! property-tests the pipelined pooled path against the synchronous path
//! for pool sizes 1, 2 and 8.
//!
//! # Fault isolation
//!
//! Subtree panics are already contained per root inside the engine; the
//! pool additionally wraps each whole shard in `catch_unwind`, so even a
//! panic outside subtree expansion (index pathology, allocation failure
//! unwound as panic) degrades to a [`ShardOutcome::failed`] report naming
//! the shard's roots — the refresh still publishes, with
//! `Termination::WorkerFailed` listing exactly what was lost, and the
//! worker thread survives to serve the next epoch.
//!
//! This module is on the sanctioned-spawn list of `cargo run -p xlint`
//! (`no-raw-spawn`): pool workers are long-lived, bounded-channel-fed and
//! joined on drop, the lifecycle the lint exists to keep reviewable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use interval_core::{MiningBudget, SymbolId};
use tpminer::{lpt_shards, DbIndex, MinerConfig, MiningResult, ParallelTpMiner, ShardOutcome};

/// One shard of a refresh epoch, handed to a pool worker.
struct ShardJob {
    index: Arc<DbIndex>,
    roots: Vec<SymbolId>,
    config: MinerConfig,
    budget: MiningBudget,
    shard: usize,
    reply: mpsc::Sender<(usize, ShardOutcome)>,
}

/// A pool of long-lived shard-mining threads.
///
/// The pool is owned by whoever drives refreshes (the
/// [`RefreshWorker`](crate::RefreshWorker) dispatcher thread, or a caller
/// running synchronous refreshes) and is reused across epochs: workers
/// park on their job channel between refreshes, so a refresh pays no
/// spawn cost. Dropping the pool closes the channels and joins every
/// worker.
pub struct ShardPool {
    senders: Vec<SyncSender<ShardJob>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns a pool of `workers` shard miners (0 is clamped to 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::sync_channel::<ShardJob>(1);
            let handle = std::thread::spawn(move || {
                // `recv` drains a buffered job before reporting disconnect,
                // so dropping the pool lets in-flight shards finish first.
                while let Ok(job) = rx.recv() {
                    let ShardJob {
                        index,
                        roots,
                        config,
                        budget,
                        shard,
                        reply,
                    } = job;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        ParallelTpMiner::new(config, 1)
                            .with_budget(budget)
                            .mine_shard(&index, &roots)
                    }))
                    .unwrap_or_else(|_panic| ShardOutcome::failed(roots));
                    // The dispatcher stops collecting on its own failure
                    // paths; a dead reply channel just discards the shard.
                    let _ = reply.send((shard, outcome));
                }
            });
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Mines the level-1 subtrees rooted at `roots`, split across the
    /// pool, and merges the shards into one canonical [`MiningResult`] —
    /// bit-identical to
    /// [`mine_partitions`](ParallelTpMiner::mine_partitions) over the same
    /// roots (see the module docs). A shard whose worker died (or whose
    /// reply never arrived) is reported as lost via
    /// `Termination::WorkerFailed` instead of failing the refresh.
    pub fn mine_sharded(
        &self,
        index: &Arc<DbIndex>,
        roots: &[SymbolId],
        config: MinerConfig,
        budget: MiningBudget,
    ) -> MiningResult {
        if roots.is_empty() {
            return ParallelTpMiner::merge_shards(Vec::new());
        }
        let bins = lpt_shards(index, roots, self.senders.len());
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut slots: Vec<Option<ShardOutcome>> = Vec::with_capacity(bins.len());
        let mut expected = 0usize;
        for (shard, bin) in bins.iter().enumerate() {
            slots.push(None);
            let job = ShardJob {
                index: Arc::clone(index),
                roots: bin.clone(),
                config,
                budget: budget.clone(),
                shard,
                reply: reply_tx.clone(),
            };
            // A dead worker (its thread exited) leaves the slot empty; the
            // shard is reported lost below rather than mined elsewhere, so
            // the failure stays visible instead of silently re-balancing.
            if self.senders[shard].send(job).is_ok() {
                expected += 1;
            }
        }
        drop(reply_tx);
        for _ in 0..expected {
            match reply_rx.recv() {
                Ok((shard, outcome)) => slots[shard] = Some(outcome),
                // Every outstanding reply sender died mid-shard.
                Err(_) => break,
            }
        }
        let outcomes = slots
            .into_iter()
            .zip(bins)
            .map(|(slot, bin)| slot.unwrap_or_else(|| ShardOutcome::failed(bin)))
            .collect();
        ParallelTpMiner::merge_shards(outcomes)
    }
}

impl Drop for ShardPool {
    /// Joining on drop keeps the no-detached-threads discipline; workers
    /// have no unbounded work (a shard is budget-observed like any mine),
    /// so the join is prompt.
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::{DatabaseBuilder, Termination};

    fn index() -> Arc<DbIndex> {
        let mut b = DatabaseBuilder::new();
        for i in 0..6i64 {
            b.sequence()
                .interval("A", i, i + 5)
                .interval("B", i + 3, i + 8)
                .interval("C", i + 6, i + 10);
        }
        Arc::new(DbIndex::build(&b.build()))
    }

    #[test]
    fn pool_matches_mine_partitions_at_every_size() {
        let index = index();
        let config = MinerConfig::with_min_support(2);
        let roots = index.frequent_symbols(2);
        let whole = ParallelTpMiner::new(config, 1).mine_partitions(&index, &roots);
        for workers in [1, 2, 3, 8] {
            let pool = ShardPool::new(workers);
            let mined = pool.mine_sharded(&index, &roots, config, MiningBudget::unlimited());
            assert_eq!(whole.patterns(), mined.patterns(), "workers={workers}");
            assert_eq!(whole.termination(), mined.termination());
        }
    }

    #[test]
    fn pool_is_reusable_across_epochs() {
        let index = index();
        let config = MinerConfig::with_min_support(2);
        let roots = index.frequent_symbols(2);
        let pool = ShardPool::new(2);
        let first = pool.mine_sharded(&index, &roots, config, MiningBudget::unlimited());
        let second = pool.mine_sharded(&index, &roots, config, MiningBudget::unlimited());
        assert_eq!(first.patterns(), second.patterns());
    }

    #[test]
    fn empty_roots_mine_to_an_empty_complete_result() {
        let pool = ShardPool::new(2);
        let mined = pool.mine_sharded(
            &index(),
            &[],
            MinerConfig::with_min_support(2),
            MiningBudget::unlimited(),
        );
        assert!(mined.is_empty());
        assert!(mined.is_exhaustive());
    }

    #[test]
    fn cancelled_budget_stops_every_shard() {
        let index = index();
        let config = MinerConfig::with_min_support(1);
        let pool = ShardPool::new(3);
        let budget = MiningBudget::unlimited();
        budget.token().cancel();
        let roots = index.frequent_symbols(1);
        let mined = pool.mine_sharded(&index, &roots, config, budget);
        assert_eq!(mined.termination(), &Termination::Cancelled);
    }
}
