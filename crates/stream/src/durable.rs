//! The streaming tier's durability hook: a [`Journal`] the ingest loop
//! writes through, and [`replay`] to rebuild a [`SlidingWindowDatabase`]
//! from a crashed journal.
//!
//! # Write-ahead contract
//!
//! The driver appends every event to the journal *before* handing it to
//! the window, so the log is always a superset of what the window
//! accepted. Replay re-runs the exact ingest semantics (late-completion
//! drops, watermark regressions, eviction), which makes the recovered
//! window bit-identical to the pre-crash one over the durable prefix —
//! including its support counts and [`IngestStats`] counters.
//!
//! # Graceful degradation
//!
//! Disks misbehave at the worst times, and a mining stream that dies
//! because `fsync` hiccupped is worse than one that keeps answering
//! queries from RAM. When a WAL write exhausts its
//! [`durability::RetryPolicy`], the journal latches a sticky **degraded**
//! flag and from then on accepts every append as a silent no-op: ingestion
//! continues, in-memory results stay correct and complete, and the
//! degradation is surfaced (never hidden) through
//! [`PipelineStats::wal_degraded`](crate::PipelineStats), the CLI
//! `pipeline:` summary and a dedicated exit code. The flag never clears
//! within a process — a log with a hole in it must not be resumed, only
//! recovered and restarted.
//!
//! [`IngestStats`]: crate::IngestStats

use std::path::Path;

use durability::{
    scan_wal, FsyncPolicy, RecoveryReport, StdFs, WalError, WalFs, WalOptions, WalStats, WalWriter,
};
use interval_core::{StreamEvent, Time};

use crate::window::SlidingWindowDatabase;

/// Counters describing what a [`Journal`] has done so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalStats {
    /// The underlying WAL's counters.
    pub wal: WalStats,
    /// Explicit flushes (buffer + fsync) that succeeded.
    pub flushes: u64,
    /// Appends accepted as no-ops after degradation.
    pub appends_skipped: u64,
    /// Whether the sticky degraded flag is set.
    pub degraded: bool,
}

/// A write-ahead journal for one stream, wrapping a [`WalWriter`] with the
/// degraded-mode contract described at the module level. Generic over the
/// filesystem so crash-point tests can inject faults.
pub struct Journal<F: WalFs = StdFs> {
    wal: WalWriter<F>,
    degraded_reason: Option<String>,
    flushes: u64,
    appends_skipped: u64,
}

impl Journal<StdFs> {
    /// Opens (or creates) a journal directory on the real filesystem,
    /// rotating segments every `window` of watermark progress so sealed
    /// segments line up with eviction epochs.
    pub fn open(
        dir: impl AsRef<Path>,
        window: Time,
        policy: FsyncPolicy,
    ) -> Result<Self, WalError> {
        let mut opts = WalOptions::new(window);
        opts.policy = policy;
        Ok(Journal::with_wal(WalWriter::open(dir.as_ref(), opts)?))
    }
}

impl<F: WalFs> Journal<F> {
    /// Wraps an already-open WAL writer.
    pub fn with_wal(wal: WalWriter<F>) -> Self {
        Journal {
            wal,
            degraded_reason: None,
            flushes: 0,
            appends_skipped: 0,
        }
    }

    /// Appends one event ahead of ingestion. Returns `false` when the
    /// event was *not* persisted — i.e. the journal is (or just became)
    /// degraded; ingestion must continue regardless.
    pub fn append(&mut self, event: &StreamEvent) -> bool {
        if self.degraded_reason.is_some() {
            self.appends_skipped += 1;
            return false;
        }
        match self.wal.append(event) {
            Ok(()) => true,
            Err(err) => {
                self.degraded_reason = Some(err.to_string());
                self.appends_skipped += 1;
                false
            }
        }
    }

    /// Pushes everything buffered to stable storage. Returns `false` (and
    /// degrades) on failure; a degraded journal reports `false` without
    /// touching the disk.
    pub fn flush(&mut self) -> bool {
        if self.degraded_reason.is_some() {
            return false;
        }
        match self.wal.flush() {
            Ok(()) => {
                self.flushes += 1;
                true
            }
            Err(err) => {
                self.degraded_reason = Some(err.to_string());
                false
            }
        }
    }

    /// Deletes sealed segments whose entire contents fell behind the
    /// eviction `cutoff`. Reclamation failures are deliberately swallowed:
    /// an undeleted old segment costs disk, not correctness.
    pub fn reclaim(&mut self, cutoff: Time) -> usize {
        self.wal.reclaim(cutoff).unwrap_or(0)
    }

    /// Whether the sticky degraded flag is set.
    pub fn is_degraded(&self) -> bool {
        self.degraded_reason.is_some()
    }

    /// Why the journal degraded, once it has.
    pub fn degraded_reason(&self) -> Option<&str> {
        self.degraded_reason.as_deref()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            wal: self.wal.stats(),
            flushes: self.flushes,
            appends_skipped: self.appends_skipped,
            degraded: self.degraded_reason.is_some(),
        }
    }
}

/// What [`replay`] rebuilt.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The reconstructed window, positioned exactly where the durable
    /// prefix of the log left it.
    pub window: SlidingWindowDatabase,
    /// The scan-level report (segments, torn tail, corruption, drops).
    pub report: RecoveryReport,
    /// Records that decoded cleanly but were refused by ingest semantics
    /// (e.g. a `close` whose `open` was never logged). The live run hit
    /// the same refusals, so this does not break replay equivalence.
    pub records_rejected: u64,
}

/// Replays the WAL under `dir` into a fresh window of length `window`,
/// using the real filesystem.
pub fn replay(dir: impl AsRef<Path>, window: Time) -> Result<ReplayOutcome, WalError> {
    replay_with(&StdFs, dir.as_ref(), window)
}

/// [`replay`] over an explicit filesystem (fault-injection tests).
pub fn replay_with<F: WalFs>(fs: &F, dir: &Path, window: Time) -> Result<ReplayOutcome, WalError> {
    let (events, report) = scan_wal(fs, dir)?;
    let mut db = SlidingWindowDatabase::new(window);
    let mut records_rejected = 0u64;
    for event in events {
        if db.ingest(event).is_err() {
            records_rejected += 1;
        }
    }
    Ok(ReplayOutcome {
        window: db,
        report,
        records_rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "stream-durable-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn interval(sequence: u64, symbol: &str, start: Time, end: Time) -> StreamEvent {
        StreamEvent::Interval {
            sequence,
            symbol: symbol.into(),
            start,
            end,
        }
    }

    #[test]
    fn journal_then_replay_rebuilds_the_window_exactly() {
        let dir = temp_dir("roundtrip");
        let events = vec![
            interval(1, "fever", 0, 5),
            interval(2, "fever", 1, 6),
            interval(1, "rash", 3, 9),
            StreamEvent::Watermark(12),
            interval(3, "fever", 30, 36),
            StreamEvent::Watermark(40),
        ];
        let mut live = SlidingWindowDatabase::new(20);
        let mut journal = Journal::open(&dir, 20, FsyncPolicy::Epoch).unwrap();
        for event in &events {
            assert!(journal.append(event));
            live.ingest(event.clone()).unwrap();
        }
        assert!(journal.flush());
        assert!(!journal.is_degraded());

        let outcome = replay(&dir, 20).unwrap();
        assert!(outcome.report.is_clean());
        assert_eq!(outcome.records_rejected, 0);
        assert_eq!(outcome.window.watermark(), live.watermark());
        assert_eq!(
            outcome.window.support_counts().collect::<Vec<_>>(),
            live.support_counts().collect::<Vec<_>>()
        );
        assert_eq!(outcome.window.stats(), live.stats());
        // Compare materialized contents by symbol *name* — the symbol
        // table's hash index makes raw Debug output order-unstable.
        let contents = |w: &SlidingWindowDatabase| {
            let db = w.snapshot_database();
            db.sequences()
                .iter()
                .map(|seq| {
                    seq.intervals()
                        .iter()
                        .map(|iv| (db.symbols().name(iv.symbol).to_owned(), iv.start, iv.end))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(contents(&outcome.window), contents(&live));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degraded_journal_keeps_accepting_appends_as_noops() {
        use durability::{FaultPlan, FaultyFs, RetryPolicy};

        let dir = temp_dir("degraded");
        let fs = FaultyFs::new(FaultPlan {
            fail_appends: true,
            ..FaultPlan::default()
        });
        let mut opts = WalOptions::new(20);
        opts.policy = FsyncPolicy::Always;
        opts.retry = RetryPolicy::none();
        let mut journal = Journal::with_wal(WalWriter::open_with(fs, &dir, opts).unwrap());

        let mut window = SlidingWindowDatabase::new(20);
        for i in 0..5u64 {
            let event = interval(i, "a", i as Time, i as Time + 3);
            journal.append(&event);
            window.ingest(event).unwrap();
        }
        // Degraded after the first failed append; nothing in-memory lost.
        assert!(journal.is_degraded());
        assert!(journal.degraded_reason().unwrap().contains("injected"));
        assert_eq!(window.len(), 5);
        let stats = journal.stats();
        assert_eq!(stats.appends_skipped, 5);
        assert!(!journal.flush(), "degraded flush must report failure");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_counts_rejected_records_without_dying() {
        let dir = temp_dir("rejects");
        let mut journal = Journal::open(&dir, 20, FsyncPolicy::Epoch).unwrap();
        // A close without its open: logged (write-ahead), refused by ingest.
        journal.append(&StreamEvent::Close {
            sequence: 1,
            symbol: "x".into(),
            at: 5,
        });
        journal.append(&interval(2, "y", 0, 4));
        journal.flush();
        let outcome = replay(&dir, 20).unwrap();
        assert_eq!(outcome.records_rejected, 1);
        assert_eq!(outcome.window.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
