//! Published mining snapshots and the cell readers load them from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};

use interval_core::{SymbolTable, Termination, Time};
use parking_lot::RwLock;
use serde::Serialize;
use tpminer::{MinerStats, MiningResult};

/// How a refresh produced its snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct RefreshStats {
    /// Whether this was a full re-mine (first refresh, changed threshold,
    /// or an explicit invalidation) rather than a dirty-partition refresh.
    pub full: bool,
    /// Number of root partitions re-mined.
    pub dirty_roots: usize,
    /// Patterns carried over unchanged from the previous snapshot.
    pub carried_patterns: usize,
    /// Patterns produced by the re-mine of the dirty partitions.
    pub mined_patterns: usize,
}

/// An immutable, self-contained view of the mining state at one refresh:
/// the frequent patterns of the window at `revision`, the window bounds
/// they were mined over, and how the refresh was computed.
///
/// Snapshots are shared as `Arc<PatternSnapshot>` and never mutated, so any
/// number of readers can hold one while the miner publishes the next.
#[derive(Debug, Clone, Serialize)]
pub struct PatternSnapshot {
    /// Monotonically increasing refresh counter (0 = empty initial state).
    pub revision: u64,
    /// The watermark the window had at refresh time.
    pub watermark: Option<Time>,
    /// Lower edge of the window (`watermark − window length`).
    pub window_start: Option<Time>,
    /// Number of sequences in the mined window.
    pub sequences: usize,
    /// Symbol table for rendering patterns (a clone; the live table may
    /// have grown since).
    pub symbols: SymbolTable,
    /// The mining result: patterns with exact supports, work counters and
    /// the [`Termination`] status of the refresh.
    pub result: MiningResult,
    /// How this refresh was computed.
    pub refresh: RefreshStats,
}

impl PatternSnapshot {
    /// The snapshot published before any refresh: revision 0, no window,
    /// no patterns.
    pub fn empty() -> Self {
        Self {
            revision: 0,
            watermark: None,
            window_start: None,
            sequences: 0,
            symbols: SymbolTable::new(),
            result: MiningResult::from_parts(
                Vec::new(),
                MinerStats::default(),
                Termination::Complete,
            ),
            refresh: RefreshStats::default(),
        }
    }

    /// Renders every pattern with its support, one per line.
    pub fn render(&self) -> String {
        self.result.render(&self.symbols)
    }
}

impl Default for PatternSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// A shared cell holding the latest [`PatternSnapshot`].
///
/// Publication is an `Arc` swap behind a lock: writers block only for the
/// pointer exchange, readers clone the `Arc` and then work lock-free on an
/// immutable snapshot. A reader mid-query keeps its (old) snapshot alive
/// while newer ones are published.
///
/// ```
/// use std::sync::Arc;
/// use stream::{PatternSnapshot, SnapshotCell};
///
/// let cell = Arc::new(SnapshotCell::new());
/// let reader = cell.load();
/// assert_eq!(reader.revision, 0);
/// ```
#[derive(Debug, Default)]
pub struct SnapshotCell {
    current: RwLock<Arc<PatternSnapshot>>,
    subscribers: Mutex<Vec<SubEntry>>,
}

/// Per-subscriber counters shared between the cell (writer) and the
/// [`SnapshotSubscriber`] handle (reader).
#[derive(Debug, Default)]
struct SubCounters {
    delivered: AtomicU64,
    dropped: AtomicU64,
    /// Revision of the last snapshot successfully enqueued; the
    /// subscriber's *lag* is the cell's current revision minus this.
    last_enqueued: AtomicU64,
}

/// The cell's send-side record of one subscriber.
#[derive(Debug)]
struct SubEntry {
    sender: SyncSender<Arc<PatternSnapshot>>,
    counters: Arc<SubCounters>,
}

/// Aggregate subscriber accounting, folded into
/// [`PipelineStats`](crate::PipelineStats) by the pipeline driver.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SubscriberStats {
    /// Currently connected subscribers.
    pub subscribers: u64,
    /// Snapshots enqueued to subscriber channels, summed over all
    /// subscribers (past and present).
    pub subscriber_delivered: u64,
    /// Revisions dropped because a subscriber's channel was full, summed
    /// over all subscribers. Drops are per-subscriber: a slow consumer
    /// loses *its own* revisions and nothing else.
    pub subscriber_dropped: u64,
    /// The worst current lag (published revisions since the last one
    /// enqueued) across connected subscribers.
    pub subscriber_max_lag: u64,
}

/// The receiving end of [`SnapshotCell::subscribe`]: a bounded channel
/// that gets every published snapshot the subscriber keeps up with.
///
/// Publication never blocks on a subscriber — when the channel is full
/// the new revision is *dropped for that subscriber* (counted in
/// [`SnapshotSubscriber::dropped`]) and the publisher moves on. Delivered
/// snapshots arrive in publication order (revisions strictly increase);
/// a gap in revisions is exactly the drop count. Dropping the handle
/// unsubscribes: the cell prunes the dead channel on its next publish.
#[derive(Debug)]
pub struct SnapshotSubscriber {
    receiver: Receiver<Arc<PatternSnapshot>>,
    counters: Arc<SubCounters>,
}

impl SnapshotSubscriber {
    /// The next published snapshot, if one is already queued.
    /// Non-blocking; `None` when the queue is empty (the cell may still
    /// publish more later — this is not a disconnect signal).
    pub fn try_next(&self) -> Option<Arc<PatternSnapshot>> {
        self.receiver.try_recv().ok()
    }

    /// Blocks until the next snapshot or `timeout`, whichever comes
    /// first.
    pub fn next_timeout(&self, timeout: std::time::Duration) -> Option<Arc<PatternSnapshot>> {
        self.receiver.recv_timeout(timeout).ok()
    }

    /// Snapshots enqueued to this subscriber so far.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered.load(Ordering::Relaxed)
    }

    /// Revisions this subscriber missed because its queue was full.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Relaxed)
    }
}

impl SnapshotCell {
    /// Creates a cell holding the empty snapshot (revision 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the latest snapshot. The returned `Arc` stays valid (and
    /// immutable) regardless of later publications.
    pub fn load(&self) -> Arc<PatternSnapshot> {
        self.current.read().clone()
    }

    /// Atomically publishes a new snapshot, then fans it out to every
    /// subscriber. Fan-out is strictly non-blocking: a full subscriber
    /// queue drops the revision for that subscriber (counted), a
    /// disconnected subscriber is pruned, and readers polling
    /// [`load`](Self::load) are never delayed past the pointer swap.
    pub fn store(&self, snapshot: Arc<PatternSnapshot>) {
        *self.current.write() = snapshot.clone();
        let mut subscribers = self.subscribers.lock().unwrap_or_else(|e| e.into_inner());
        subscribers.retain(|entry| match entry.sender.try_send(Arc::clone(&snapshot)) {
            Ok(()) => {
                entry.counters.delivered.fetch_add(1, Ordering::Relaxed);
                entry
                    .counters
                    .last_enqueued
                    .store(snapshot.revision, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) => {
                entry.counters.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
    }

    /// Registers a push subscriber with a queue of `capacity` snapshots
    /// (clamped to at least 1) and returns its receiving handle. The
    /// subscriber sees every snapshot published *after* this call that it
    /// keeps up with; see [`SnapshotSubscriber`] for the drop policy.
    pub fn subscribe(&self, capacity: usize) -> SnapshotSubscriber {
        let (sender, receiver) = mpsc::sync_channel(capacity.max(1));
        let counters = Arc::new(SubCounters {
            last_enqueued: AtomicU64::new(self.load().revision),
            ..SubCounters::default()
        });
        let mut subscribers = self.subscribers.lock().unwrap_or_else(|e| e.into_inner());
        subscribers.push(SubEntry {
            sender,
            counters: Arc::clone(&counters),
        });
        SnapshotSubscriber { receiver, counters }
    }

    /// Aggregate accounting across currently connected subscribers (plus
    /// cumulative delivered/dropped totals of past ones is *not* kept —
    /// totals cover live entries, which is what the pipeline reports).
    pub fn subscriber_stats(&self) -> SubscriberStats {
        let revision = self.load().revision;
        let subscribers = self.subscribers.lock().unwrap_or_else(|e| e.into_inner());
        let mut stats = SubscriberStats {
            subscribers: subscribers.len() as u64,
            ..SubscriberStats::default()
        };
        for entry in subscribers.iter() {
            stats.subscriber_delivered += entry.counters.delivered.load(Ordering::Relaxed);
            stats.subscriber_dropped += entry.counters.dropped.load(Ordering::Relaxed);
            let lag = revision.saturating_sub(entry.counters.last_enqueued.load(Ordering::Relaxed));
            stats.subscriber_max_lag = stats.subscriber_max_lag.max(lag);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_has_revision_zero() {
        let s = PatternSnapshot::empty();
        assert_eq!(s.revision, 0);
        assert!(s.result.is_empty());
        assert!(s.result.is_exhaustive());
        assert_eq!(s.render(), "");
    }

    #[test]
    fn cell_swaps_without_invalidating_readers() {
        let cell = SnapshotCell::new();
        let old = cell.load();
        let mut next = PatternSnapshot::empty();
        next.revision = 1;
        cell.store(Arc::new(next));
        assert_eq!(old.revision, 0, "held snapshot unaffected");
        assert_eq!(cell.load().revision, 1);
    }

    fn publish(cell: &SnapshotCell, revision: u64) {
        let mut s = PatternSnapshot::empty();
        s.revision = revision;
        cell.store(Arc::new(s));
    }

    #[test]
    fn subscribers_receive_snapshots_in_publication_order() {
        let cell = SnapshotCell::new();
        let sub = cell.subscribe(8);
        for revision in 1..=5 {
            publish(&cell, revision);
        }
        for expected in 1..=5 {
            assert_eq!(sub.try_next().map(|s| s.revision), Some(expected));
        }
        assert!(sub.try_next().is_none());
        assert_eq!(sub.delivered(), 5);
        assert_eq!(sub.dropped(), 0);
    }

    #[test]
    fn slow_subscriber_drops_revisions_but_never_blocks_publication() {
        let cell = SnapshotCell::new();
        let sub = cell.subscribe(2);
        // Ten publications into a queue of two: if fan-out blocked on the
        // stalled subscriber this loop would deadlock (nothing drains).
        for revision in 1..=10 {
            publish(&cell, revision);
        }
        assert_eq!(cell.load().revision, 10, "publication went through");
        assert_eq!(sub.delivered(), 2);
        assert_eq!(sub.dropped(), 8);
        // The survivors are the oldest enqueued, still in order.
        assert_eq!(sub.try_next().map(|s| s.revision), Some(1));
        assert_eq!(sub.try_next().map(|s| s.revision), Some(2));
        assert!(sub.try_next().is_none());
    }

    #[test]
    fn disconnected_subscriber_is_pruned_on_next_publish() {
        let cell = SnapshotCell::new();
        let sub = cell.subscribe(1);
        assert_eq!(cell.subscriber_stats().subscribers, 1);
        drop(sub);
        publish(&cell, 1);
        assert_eq!(cell.subscriber_stats().subscribers, 0);
    }

    #[test]
    fn subscriber_stats_report_worst_lag_and_drop_totals() {
        let cell = SnapshotCell::new();
        let slow = cell.subscribe(1);
        let fast = cell.subscribe(16);
        for revision in 1..=4 {
            publish(&cell, revision);
        }
        let stats = cell.subscriber_stats();
        assert_eq!(stats.subscribers, 2);
        // slow enqueued revision 1 then dropped 2..4; fast kept up.
        assert_eq!(stats.subscriber_dropped, 3);
        assert_eq!(stats.subscriber_delivered, 1 + 4);
        assert_eq!(stats.subscriber_max_lag, 3);
        drop((slow, fast));
    }

    #[test]
    fn concurrent_readers_and_subscribers_survive_rapid_publication() {
        const REVISIONS: u64 = 300;
        let cell = Arc::new(SnapshotCell::new());
        let subs: Vec<_> = (0..3).map(|_| cell.subscribe(4)).collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while last < REVISIONS {
                        let s = cell.load();
                        assert!(s.revision >= last, "revisions move forward");
                        last = last.max(s.revision);
                    }
                })
            })
            .collect();
        let drainers: Vec<_> = subs
            .into_iter()
            .map(|sub| {
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    // Drain until the final revision arrives or the
                    // publisher has clearly stopped (it may have dropped
                    // the tail for this subscriber).
                    while last < REVISIONS {
                        match sub.next_timeout(std::time::Duration::from_millis(500)) {
                            Some(s) => {
                                assert!(s.revision > last, "strictly increasing per subscriber");
                                last = s.revision;
                            }
                            None => break,
                        }
                    }
                    (sub.delivered(), sub.dropped())
                })
            })
            .collect();
        for revision in 1..=REVISIONS {
            publish(&cell, revision);
        }
        for reader in readers {
            reader.join().unwrap();
        }
        for drainer in drainers {
            let (delivered, dropped) = drainer.join().unwrap();
            assert!(delivered >= 1);
            // Every publication was either enqueued or dropped.
            assert!(delivered + dropped <= REVISIONS);
        }
    }

    #[test]
    fn concurrent_readers_see_a_coherent_snapshot() {
        let cell = Arc::new(SnapshotCell::new());
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for revision in 1..=50u64 {
                    let mut s = PatternSnapshot::empty();
                    s.revision = revision;
                    cell.store(Arc::new(s));
                }
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..200 {
                    let s = cell.load();
                    assert!(s.revision >= last, "revisions move forward");
                    last = s.revision;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(cell.load().revision, 50);
    }
}
