//! Published mining snapshots and the cell readers load them from.

use std::sync::Arc;

use interval_core::{SymbolTable, Termination, Time};
use parking_lot::RwLock;
use serde::Serialize;
use tpminer::{MinerStats, MiningResult};

/// How a refresh produced its snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct RefreshStats {
    /// Whether this was a full re-mine (first refresh, changed threshold,
    /// or an explicit invalidation) rather than a dirty-partition refresh.
    pub full: bool,
    /// Number of root partitions re-mined.
    pub dirty_roots: usize,
    /// Patterns carried over unchanged from the previous snapshot.
    pub carried_patterns: usize,
    /// Patterns produced by the re-mine of the dirty partitions.
    pub mined_patterns: usize,
}

/// An immutable, self-contained view of the mining state at one refresh:
/// the frequent patterns of the window at `revision`, the window bounds
/// they were mined over, and how the refresh was computed.
///
/// Snapshots are shared as `Arc<PatternSnapshot>` and never mutated, so any
/// number of readers can hold one while the miner publishes the next.
#[derive(Debug, Clone, Serialize)]
pub struct PatternSnapshot {
    /// Monotonically increasing refresh counter (0 = empty initial state).
    pub revision: u64,
    /// The watermark the window had at refresh time.
    pub watermark: Option<Time>,
    /// Lower edge of the window (`watermark − window length`).
    pub window_start: Option<Time>,
    /// Number of sequences in the mined window.
    pub sequences: usize,
    /// Symbol table for rendering patterns (a clone; the live table may
    /// have grown since).
    pub symbols: SymbolTable,
    /// The mining result: patterns with exact supports, work counters and
    /// the [`Termination`] status of the refresh.
    pub result: MiningResult,
    /// How this refresh was computed.
    pub refresh: RefreshStats,
}

impl PatternSnapshot {
    /// The snapshot published before any refresh: revision 0, no window,
    /// no patterns.
    pub fn empty() -> Self {
        Self {
            revision: 0,
            watermark: None,
            window_start: None,
            sequences: 0,
            symbols: SymbolTable::new(),
            result: MiningResult::from_parts(
                Vec::new(),
                MinerStats::default(),
                Termination::Complete,
            ),
            refresh: RefreshStats::default(),
        }
    }

    /// Renders every pattern with its support, one per line.
    pub fn render(&self) -> String {
        self.result.render(&self.symbols)
    }
}

impl Default for PatternSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// A shared cell holding the latest [`PatternSnapshot`].
///
/// Publication is an `Arc` swap behind a lock: writers block only for the
/// pointer exchange, readers clone the `Arc` and then work lock-free on an
/// immutable snapshot. A reader mid-query keeps its (old) snapshot alive
/// while newer ones are published.
///
/// ```
/// use std::sync::Arc;
/// use stream::{PatternSnapshot, SnapshotCell};
///
/// let cell = Arc::new(SnapshotCell::new());
/// let reader = cell.load();
/// assert_eq!(reader.revision, 0);
/// ```
#[derive(Debug, Default)]
pub struct SnapshotCell {
    current: RwLock<Arc<PatternSnapshot>>,
}

impl SnapshotCell {
    /// Creates a cell holding the empty snapshot (revision 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the latest snapshot. The returned `Arc` stays valid (and
    /// immutable) regardless of later publications.
    pub fn load(&self) -> Arc<PatternSnapshot> {
        self.current.read().clone()
    }

    /// Atomically publishes a new snapshot.
    pub fn store(&self, snapshot: Arc<PatternSnapshot>) {
        *self.current.write() = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_has_revision_zero() {
        let s = PatternSnapshot::empty();
        assert_eq!(s.revision, 0);
        assert!(s.result.is_empty());
        assert!(s.result.is_exhaustive());
        assert_eq!(s.render(), "");
    }

    #[test]
    fn cell_swaps_without_invalidating_readers() {
        let cell = SnapshotCell::new();
        let old = cell.load();
        let mut next = PatternSnapshot::empty();
        next.revision = 1;
        cell.store(Arc::new(next));
        assert_eq!(old.revision, 0, "held snapshot unaffected");
        assert_eq!(cell.load().revision, 1);
    }

    #[test]
    fn concurrent_readers_see_a_coherent_snapshot() {
        let cell = Arc::new(SnapshotCell::new());
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for revision in 1..=50u64 {
                    let mut s = PatternSnapshot::empty();
                    s.revision = revision;
                    cell.store(Arc::new(s));
                }
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..200 {
                    let s = cell.load();
                    assert!(s.revision >= last, "revisions move forward");
                    last = s.revision;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(cell.load().revision, 50);
    }
}
