//! Background refresh worker: pipelined re-mining concurrent with ingestion.
//!
//! A synchronous refresh stalls ingestion for the whole re-mine. The
//! pipeline splits a refresh into a cheap **freeze** on the ingest thread
//! ([`SlidingWindowDatabase::freeze`](crate::SlidingWindowDatabase::freeze),
//! O(changed sequences)) and the expensive **mine** on a dedicated
//! [`RefreshWorker`] thread ([`IncrementalMiner::refresh_frozen`]), which
//! publishes each result through the shared [`SnapshotCell`]. Ingestion
//! keeps mutating the live window the whole time; the frozen `Arc`-shared
//! indexes are never written through.
//!
//! # Backpressure and coalescing
//!
//! The handoff channel is bounded (capacity 1) and the driver never queues
//! behind a running refresh: [`RefreshWorker::submit_or_coalesce`] freezes
//! and submits only when the worker is idle, and otherwise *coalesces* the
//! trigger — the window's dirty set simply keeps accumulating, so the next
//! accepted freeze covers everything the skipped ones would have. No event
//! is ever lost to coalescing, and memory stays bounded no matter how far
//! ingestion outpaces mining. The policy is observable through
//! [`PipelineStats`]: `coalesced_refreshes`, `events_during_refresh` and
//! the watermark `refresh_lag` between the live window and the latest
//! published snapshot.
//!
//! # Equivalence with synchronous refreshes
//!
//! [`IncrementalMiner::refresh_with_budget`] *is* freeze + refresh over the
//! frozen view, so a pipelined refresh of a given epoch publishes exactly
//! the snapshot the synchronous path would have published at the same
//! point in the stream (property-tested in `tests/streaming_pipeline.rs`).
//!
//! # Shutdown
//!
//! [`RefreshWorker::shutdown`] closes the channel and joins the thread,
//! returning the [`IncrementalMiner`] (with all its carried state) to the
//! caller for a final synchronous refresh. Cancelling the
//! [`interval_core::MiningBudget`] token carried by an
//! in-flight job (SIGINT, `--timeout`) makes the refresh terminate at its
//! next budget check, so shutdown never blocks on an unbounded mine.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use interval_core::{MiningBudget, Time};
use serde::Serialize;

use crate::incremental::IncrementalMiner;
use crate::pool::ShardPool;
use crate::snapshot::{PatternSnapshot, SnapshotCell};
use crate::window::FrozenView;

/// One refresh epoch handed to the background worker.
#[derive(Debug)]
pub struct RefreshJob {
    /// The frozen window contents to mine.
    pub view: FrozenView,
    /// Budget for this refresh. Its cancellation token is the shutdown
    /// lever: cancelling it stops the refresh at the next budget check.
    pub budget: MiningBudget,
    /// Absolute support threshold for this epoch, when the driver
    /// re-derives it per refresh (fractional thresholds depend on the
    /// frozen sequence count). `None` keeps the miner's current threshold.
    pub min_support: Option<usize>,
}

/// Counters shared between the ingest thread and the worker thread.
#[derive(Debug, Default)]
struct SharedCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    coalesced: AtomicU64,
    events_during_refresh: AtomicU64,
    wal_flushes: AtomicU64,
    wal_degraded: AtomicBool,
    segments_sealed: AtomicU64,
    segment_records: AtomicU64,
    segment_bytes: AtomicU64,
    segment_seal_failures: AtomicU64,
}

/// Point-in-time view of the pipeline's backpressure counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct PipelineStats {
    /// Refresh epochs accepted and handed to the worker.
    pub submitted_refreshes: u64,
    /// Refresh epochs the worker finished (and published).
    pub completed_refreshes: u64,
    /// Refresh triggers absorbed into a later epoch because the worker was
    /// still busy. The skipped work is not lost: the live dirty set keeps
    /// accumulating until the next accepted freeze.
    pub coalesced_refreshes: u64,
    /// Events ingested while a refresh was in flight — the throughput the
    /// pipeline won over a synchronous refresh, which would have stalled
    /// exactly these events.
    pub events_during_refresh: u64,
    /// How far (in stream time) the latest published snapshot trails the
    /// live watermark. `None` until both sides have a watermark.
    pub refresh_lag: Option<Time>,
    /// Currently connected snapshot subscribers
    /// ([`SnapshotCell::subscribe`]).
    pub subscribers: u64,
    /// Snapshots enqueued to subscriber channels, summed over connected
    /// subscribers.
    pub subscriber_delivered: u64,
    /// Revisions dropped because a subscriber's bounded queue was full —
    /// the per-subscriber cost of falling behind; publication itself never
    /// blocks.
    pub subscriber_dropped: u64,
    /// Worst current lag (revisions published since the last enqueued one)
    /// across connected subscribers.
    pub subscriber_max_lag: u64,
    /// Write-ahead-log flushes (buffer + fsync) performed on behalf of this
    /// pipeline — at minimum the shutdown flush. Zero when no WAL is
    /// attached.
    pub wal_flushes: u64,
    /// Sticky degraded flag: the WAL exhausted its write retries and
    /// ingestion continued in-memory only. Once set it never clears (see
    /// `docs/DURABILITY.md`, "Degraded mode").
    pub wal_degraded: bool,
    /// Segment files sealed to the cold store on behalf of this pipeline.
    /// Zero when no `--segment-dir` is attached (see `docs/STORAGE.md`).
    pub segments_sealed: u64,
    /// Evicted interval records persisted across all sealed segments.
    pub segment_records: u64,
    /// Bytes written across all sealed segment files (magic + body +
    /// footer + trailer).
    pub segment_bytes: u64,
    /// Seal attempts that failed and degraded the segment store; the WAL
    /// reclaim floor freezes so no durable data is lost.
    pub segment_seal_failures: u64,
}

/// A dedicated background dispatcher thread running [`IncrementalMiner`]
/// refreshes against [`FrozenView`]s while the caller keeps ingesting.
///
/// The dispatcher owns the miner state and a [`ShardPool`] of mining
/// threads ([`spawn_pool`](Self::spawn_pool)): each accepted epoch's
/// dirty roots are LPT-sharded across the pool and merged into one
/// published snapshot, bit-identical to the single-threaded path at every
/// pool size. [`spawn`](Self::spawn) is the pool-of-one special case.
///
/// This module is on the sanctioned-spawn list of `cargo run -p xlint`
/// (`no-raw-spawn`): it owns the dispatcher thread (the pool's threads
/// live in [`crate::pool`], also sanctioned), and its lifecycle (bounded
/// channel, cancellation, join on shutdown) is the part the lint exists
/// to keep reviewable.
///
/// ```
/// use std::sync::Arc;
/// use interval_core::{MiningBudget, StreamEvent};
/// use stream::{IncrementalMiner, RefreshJob, RefreshWorker, SlidingWindowDatabase, SnapshotCell};
/// use tpminer::MinerConfig;
///
/// let mut window = SlidingWindowDatabase::new(100);
/// let cell = Arc::new(SnapshotCell::new());
/// let miner = IncrementalMiner::new(MinerConfig::with_min_support(1), 1);
/// let worker = RefreshWorker::spawn(miner, Arc::clone(&cell));
///
/// window
///     .ingest(StreamEvent::Interval { sequence: 1, symbol: "a".into(), start: 0, end: 5 })
///     .unwrap();
/// worker.submit(RefreshJob {
///     view: window.freeze(),
///     budget: MiningBudget::unlimited(),
///     min_support: None,
/// });
/// // ...ingestion continues here while the refresh runs...
/// let outcome = worker.shutdown();
/// assert!(outcome.miner.is_some(), "worker joined cleanly");
/// assert_eq!(cell.load().result.len(), 1);
/// ```
pub struct RefreshWorker {
    sender: Option<SyncSender<RefreshJob>>,
    /// Behind a mutex only to make the handle `Sync` (drivers share it as
    /// `Arc<RefreshWorker>` so they can block on it without holding their
    /// own locks); collection itself is non-blocking `try_iter`.
    results: Mutex<Receiver<Arc<PatternSnapshot>>>,
    handle: Option<JoinHandle<IncrementalMiner>>,
    counters: Arc<SharedCounters>,
    cell: Arc<SnapshotCell>,
}

/// What [`RefreshWorker::shutdown`] recovered from the worker thread.
pub struct ShutdownOutcome {
    /// The miner with all its carried state (previous partitions, pending
    /// truncated roots, revision counter), ready for a final synchronous
    /// refresh on the caller's thread. `None` if the worker thread
    /// panicked; the last successfully published snapshot remains valid in
    /// the cell either way.
    pub miner: Option<IncrementalMiner>,
    /// Snapshots completed but not yet collected via
    /// [`RefreshWorker::drain_completed`], in publication order.
    pub unreported: Vec<Arc<PatternSnapshot>>,
    /// Final pipeline counters, read after the join (so they include every
    /// refresh the worker ever completed). `refresh_lag` is `None` here —
    /// there is no live watermark to compare against anymore; compare the
    /// last published snapshot with the live window if needed.
    pub stats: PipelineStats,
}

impl RefreshWorker {
    /// Spawns the dispatcher with a single mining thread — equivalent to
    /// [`spawn_pool`](Self::spawn_pool) with `workers == 1`.
    pub fn spawn(miner: IncrementalMiner, cell: Arc<SnapshotCell>) -> Self {
        Self::spawn_pool(miner, cell, 1)
    }

    /// Spawns the dispatcher thread plus a [`ShardPool`] of `workers`
    /// mining threads (0 is clamped to 1). Every refresh the dispatcher
    /// completes is published into `cell` (the miner is rewired to it) and
    /// also queued for [`drain_completed`](Self::drain_completed).
    /// Snapshots are bit-identical across pool sizes; `workers > 1` only
    /// shortens each epoch's mine on multi-core hosts.
    pub fn spawn_pool(miner: IncrementalMiner, cell: Arc<SnapshotCell>, workers: usize) -> Self {
        let miner = miner.with_cell(Arc::clone(&cell));
        let (job_tx, job_rx) = mpsc::sync_channel::<RefreshJob>(1);
        let (out_tx, out_rx) = mpsc::channel::<Arc<PatternSnapshot>>();
        let counters = Arc::new(SharedCounters::default());
        let shared = Arc::clone(&counters);
        let handle = std::thread::spawn(move || {
            // The pool lives on the dispatcher thread for its whole run,
            // parked between epochs, and joins when the dispatcher exits.
            let pool = ShardPool::new(workers);
            let mut miner = miner;
            // `recv` drains any buffered job before reporting disconnect,
            // so dropping the sender lets in-flight work finish first.
            while let Ok(job) = job_rx.recv() {
                if let Some(min_support) = job.min_support {
                    miner.set_min_support(min_support);
                }
                let snapshot = miner.refresh_frozen_pooled(&job.view, job.budget, &pool);
                shared.completed.fetch_add(1, Ordering::Release);
                // The driver may have dropped its receiver during shutdown;
                // the cell already holds the snapshot, so losing the copy
                // here is harmless.
                let _ = out_tx.send(snapshot);
            }
            miner
        });
        Self {
            sender: Some(job_tx),
            results: Mutex::new(out_rx),
            handle: Some(handle),
            counters,
            cell,
        }
    }

    /// Whether a submitted refresh has not completed yet.
    pub fn is_busy(&self) -> bool {
        let submitted = self.counters.submitted.load(Ordering::Acquire);
        let completed = self.counters.completed.load(Ordering::Acquire);
        submitted > completed
    }

    /// Submits a refresh epoch, blocking while the worker still has its
    /// one-deep queue full. Prefer
    /// [`submit_or_coalesce`](Self::submit_or_coalesce) on an ingest path —
    /// blocking submission serializes every trigger and exists for
    /// deterministic tests and final flushes.
    pub fn submit(&self, job: RefreshJob) {
        self.counters.submitted.fetch_add(1, Ordering::Release);
        if let Some(sender) = &self.sender {
            if sender.send(job).is_err() {
                // Worker thread died (it panicked mid-refresh); undo the
                // accounting so `is_busy` doesn't stick. The panic itself
                // surfaces at `shutdown` as `miner: None`.
                self.counters.submitted.fetch_sub(1, Ordering::Release);
            }
        }
    }

    /// Freezes and submits a refresh epoch only if the worker is idle.
    ///
    /// When a refresh is still in flight the trigger is *coalesced*: the
    /// closure is never called (no freeze happens), the live window keeps
    /// accumulating dirt, and `false` is returned. This is the bounded
    /// backpressure policy — triggers arriving faster than refreshes
    /// complete collapse into the next accepted epoch instead of queueing.
    pub fn submit_or_coalesce(&self, make_job: impl FnOnce() -> RefreshJob) -> bool {
        if self.is_busy() {
            self.note_coalesced();
            return false;
        }
        self.submit(make_job());
        true
    }

    /// Records one coalesced trigger: a refresh was due while another was
    /// still in flight, so the request collapsed into the next epoch.
    /// Exposed for drivers that must make the busy/idle decision under
    /// their own lock and only submit after dropping it (a blocking
    /// [`submit`](Self::submit) must never run under a lock); they keep
    /// the same accounting as [`submit_or_coalesce`](Self::submit_or_coalesce).
    pub fn note_coalesced(&self) {
        self.counters.coalesced.fetch_add(1, Ordering::Release);
    }

    /// Records `n` events ingested while a refresh was in flight (the
    /// driver calls this from its ingest loop when [`is_busy`](Self::is_busy)).
    pub fn note_events_during_refresh(&self, n: u64) {
        self.counters
            .events_during_refresh
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records one write-ahead-log flush performed for this pipeline.
    pub fn note_wal_flush(&self) {
        self.counters.wal_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Latches the sticky degraded flag: the WAL stopped accepting writes
    /// and the stream fell back to in-memory-only ingestion.
    pub fn note_wal_degraded(&self) {
        self.counters.wal_degraded.store(true, Ordering::Relaxed);
    }

    /// Records one sealed segment (`records` evicted intervals persisted in
    /// `bytes` on-disk bytes) for this pipeline's segment store.
    pub fn note_segment_seal(&self, records: u64, bytes: u64) {
        self.counters
            .segments_sealed
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .segment_records
            .fetch_add(records, Ordering::Relaxed);
        self.counters
            .segment_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one failed seal attempt (the segment store degraded and the
    /// WAL reclaim floor froze).
    pub fn note_segment_seal_failure(&self) {
        self.counters
            .segment_seal_failures
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Completed snapshots not yet collected, in publication order.
    /// Non-blocking.
    pub fn drain_completed(&self) -> Vec<Arc<PatternSnapshot>> {
        self.results.lock().try_iter().collect()
    }

    /// Current pipeline counters. `refresh_lag` compares `live_watermark`
    /// (the ingesting window's watermark) against the latest published
    /// snapshot's.
    pub fn stats(&self, live_watermark: Option<Time>) -> PipelineStats {
        let published = self.cell.load().watermark;
        let refresh_lag = match (live_watermark, published) {
            (Some(live), Some(done)) => Some(live.saturating_sub(done)),
            _ => None,
        };
        let subs = self.cell.subscriber_stats();
        PipelineStats {
            submitted_refreshes: self.counters.submitted.load(Ordering::Acquire),
            completed_refreshes: self.counters.completed.load(Ordering::Acquire),
            coalesced_refreshes: self.counters.coalesced.load(Ordering::Acquire),
            events_during_refresh: self.counters.events_during_refresh.load(Ordering::Relaxed),
            refresh_lag,
            subscribers: subs.subscribers,
            subscriber_delivered: subs.subscriber_delivered,
            subscriber_dropped: subs.subscriber_dropped,
            subscriber_max_lag: subs.subscriber_max_lag,
            wal_flushes: self.counters.wal_flushes.load(Ordering::Relaxed),
            wal_degraded: self.counters.wal_degraded.load(Ordering::Relaxed),
            segments_sealed: self.counters.segments_sealed.load(Ordering::Relaxed),
            segment_records: self.counters.segment_records.load(Ordering::Relaxed),
            segment_bytes: self.counters.segment_bytes.load(Ordering::Relaxed),
            segment_seal_failures: self.counters.segment_seal_failures.load(Ordering::Relaxed),
        }
    }

    /// [`shutdown`](Self::shutdown), preceded by a WAL flush + fsync so a
    /// clean exit (SIGINT, `--timeout`, end of input) never leaves an
    /// unsynced tail behind the final refresh. The flush (or the
    /// degradation it surfaces) lands in the returned stats.
    pub fn shutdown_flushing<F: durability::WalFs>(
        self,
        journal: &mut crate::durable::Journal<F>,
    ) -> ShutdownOutcome {
        if journal.flush() {
            self.note_wal_flush();
        }
        if journal.is_degraded() {
            self.note_wal_degraded();
        }
        self.shutdown()
    }

    /// Closes the job channel, lets any in-flight or queued refresh finish
    /// (cancel its budget token first to make that prompt), joins the
    /// thread and returns the miner plus any uncollected snapshots.
    pub fn shutdown(mut self) -> ShutdownOutcome {
        self.sender = None; // disconnects the channel; worker loop exits
        let miner = match self.handle.take() {
            Some(handle) => handle.join().ok(),
            None => None,
        };
        let unreported = self.drain_completed();
        let stats = self.stats(None);
        ShutdownOutcome {
            miner,
            unreported,
            stats,
        }
    }
}

impl Drop for RefreshWorker {
    /// Joining on drop keeps the no-detached-threads discipline even on
    /// early-exit paths; pair with a cancelled budget token to bound the
    /// wait.
    fn drop(&mut self) {
        self.sender = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::SlidingWindowDatabase;
    use interval_core::{StreamEvent, Termination};
    use tpminer::MinerConfig;

    fn interval(sequence: u64, symbol: &str, start: i64, end: i64) -> StreamEvent {
        StreamEvent::Interval {
            sequence,
            symbol: symbol.into(),
            start,
            end,
        }
    }

    fn worker(min_support: usize) -> (RefreshWorker, Arc<SnapshotCell>) {
        let cell = Arc::new(SnapshotCell::new());
        let miner = IncrementalMiner::new(MinerConfig::with_min_support(min_support), 1);
        (RefreshWorker::spawn(miner, Arc::clone(&cell)), cell)
    }

    #[test]
    fn background_refresh_publishes_to_the_cell() {
        let (worker, cell) = worker(1);
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        worker.submit(RefreshJob {
            view: w.freeze(),
            budget: MiningBudget::unlimited(),
            min_support: None,
        });
        let outcome = worker.shutdown();
        assert!(outcome.miner.is_some());
        assert_eq!(outcome.unreported.len(), 1);
        assert_eq!(cell.load().revision, 1);
        assert_eq!(cell.load().result.len(), 1);
    }

    #[test]
    fn ingestion_after_freeze_does_not_leak_into_the_epoch() {
        let (worker, cell) = worker(1);
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        let view = w.freeze();
        // Mutate the live window after the freeze; the epoch must not see it.
        w.ingest(interval(1, "b", 1, 6)).unwrap();
        w.ingest(interval(2, "b", 2, 7)).unwrap();
        worker.submit(RefreshJob {
            view,
            budget: MiningBudget::unlimited(),
            min_support: None,
        });
        let outcome = worker.shutdown();
        let snapshot = cell.load();
        assert!(outcome.miner.is_some());
        assert_eq!(snapshot.sequences, 1);
        assert_eq!(snapshot.result.len(), 1, "only the frozen singleton");
        // The post-freeze events stayed in the live window, marked dirty.
        assert_eq!(w.len(), 2);
        assert!(!w.freeze().dirty().is_empty());
    }

    #[test]
    fn coalescing_skips_freezes_while_busy_and_counts_them() {
        let (worker, _cell) = worker(1);
        let mut w = SlidingWindowDatabase::new(1_000);
        w.ingest(interval(1, "a", 0, 5)).unwrap();

        let budget = MiningBudget::unlimited();
        worker.submit(RefreshJob {
            view: w.freeze(),
            budget,
            min_support: None,
        });
        // Whether or not the first refresh already finished, a second
        // trigger while busy must coalesce without freezing.
        let mut coalesced = 0u64;
        if worker.is_busy() {
            let accepted = worker.submit_or_coalesce(|| unreachable!("must not freeze while busy"));
            assert!(!accepted);
            coalesced = 1;
        }
        let stats = worker.stats(w.watermark());
        assert_eq!(stats.coalesced_refreshes, coalesced);
        let outcome = worker.shutdown();
        assert!(outcome.miner.is_some());
    }

    #[test]
    fn cancelled_budget_stops_inflight_refresh_and_joins() {
        let (worker, cell) = worker(1);
        let mut w = SlidingWindowDatabase::new(10_000);
        for seq in 0..6 {
            for (i, sym) in ["a", "b", "c", "d"].iter().enumerate() {
                w.ingest(interval(seq, sym, i as i64, i as i64 + 10))
                    .unwrap();
            }
        }
        let budget = MiningBudget::unlimited();
        let token = budget.token();
        token.cancel(); // cancel *before* the refresh runs: must stop promptly
        worker.submit(RefreshJob {
            view: w.freeze(),
            budget,
            min_support: None,
        });
        let outcome = worker.shutdown();
        assert!(outcome.miner.is_some(), "join after cancellation");
        assert_eq!(cell.load().result.termination(), &Termination::Cancelled);
    }

    #[test]
    fn shutdown_returns_miner_that_continues_incrementally() {
        let (worker, cell) = worker(1);
        let mut w = SlidingWindowDatabase::new(1_000);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        worker.submit(RefreshJob {
            view: w.freeze(),
            budget: MiningBudget::unlimited(),
            min_support: None,
        });
        let outcome = worker.shutdown();
        let mut miner = match outcome.miner {
            Some(miner) => miner,
            None => panic!("worker must join"),
        };
        assert_eq!(miner.revision(), 1);
        w.ingest(interval(2, "a", 1, 6)).unwrap();
        let snapshot = miner.refresh(&mut w);
        assert_eq!(snapshot.revision, 2);
        assert!(!snapshot.refresh.full, "carried state survived the handoff");
        assert_eq!(cell.load().revision, 2, "miner still wired to the cell");
    }

    #[test]
    fn stats_report_refresh_lag_against_published_watermark() {
        let (worker, _cell) = worker(1);
        let mut w = SlidingWindowDatabase::new(1_000);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(StreamEvent::Watermark(10)).unwrap();
        assert_eq!(worker.stats(w.watermark()).refresh_lag, None);
        worker.submit(RefreshJob {
            view: w.freeze(),
            budget: MiningBudget::unlimited(),
            min_support: None,
        });
        w.ingest(StreamEvent::Watermark(25)).unwrap();
        let outcome = worker.shutdown();
        assert!(outcome.miner.is_some());
        // After shutdown the epoch at watermark 10 is published; live is 25.
        let published = outcome.unreported.last().and_then(|s| s.watermark);
        assert_eq!(published, Some(10));
    }

    #[test]
    fn note_events_accumulate() {
        let (worker, _cell) = worker(1);
        worker.note_events_during_refresh(3);
        worker.note_events_during_refresh(4);
        assert_eq!(worker.stats(None).events_during_refresh, 7);
        worker.shutdown();
    }
}
