//! Incremental refresh of mining results over a sliding window.
//!
//! # Dirty-partition rule
//!
//! The pattern-growth search is partitioned by *root symbol* (the symbol of
//! the first endpoint of a pattern's first endpoint set), and a sequence
//! supports a pattern only if it contains every symbol the pattern uses —
//! in particular its root. So for a root symbol `r` such that **no sequence
//! containing `r` changed** between two refreshes, every pattern rooted at
//! `r` has exactly the same supporting sequences as before: its support,
//! and its frequency status, are unchanged.
//!
//! [`SlidingWindowDatabase`] therefore marks, on every sequence change, all
//! symbols present in that sequence before or after the change as *dirty*.
//! A refresh re-mines only the subtrees rooted at dirty symbols (via
//! [`ParallelTpMiner::mine_partitions`]) and carries every clean root's
//! patterns over from the previous snapshot verbatim. Changing the support
//! threshold invalidates the carry-over entirely and forces a full re-mine.
//!
//! # Soundness under truncation
//!
//! A refresh truncated by its [`MiningBudget`] (deadline, caps,
//! cancellation, worker failure) keeps the workspace-wide invariant: every
//! reported pattern has its exact support; only completeness is lost. The
//! miner remembers which partitions it could not finish and re-mines them
//! on the next refresh, so completeness recovers as soon as a refresh runs
//! to completion.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use interval_core::{MiningBudget, SymbolId, TemporalPattern};
use tpminer::{DbIndex, MinerConfig, MiningResult, ParallelTpMiner};

use crate::pool::ShardPool;
use crate::snapshot::{PatternSnapshot, RefreshStats, SnapshotCell};
use crate::window::{FrozenView, SlidingWindowDatabase};

/// Result state carried between refreshes.
struct PrevState {
    by_root: HashMap<SymbolId, Vec<(TemporalPattern, usize)>>,
    min_support: usize,
}

/// Incrementally maintains the frequent patterns of a
/// [`SlidingWindowDatabase`], re-mining only dirty root partitions on each
/// [`refresh`](IncrementalMiner::refresh) and publishing the merged result
/// as an immutable [`PatternSnapshot`].
///
/// ```
/// use interval_core::StreamEvent;
/// use stream::{IncrementalMiner, SlidingWindowDatabase};
/// use tpminer::MinerConfig;
///
/// let mut w = SlidingWindowDatabase::new(100);
/// let mut miner = IncrementalMiner::new(MinerConfig::with_min_support(2), 2);
/// for seq in 0..3 {
///     w.ingest(StreamEvent::Interval { sequence: seq, symbol: "a".into(), start: 0, end: 9 })
///         .unwrap();
/// }
/// w.ingest(StreamEvent::Watermark(10)).unwrap();
/// let snapshot = miner.refresh(&mut w);
/// assert_eq!(snapshot.result.len(), 1); // the singleton "a"
/// ```
pub struct IncrementalMiner {
    config: MinerConfig,
    threads: usize,
    revision: u64,
    prev: Option<PrevState>,
    /// Partitions whose last re-mine was truncated; re-mined next refresh.
    pending: BTreeSet<SymbolId>,
    cell: Option<Arc<SnapshotCell>>,
}

impl IncrementalMiner {
    /// Creates an incremental miner mining with `config` on `threads`
    /// workers (0 = available parallelism, as in
    /// [`ParallelTpMiner::new`]).
    pub fn new(config: MinerConfig, threads: usize) -> Self {
        Self {
            config,
            threads,
            revision: 0,
            prev: None,
            pending: BTreeSet::new(),
            cell: None,
        }
    }

    /// Publishes every refreshed snapshot into `cell` in addition to
    /// returning it, so concurrent readers can follow along.
    pub fn with_cell(mut self, cell: Arc<SnapshotCell>) -> Self {
        self.cell = Some(cell);
        self
    }

    /// The mining configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Number of refreshes performed.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Changes the absolute support threshold. If it differs from the
    /// previous refresh's threshold, the next refresh re-mines everything
    /// (carried supports stay valid only under an unchanged threshold).
    pub fn set_min_support(&mut self, min_support: usize) {
        self.config.min_support = min_support;
    }

    /// Forces the next refresh to re-mine every partition.
    pub fn invalidate(&mut self) {
        self.prev = None;
        self.pending.clear();
    }

    /// Refreshes with an unlimited budget.
    pub fn refresh(&mut self, window: &mut SlidingWindowDatabase) -> Arc<PatternSnapshot> {
        self.refresh_with_budget(window, MiningBudget::unlimited())
    }

    /// Brings the published patterns up to date with the window's current
    /// contents, re-mining only dirty root partitions (plus any partitions
    /// left unfinished by a previously truncated refresh).
    ///
    /// Equivalent to [`freeze`](SlidingWindowDatabase::freeze) followed by
    /// [`refresh_frozen`](Self::refresh_frozen); the pipelined path splits
    /// the two halves across threads.
    pub fn refresh_with_budget(
        &mut self,
        window: &mut SlidingWindowDatabase,
        budget: MiningBudget,
    ) -> Arc<PatternSnapshot> {
        let view = window.freeze();
        self.refresh_frozen(&view, budget)
    }

    /// Refreshes against a [`FrozenView`] instead of the live window.
    ///
    /// This is the half of a refresh that runs on the background
    /// [`RefreshWorker`](crate::RefreshWorker): it never touches the live
    /// window, so ingestion can proceed concurrently. For the same frozen
    /// contents it produces bit-identical patterns to
    /// [`refresh_with_budget`](Self::refresh_with_budget) — the published
    /// snapshot reflects exactly the window state at freeze time.
    pub fn refresh_frozen(
        &mut self,
        view: &FrozenView,
        budget: MiningBudget,
    ) -> Arc<PatternSnapshot> {
        self.refresh_frozen_inner(view, budget, None)
    }

    /// [`refresh_frozen`](Self::refresh_frozen), with the mine split
    /// across the shard `pool` instead of this miner's own worker scope:
    /// dirty roots are LPT-sharded over the pool's threads and the shard
    /// results merge into one canonical result. For the same frozen
    /// contents the published snapshot is bit-identical to
    /// [`refresh_frozen`](Self::refresh_frozen) at any pool size (see
    /// [`ShardPool`]'s parity contract); all carry-over, truncation and
    /// pending-partition state behaves identically.
    pub fn refresh_frozen_pooled(
        &mut self,
        view: &FrozenView,
        budget: MiningBudget,
        pool: &ShardPool,
    ) -> Arc<PatternSnapshot> {
        self.refresh_frozen_inner(view, budget, Some(pool))
    }

    fn refresh_frozen_inner(
        &mut self,
        view: &FrozenView,
        budget: MiningBudget,
        pool: Option<&ShardPool>,
    ) -> Arc<PatternSnapshot> {
        let min_support = self.config.effective_min_support();
        let mut dirty: BTreeSet<SymbolId> = std::mem::take(&mut self.pending);
        dirty.extend(view.dirty().iter().copied());

        // `Arc` so the shard pool's workers can hold the index while the
        // dispatcher waits for their replies; the single-threaded path
        // pays one refcount for the symmetry.
        let index = Arc::new(DbIndex::from_seq_indexes(view.seq_indexes().to_vec()));

        // Threshold changes (and the very first refresh) invalidate the
        // carry-over: supports carried from the previous snapshot are only
        // reusable when they were computed under the same threshold.
        let prev = self
            .prev
            .take()
            .filter(|prev| prev.min_support == min_support);
        let full = prev.is_none();
        let roots: Vec<SymbolId> = if full {
            index.frequent_symbols(min_support)
        } else {
            dirty.iter().copied().collect()
        };

        let mined = match pool {
            Some(pool) => pool.mine_sharded(&index, &roots, self.config, budget),
            None => ParallelTpMiner::new(self.config, self.threads)
                .with_budget(budget)
                .mine_partitions(&index, &roots),
        };

        let mut by_root: HashMap<SymbolId, Vec<(TemporalPattern, usize)>> = HashMap::new();
        let mut carried = 0usize;
        if let Some(prev) = prev {
            for (root, patterns) in prev.by_root {
                if !dirty.contains(&root) {
                    carried += patterns.len();
                    by_root.insert(root, patterns);
                }
            }
        }
        let mined_patterns = mined.len();
        let stats = mined.stats().clone();
        let termination = mined.termination().clone();
        for fp in mined.into_patterns() {
            let root = fp.pattern.groups()[0][0].symbol;
            by_root
                .entry(root)
                .or_default()
                .push((fp.pattern, fp.support));
        }

        // A truncated refresh may have missed patterns in any partition it
        // mined; remember them so the next refresh finishes the job.
        if termination.is_complete() {
            self.pending.clear();
        } else {
            self.pending = roots.iter().copied().collect();
        }

        let pairs: Vec<(TemporalPattern, usize)> =
            by_root.values().flat_map(|v| v.iter().cloned()).collect();
        self.prev = Some(PrevState {
            by_root,
            min_support,
        });

        self.revision += 1;
        let snapshot = Arc::new(PatternSnapshot {
            revision: self.revision,
            watermark: view.watermark(),
            window_start: view.window_start(),
            sequences: view.sequences(),
            symbols: view.symbols().clone(),
            result: MiningResult::from_parts(pairs, stats, termination),
            refresh: RefreshStats {
                full,
                dirty_roots: roots.len(),
                carried_patterns: carried,
                mined_patterns,
            },
        });
        if let Some(cell) = &self.cell {
            cell.store(Arc::clone(&snapshot));
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_core::{StreamEvent, Termination};
    use tpminer::TpMiner;

    fn interval(sequence: u64, symbol: &str, start: i64, end: i64) -> StreamEvent {
        StreamEvent::Interval {
            sequence,
            symbol: symbol.into(),
            start,
            end,
        }
    }

    fn assert_matches_batch(
        miner_result: &MiningResult,
        window: &SlidingWindowDatabase,
        config: MinerConfig,
    ) {
        let batch = TpMiner::new(config).mine(&window.snapshot_database());
        assert_eq!(miner_result.patterns(), batch.patterns());
    }

    #[test]
    fn first_refresh_is_full_and_matches_batch() {
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(1, "b", 3, 8)).unwrap();
        w.ingest(interval(2, "a", 1, 6)).unwrap();
        w.ingest(interval(2, "b", 4, 9)).unwrap();
        let config = MinerConfig::with_min_support(2);
        let mut m = IncrementalMiner::new(config, 2);
        let s = m.refresh(&mut w);
        assert!(s.refresh.full);
        assert_eq!(s.revision, 1);
        assert_matches_batch(&s.result, &w, config);
    }

    #[test]
    fn clean_partitions_are_carried_not_remined() {
        let mut w = SlidingWindowDatabase::new(1_000);
        // Two independent symbol clusters in disjoint sequences.
        for seq in 0..4 {
            w.ingest(interval(seq, "a", 0, 5)).unwrap();
            w.ingest(interval(seq, "b", 3, 8)).unwrap();
        }
        for seq in 10..14 {
            w.ingest(interval(seq, "x", 0, 5)).unwrap();
            w.ingest(interval(seq, "y", 3, 8)).unwrap();
        }
        let config = MinerConfig::with_min_support(2);
        let mut m = IncrementalMiner::new(config, 2);
        let first = m.refresh(&mut w);
        assert!(first.refresh.full);

        // Touch only the x/y cluster.
        w.ingest(interval(10, "x", 6, 9)).unwrap();
        let second = m.refresh(&mut w);
        assert!(!second.refresh.full);
        let x = w.symbols().lookup("x").unwrap();
        let y = w.symbols().lookup("y").unwrap();
        let mut expected: Vec<SymbolId> = vec![x, y];
        expected.sort_unstable();
        assert_eq!(second.refresh.dirty_roots, expected.len());
        assert!(second.refresh.carried_patterns > 0, "a/b cluster carried");
        assert_matches_batch(&second.result, &w, config);
    }

    #[test]
    fn eviction_is_reflected_after_refresh() {
        let mut w = SlidingWindowDatabase::new(10);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(2, "a", 0, 5)).unwrap();
        w.ingest(interval(2, "b", 12, 18)).unwrap();
        let config = MinerConfig::with_min_support(1);
        let mut m = IncrementalMiner::new(config, 2);
        let s = m.refresh(&mut w);
        assert_matches_batch(&s.result, &w, config);

        // cutoff 10: both "a" intervals expire; sequence 1 disappears.
        w.ingest(StreamEvent::Watermark(20)).unwrap();
        let s = m.refresh(&mut w);
        assert!(!s.refresh.full);
        assert_eq!(s.sequences, 1);
        assert_matches_batch(&s.result, &w, config);
        let a = w.symbols().lookup("a").unwrap();
        assert!(s.result.containing_symbol(a).next().is_none());
    }

    #[test]
    fn threshold_change_forces_full_remine() {
        let mut w = SlidingWindowDatabase::new(1_000);
        for seq in 0..3 {
            w.ingest(interval(seq, "a", 0, 5)).unwrap();
        }
        w.ingest(interval(0, "b", 1, 4)).unwrap();
        let mut m = IncrementalMiner::new(MinerConfig::with_min_support(1), 1);
        m.refresh(&mut w);

        m.set_min_support(2);
        let s = m.refresh(&mut w);
        assert!(s.refresh.full, "threshold change invalidates carry-over");
        assert_matches_batch(&s.result, &w, MinerConfig::with_min_support(2));
    }

    #[test]
    fn cancelled_refresh_stays_sound_and_recovers() {
        let mut w = SlidingWindowDatabase::new(1_000);
        for seq in 0..3 {
            w.ingest(interval(seq, "a", 0, 5)).unwrap();
            w.ingest(interval(seq, "b", 3, 8)).unwrap();
        }
        let config = MinerConfig::with_min_support(2);
        let mut m = IncrementalMiner::new(config, 1);

        let budget = MiningBudget::unlimited();
        budget.token().cancel();
        let s = m.refresh_with_budget(&mut w, budget);
        assert_eq!(s.result.termination(), &Termination::Cancelled);
        assert!(s.result.is_empty());

        // The next (unbudgeted) refresh recovers full completeness even
        // though the window did not change.
        let s = m.refresh(&mut w);
        assert!(s.result.is_exhaustive());
        assert_matches_batch(&s.result, &w, config);
    }

    #[test]
    fn unchanged_window_refreshes_to_identical_snapshot() {
        let mut w = SlidingWindowDatabase::new(1_000);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        w.ingest(interval(2, "a", 2, 7)).unwrap();
        let mut m = IncrementalMiner::new(MinerConfig::with_min_support(1), 1);
        let first = m.refresh(&mut w);
        let second = m.refresh(&mut w);
        assert!(!second.refresh.full);
        assert_eq!(second.refresh.dirty_roots, 0);
        assert_eq!(second.refresh.mined_patterns, 0);
        assert_eq!(first.result.patterns(), second.result.patterns());
    }

    #[test]
    fn snapshots_publish_to_the_cell() {
        let cell = Arc::new(SnapshotCell::new());
        let mut w = SlidingWindowDatabase::new(100);
        w.ingest(interval(1, "a", 0, 5)).unwrap();
        let mut m =
            IncrementalMiner::new(MinerConfig::with_min_support(1), 1).with_cell(Arc::clone(&cell));
        assert_eq!(cell.load().revision, 0);
        let s = m.refresh(&mut w);
        assert_eq!(cell.load().revision, s.revision);
        assert_eq!(cell.load().result.len(), 1);
    }
}
