//! Streaming ingestion and incremental mining over sliding windows.
//!
//! This crate turns the batch miner of [`tpminer`] into a continuously
//! refreshed one:
//!
//! - [`SlidingWindowDatabase`] ingests [`interval_core::StreamEvent`]s
//!   (open/close endpoint pairs or completed intervals, punctuated by
//!   watermarks), evicts expired intervals as the watermark advances, and
//!   incrementally maintains per-symbol support counts plus cached
//!   per-sequence endpoint indexes;
//! - [`IncrementalMiner`] re-mines only the *dirty* root-symbol partitions
//!   — those whose supporting sequences changed since the last refresh —
//!   and carries every clean partition's patterns over unchanged (see
//!   [`incremental`] for the correctness argument);
//! - [`PatternSnapshot`] / [`SnapshotCell`] publish each refreshed result
//!   atomically (an `Arc` swap behind a lock) so concurrent readers always
//!   see one coherent result while the next refresh is computed;
//! - [`RefreshWorker`] pipelines refreshes onto a background thread:
//!   [`SlidingWindowDatabase::freeze`] takes a copy-on-write
//!   [`FrozenView`] of the window (O(changed sequences)), ingestion
//!   continues while the worker mines it, and triggers arriving mid-flight
//!   coalesce into the next epoch — bounded memory, no lost events, and
//!   snapshots bit-identical to the synchronous path (see [`worker`] and
//!   `docs/STREAMING.md`);
//! - [`durable::Journal`] writes every event ahead of ingestion into a
//!   checksummed write-ahead log ([`durability`]), [`durable::replay`]
//!   rebuilds the window after a crash, and persistent write failures
//!   degrade the stream to in-memory-only instead of killing it (see
//!   [`durable`] and `docs/DURABILITY.md`).
//!
//! ```
//! use interval_core::StreamEvent;
//! use stream::{IncrementalMiner, SlidingWindowDatabase};
//! use tpminer::MinerConfig;
//!
//! let mut window = SlidingWindowDatabase::new(50);
//! let mut miner = IncrementalMiner::new(MinerConfig::with_min_support(2), 0);
//!
//! for seq in 0..3u64 {
//!     window
//!         .ingest(StreamEvent::Interval {
//!             sequence: seq,
//!             symbol: "fever".into(),
//!             start: 10 * seq as i64,
//!             end: 10 * seq as i64 + 5,
//!         })
//!         .unwrap();
//! }
//! window.ingest(StreamEvent::Watermark(30)).unwrap();
//!
//! let snapshot = miner.refresh(&mut window);
//! assert_eq!(snapshot.result.len(), 1);
//! println!("{}", snapshot.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod incremental;
pub mod pool;
pub mod snapshot;
pub mod window;
pub mod worker;

pub use durable::{Journal, JournalStats, ReplayOutcome};
pub use incremental::IncrementalMiner;
pub use pool::ShardPool;
pub use snapshot::{
    PatternSnapshot, RefreshStats, SnapshotCell, SnapshotSubscriber, SubscriberStats,
};
pub use window::{FrozenView, IngestStats, SlidingWindowDatabase};
pub use worker::{PipelineStats, RefreshJob, RefreshWorker, ShutdownOutcome};
