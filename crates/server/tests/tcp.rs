//! Integration tests over a real TCP socket: the full accept → connection
//! → session path, including protocol errors, a client killed mid-`BATCH`,
//! and the multi-tenant isolation guarantee (one misbehaving connection
//! never disturbs another stream).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use server::{ServerConfig, ServerHandle};

/// A line-oriented test client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let sock = TcpStream::connect(handle.addr()).expect("connect");
        let reader = BufReader::new(sock.try_clone().expect("clone"));
        Client {
            reader,
            writer: sock,
        }
    }

    fn send_raw(&mut self, text: &str) {
        self.writer.write_all(text.as_bytes()).expect("write");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_owned()
    }

    /// Sends one command line and reads one response unit: a single
    /// `OK`/`ERR` line, or a full `BEGIN n … END` block.
    fn roundtrip(&mut self, command: &str) -> Vec<String> {
        self.send_raw(command);
        self.send_raw("\n");
        let head = self.read_line();
        if let Some(rest) = head.strip_prefix("BEGIN ") {
            let count: usize = rest
                .split_whitespace()
                .next()
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("bad BEGIN header: {head}"));
            let mut out = vec![head];
            for _ in 0..count {
                out.push(self.read_line());
            }
            let end = self.read_line();
            assert_eq!(end, "END", "unterminated block");
            out.push(end);
            out
        } else {
            vec![head]
        }
    }

    fn ok(&mut self, command: &str) -> String {
        let reply = self.roundtrip(command);
        assert_eq!(reply.len(), 1, "{command}: {reply:?}");
        assert!(reply[0].starts_with("OK"), "{command} -> {}", reply[0]);
        reply[0].clone()
    }

    fn err(&mut self, command: &str) -> String {
        let reply = self.roundtrip(command);
        assert_eq!(reply.len(), 1, "{command}: {reply:?}");
        assert!(reply[0].starts_with("ERR"), "{command} -> {}", reply[0]);
        reply[0].clone()
    }
}

fn ingest_pairs(client: &mut Client, stream: &str, symbol: &str, n: i64) {
    for i in 0..n {
        let base = i * 10;
        client.ok(&format!(
            "EVENT {stream} interval {i} {symbol} {base} {}",
            base + 5
        ));
        client.ok(&format!("EVENT {stream} watermark {}", base + 9));
    }
}

#[test]
fn two_streams_ingest_query_and_drain_independently() {
    let handle = ServerHandle::launch("127.0.0.1:0", ServerConfig::default()).expect("launch");
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);

    a.ok("CREATE alpha WINDOW 1000 ABS-SUPPORT 2 REFRESH-EVERY 1");
    b.ok("CREATE beta WINDOW 1000 ABS-SUPPORT 1 REFRESH-EVERY 1");

    ingest_pairs(&mut a, "alpha", "x", 4);
    ingest_pairs(&mut b, "beta", "y", 3);

    a.ok("SYNC alpha");
    b.ok("SYNC beta");

    // Each stream only ever sees its own symbols.
    let qa = a.roundtrip("QUERY alpha");
    assert!(qa.len() > 2, "{qa:?}");
    assert!(
        qa[1..qa.len() - 1].iter().all(|l| l.contains('x')),
        "{qa:?}"
    );
    let qb = b.roundtrip("QUERY beta");
    assert!(
        qb[1..qb.len() - 1].iter().all(|l| l.contains('y')),
        "{qb:?}"
    );

    // Cross-connection access is fine — streams are server-owned, not
    // connection-owned.
    let cross = b.roundtrip("QUERY alpha TOP 1");
    assert_eq!(cross.len(), 3, "{cross:?}");

    let stats = a.roundtrip("STATS");
    assert!(stats[1].starts_with("server streams=2"), "{stats:?}");
    assert!(stats[2].starts_with("stream=alpha"), "{stats:?}");
    assert!(stats[3].starts_with("stream=beta"), "{stats:?}");

    a.ok("QUIT");
    b.ok("QUIT");
    let report = handle.shutdown().expect("drain");
    assert_eq!(report.streams.len(), 2);
    assert!(!report.any_worker_failed());
    assert!(!report.any_wal_degraded());
    let names: Vec<&str> = report.streams.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["alpha", "beta"], "deterministic drain order");
    assert_eq!(report.counters.connections, 2);
}

#[test]
fn protocol_errors_keep_the_connection_alive() {
    let handle = ServerHandle::launch("127.0.0.1:0", ServerConfig::default()).expect("launch");
    let mut c = Client::connect(&handle);

    // Unknown command with a did-you-mean suggestion.
    let e = c.err("KREATE s WINDOW 10 ABS-SUPPORT 1");
    assert!(e.contains("CREATE"), "suggestion missing: {e}");

    // Malformed CREATE, bad stream name, missing stream.
    c.err("CREATE s WINDOW 10");
    c.err("CREATE ../evil WINDOW 10 ABS-SUPPORT 1");
    c.err("EVENT ghost watermark 5");
    c.err("QUERY ghost");
    c.err("SYNC ghost");
    c.err("DROP ghost");

    // An oversize line is rejected and discarded without killing the
    // connection or desynchronizing framing.
    let huge = "X".repeat(80 * 1024);
    c.send_raw(&huge);
    c.send_raw("\n");
    let reply = c.read_line();
    assert!(reply.starts_with("ERR"), "{reply}");
    assert!(reply.contains("line exceeds"), "{reply}");

    // Still healthy, still parsing.
    let h = c.ok("HEALTH");
    assert!(h.contains("streams=0"), "{h}");
    c.ok("PING");
    handle.shutdown().expect("drain");
}

#[test]
fn client_killed_mid_batch_leaves_other_streams_unharmed() {
    let handle = ServerHandle::launch("127.0.0.1:0", ServerConfig::default()).expect("launch");
    let mut victim = Client::connect(&handle);
    let mut survivor = Client::connect(&handle);

    victim.ok("CREATE doomed WINDOW 1000 ABS-SUPPORT 1 REFRESH-EVERY 1");
    survivor.ok("CREATE steady WINDOW 1000 ABS-SUPPORT 1 REFRESH-EVERY 1");

    // Announce a 100-line batch but hang up after two lines: the accepted
    // prefix stays accepted, only the connection dies.
    victim.send_raw("BATCH doomed 100\n");
    victim.send_raw("interval 0 a 0 5\n");
    victim.send_raw("watermark 9\n");
    drop(victim);

    // The other tenant keeps ingesting and querying normally.
    ingest_pairs(&mut survivor, "steady", "z", 3);
    survivor.ok("SYNC steady");
    let q = survivor.roundtrip("QUERY steady");
    assert!(q.len() > 2, "{q:?}");

    // The half-delivered batch is visible in the doomed stream's stats.
    let stats = survivor.roundtrip("STATS doomed");
    assert_eq!(stats.len(), 3, "{stats:?}");
    assert!(stats[1].contains("events=2"), "{stats:?}");

    survivor.ok("QUIT");
    let report = handle.shutdown().expect("drain");
    assert!(!report.any_worker_failed());
    let doomed = report
        .streams
        .iter()
        .find(|s| s.name == "doomed")
        .expect("doomed drained");
    assert_eq!(doomed.events, 2, "accepted prefix survives the drain");
}

#[test]
fn shutdown_command_drains_the_server() {
    let handle = ServerHandle::launch("127.0.0.1:0", ServerConfig::default()).expect("launch");
    let mut c = Client::connect(&handle);
    c.ok("CREATE s WINDOW 100 ABS-SUPPORT 1");
    c.ok("EVENT s interval 0 a 0 5");
    c.ok("EVENT s watermark 9");
    let reply = c.ok("SHUTDOWN");
    assert!(reply.contains("draining"), "{reply}");
    // The accept loop notices the flag and drains without the token.
    let report = handle.shutdown().expect("drain");
    assert_eq!(report.streams.len(), 1);
    assert_eq!(report.streams[0].events, 2);
    assert!(!report.any_worker_failed());
}

#[test]
fn drop_closes_one_stream_and_frees_its_name() {
    let handle = ServerHandle::launch("127.0.0.1:0", ServerConfig::default()).expect("launch");
    let mut c = Client::connect(&handle);
    c.ok("CREATE s WINDOW 100 ABS-SUPPORT 1 REFRESH-EVERY 1");
    c.ok("EVENT s interval 0 a 0 5");
    c.ok("EVENT s watermark 9");
    let reply = c.ok("DROP s");
    assert!(reply.contains("dropped stream=s"), "{reply}");
    c.err("QUERY s");
    // The name is reusable immediately.
    c.ok("CREATE s WINDOW 100 ABS-SUPPORT 1");
    let report = handle.shutdown().expect("drain");
    assert_eq!(report.streams.len(), 1, "only the re-created stream");
    assert_eq!(report.streams[0].events, 0);
}
