//! Per-connection protocol loop: capped line reading and request dispatch.
//!
//! Each accepted socket gets one thread (spawned by [`crate::accept`], the
//! sanctioned spawn site) running `serve`. The read side uses a short
//! socket timeout so the loop can observe the server's draining flag
//! between requests — a connection never pins the drain behind an idle
//! client. Lines longer than [`interval_core::wire::MAX_LINE_BYTES`] are
//! rejected *and discarded without being buffered*: the reader switches to
//! a discard state that consumes up to the newline in fixed-size chunks,
//! so a hostile client cannot make the server allocate its line.
//!
//! One connection failing — malformed frames, a mid-`BATCH` disconnect, a
//! kill -9 on the client — affects only that connection: sessions are
//! owned by the registry, not the connection, and every response path
//! keeps the loop alive except genuine I/O errors and `QUIT`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use interval_core::wire::{Request, WireError, MAX_LINE_BYTES};
use interval_core::StreamEvent;
use stream::SnapshotSubscriber;

use crate::session::StreamSession;
use crate::{proto, Shared};

/// Socket read timeout: the cadence at which an idle connection re-checks
/// the draining flag — and drains any pending push subscription.
const READ_TICK: Duration = Duration::from_millis(50);

/// Bounded queue depth of one connection's push subscription. A
/// subscriber that falls more than this many revisions behind starts
/// dropping (counted, reported on `UNSUBSCRIBE` and in `STATS`);
/// publication never waits for it.
const SUBSCRIBER_CAPACITY: usize = 64;

/// The connection's active push subscription (at most one).
struct ActiveSub {
    stream: String,
    subscriber: SnapshotSubscriber,
}

/// What one attempt to read a request line produced.
enum Next {
    /// A complete line (without its terminator).
    Line(String),
    /// A line exceeded the cap and was discarded through the newline.
    Oversize,
    /// The peer closed the connection.
    Eof,
    /// The read timed out with no (or only partial) data; poll flags and
    /// try again — any partial data stays buffered.
    Idle,
}

/// A capped, timeout-tolerant line reader over the socket.
struct LineReader {
    reader: BufReader<TcpStream>,
    buf: Vec<u8>,
    discarding: bool,
}

impl LineReader {
    fn new(sock: TcpStream) -> Self {
        LineReader {
            reader: BufReader::new(sock),
            buf: Vec::new(),
            discarding: false,
        }
    }

    fn next(&mut self) -> std::io::Result<Next> {
        use std::io::ErrorKind;
        loop {
            if self.discarding {
                // Consume through the newline in buffer-sized chunks.
                let consumed = match self.reader.fill_buf() {
                    Ok([]) => return Ok(Next::Eof),
                    Ok(bytes) => match bytes.iter().position(|&b| b == b'\n') {
                        Some(pos) => {
                            self.reader.consume(pos + 1);
                            self.discarding = false;
                            return Ok(Next::Oversize);
                        }
                        None => bytes.len(),
                    },
                    Err(e)
                        if matches!(
                            e.kind(),
                            ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                        ) =>
                    {
                        return Ok(Next::Idle)
                    }
                    Err(e) => return Err(e),
                };
                self.reader.consume(consumed);
                continue;
            }
            let budget = (MAX_LINE_BYTES + 1).saturating_sub(self.buf.len());
            if budget == 0 {
                self.buf.clear();
                self.discarding = true;
                continue;
            }
            let mut limited = Read::by_ref(&mut self.reader).take(budget as u64);
            match limited.read_until(b'\n', &mut self.buf) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(Next::Eof)
                    } else {
                        // EOF terminated a final, newline-less line.
                        Ok(Next::Line(self.take_line()))
                    };
                }
                Ok(_) => {
                    if self.buf.last() == Some(&b'\n') {
                        return Ok(Next::Line(self.take_line()));
                    }
                    if self.buf.len() > MAX_LINE_BYTES {
                        self.buf.clear();
                        self.discarding = true;
                        continue;
                    }
                    // Short read without a delimiter: more data may follow.
                    continue;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    // Partial data (if any) stays in `buf` for the retry.
                    return Ok(Next::Idle);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn take_line(&mut self) -> String {
        if self.buf.last() == Some(&b'\n') {
            self.buf.pop();
        }
        if self.buf.last() == Some(&b'\r') {
            self.buf.pop();
        }
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        line
    }
}

/// Runs the protocol loop for one accepted connection until the client
/// quits, hangs up, errors, or the server drains.
pub(crate) fn serve(sock: TcpStream, shared: Arc<Shared>) {
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(READ_TICK));
    let writer_sock = match sock.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(writer_sock);
    let mut lines = LineReader::new(sock);
    let mut active: Option<ActiveSub> = None;
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            break;
        }
        // Push pending subscription revisions between requests — at worst
        // one READ_TICK after publication on an otherwise idle connection.
        if pump_subscription(&mut active, &mut writer).is_err() {
            break;
        }
        match lines.next() {
            Ok(Next::Idle) => continue,
            Ok(Next::Eof) | Err(_) => break,
            Ok(Next::Oversize) => {
                shared.counters.note_protocol_error();
                let message = WireError::Oversize {
                    limit: MAX_LINE_BYTES,
                }
                .to_string();
                if respond_err(&mut writer, &message).is_err() {
                    break;
                }
            }
            Ok(Next::Line(line)) => match Request::parse_line(&line) {
                Ok(None) => continue,
                Err(e) => {
                    shared.counters.note_protocol_error();
                    if respond_err(&mut writer, &e.to_string()).is_err() {
                        break;
                    }
                }
                Ok(Some(request)) => {
                    shared.counters.note_command();
                    match dispatch(request, &shared, &mut lines, &mut writer, &mut active) {
                        Ok(false) => {}
                        Ok(true) | Err(_) => break,
                    }
                }
            },
        }
    }
    let _ = writer.flush();
}

fn respond_err(writer: &mut BufWriter<TcpStream>, message: &str) -> std::io::Result<()> {
    proto::err(writer, message)?;
    writer.flush()
}

fn respond_ok(writer: &mut BufWriter<TcpStream>, detail: &str) -> std::io::Result<()> {
    proto::ok(writer, detail)?;
    writer.flush()
}

/// Writes every snapshot the active subscription has queued as `REV` push
/// lines. Queue-empty and sender-gone (the stream was `DROP`ped) look the
/// same here — the subscription simply goes quiet; `UNSUBSCRIBE` still
/// reports its final counters. Only genuine socket errors propagate.
fn pump_subscription(
    active: &mut Option<ActiveSub>,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    let Some(sub) = active.as_ref() else {
        return Ok(());
    };
    let mut wrote = false;
    while let Some(snapshot) = sub.subscriber.try_next() {
        let line = proto::rev_line(&sub.stream, &snapshot, sub.subscriber.dropped());
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        wrote = true;
    }
    if wrote {
        writer.flush()?;
    }
    Ok(())
}

/// Handles one parsed request. `Ok(true)` closes the connection.
fn dispatch(
    request: Request,
    shared: &Arc<Shared>,
    lines: &mut LineReader,
    writer: &mut BufWriter<TcpStream>,
    active: &mut Option<ActiveSub>,
) -> std::io::Result<bool> {
    match request {
        Request::Create { stream, spec } => {
            if shared.registry.get(&stream).is_some() {
                shared.counters.note_protocol_error();
                respond_err(writer, &format!("stream {stream:?} already exists"))?;
                return Ok(false);
            }
            match StreamSession::open(&stream, &spec, &shared.config) {
                Err(reason) => {
                    shared.counters.note_protocol_error();
                    respond_err(writer, &reason)?;
                }
                Ok((session, outcome)) => {
                    if let Err(reason) = shared.registry.insert(Arc::clone(&session)) {
                        // Lost a CREATE race (or hit the cap): tear the
                        // fresh session down again.
                        session.drain();
                        shared.counters.note_protocol_error();
                        respond_err(writer, &reason)?;
                        return Ok(false);
                    }
                    let detail = if outcome.recovered_events > 0 {
                        format!(
                            "recovered stream={stream} events={} watermark={} clean={}",
                            outcome.recovered_events,
                            outcome
                                .recovered_watermark
                                .map_or_else(|| "-".to_owned(), |t| t.to_string()),
                            outcome.replay_clean,
                        )
                    } else {
                        format!("created stream={stream} wal={}", outcome.durable)
                    };
                    respond_ok(writer, &detail)?;
                }
            }
            Ok(false)
        }
        Request::Event { stream, event } => {
            let Some(session) = shared.registry.get(&stream) else {
                shared.counters.note_protocol_error();
                respond_err(writer, &format!("no such stream {stream:?}"))?;
                return Ok(false);
            };
            match session.ingest(event) {
                Ok(ack) => {
                    shared.counters.note_events_accepted(1);
                    if ack.degraded_now {
                        respond_ok(writer, "accepted wal=degraded")?;
                    } else {
                        respond_ok(writer, "accepted")?;
                    }
                }
                Err(reason) => {
                    shared.counters.note_events_rejected(1);
                    respond_err(writer, &format!("rejected: {reason}"))?;
                }
            }
            Ok(false)
        }
        Request::Batch { stream, count } => ingest_batch(&stream, count, shared, lines, writer),
        Request::Query {
            stream,
            prefix,
            top,
        } => {
            let Some(session) = shared.registry.get(&stream) else {
                shared.counters.note_protocol_error();
                respond_err(writer, &format!("no such stream {stream:?}"))?;
                return Ok(false);
            };
            shared.counters.note_query();
            let reply = session.query(prefix.as_deref(), top);
            proto::query_reply(writer, &reply)?;
            writer.flush()?;
            Ok(false)
        }
        Request::History {
            stream,
            from,
            to,
            support,
            top,
        } => {
            shared.counters.note_query();
            let Some(root) = shared.config.segment_root.as_ref() else {
                shared.counters.note_protocol_error();
                respond_err(writer, "server has no --segment-dir (HISTORY disabled)")?;
                return Ok(false);
            };
            // Served straight off the sealed segment files — no registry
            // lookup, no ingest lock: the stream may be live, draining or
            // long dropped, and ingestion never waits on a historical mine.
            match crate::session::mine_history(
                &root.join(&stream),
                from,
                to,
                support,
                top,
                shared.config.threads,
            ) {
                Ok(reply) => {
                    proto::query_reply(writer, &reply)?;
                    writer.flush()?;
                }
                Err(reason) => {
                    shared.counters.note_protocol_error();
                    respond_err(writer, &reason)?;
                }
            }
            Ok(false)
        }
        Request::Sync { stream } => {
            let Some(session) = shared.registry.get(&stream) else {
                shared.counters.note_protocol_error();
                respond_err(writer, &format!("no such stream {stream:?}"))?;
                return Ok(false);
            };
            match session.sync() {
                Ok(snapshot) => respond_ok(
                    writer,
                    &format!(
                        "synced revision={} watermark={} patterns={}",
                        snapshot.revision,
                        snapshot
                            .watermark
                            .map_or_else(|| "-".to_owned(), |t| t.to_string()),
                        snapshot.result.len(),
                    ),
                )?,
                Err(reason) => {
                    shared.counters.note_protocol_error();
                    respond_err(writer, &reason)?;
                }
            }
            Ok(false)
        }
        Request::Stats { stream } => {
            let mut payload = Vec::new();
            match stream {
                Some(name) => {
                    let Some(session) = shared.registry.get(&name) else {
                        shared.counters.note_protocol_error();
                        respond_err(writer, &format!("no such stream {name:?}"))?;
                        return Ok(false);
                    };
                    payload.push(proto::stats_line(&session.stats()));
                }
                None => {
                    payload.push(proto::server_line(
                        &shared.counters.snapshot(),
                        shared.registry.len(),
                    ));
                    for session in shared.registry.all() {
                        payload.push(proto::stats_line(&session.stats()));
                    }
                }
            }
            proto::block(writer, "", &payload)?;
            writer.flush()?;
            Ok(false)
        }
        Request::Drop { stream } => {
            match shared.registry.remove(&stream) {
                None => {
                    shared.counters.note_protocol_error();
                    respond_err(writer, &format!("no such stream {stream:?}"))?;
                }
                Some(session) => {
                    let drain = session.drain();
                    respond_ok(
                        writer,
                        &format!(
                            "dropped stream={stream} events={} revision={} wal_degraded={}",
                            drain.events, drain.final_revision, drain.wal_degraded,
                        ),
                    )?;
                }
            }
            Ok(false)
        }
        Request::Subscribe { stream } => {
            if let Some(sub) = active.as_ref() {
                shared.counters.note_protocol_error();
                respond_err(
                    writer,
                    &format!("already subscribed to {:?} (UNSUBSCRIBE first)", sub.stream),
                )?;
                return Ok(false);
            }
            let Some(session) = shared.registry.get(&stream) else {
                shared.counters.note_protocol_error();
                respond_err(writer, &format!("no such stream {stream:?}"))?;
                return Ok(false);
            };
            let subscriber = session.subscribe(SUBSCRIBER_CAPACITY);
            respond_ok(
                writer,
                &format!("subscribed stream={stream} capacity={SUBSCRIBER_CAPACITY}"),
            )?;
            *active = Some(ActiveSub { stream, subscriber });
            Ok(false)
        }
        Request::Unsubscribe { stream } => {
            match active.take() {
                None => {
                    shared.counters.note_protocol_error();
                    respond_err(writer, "no active subscription")?;
                }
                Some(sub) => {
                    if let Some(name) = &stream {
                        if name != &sub.stream {
                            shared.counters.note_protocol_error();
                            respond_err(
                                writer,
                                &format!("subscribed to {:?}, not {name:?}", sub.stream),
                            )?;
                            *active = Some(sub);
                            return Ok(false);
                        }
                    }
                    respond_ok(
                        writer,
                        &format!(
                            "unsubscribed stream={} delivered={} dropped={}",
                            sub.stream,
                            sub.subscriber.delivered(),
                            sub.subscriber.dropped(),
                        ),
                    )?;
                }
            }
            Ok(false)
        }
        Request::Health => {
            let draining = shared.draining.load(Ordering::Relaxed)
                || shared.shutdown_requested.load(Ordering::Relaxed);
            respond_ok(
                writer,
                &format!(
                    "healthy streams={} draining={draining}",
                    shared.registry.len()
                ),
            )?;
            Ok(false)
        }
        Request::Ping => {
            respond_ok(writer, "pong")?;
            Ok(false)
        }
        Request::Shutdown => {
            shared.shutdown_requested.store(true, Ordering::Relaxed);
            respond_ok(writer, "draining")?;
            Ok(false)
        }
        Request::Quit => {
            respond_ok(writer, "bye")?;
            Ok(true)
        }
    }
}

/// Reads and ingests the `count` event lines following a `BATCH` header.
/// The payload is always consumed — even when the stream does not exist —
/// so the connection's framing stays intact.
fn ingest_batch(
    stream: &str,
    count: usize,
    shared: &Arc<Shared>,
    lines: &mut LineReader,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<bool> {
    let session: Option<Arc<StreamSession>> = shared.registry.get(stream);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut remaining = count;
    while remaining > 0 {
        if shared.draining.load(Ordering::Relaxed) {
            return Ok(true);
        }
        match lines.next() {
            Ok(Next::Idle) => continue,
            // A client killed mid-batch: everything accepted so far stays
            // accepted (and journaled); only the connection dies.
            Ok(Next::Eof) | Err(_) => return Ok(true),
            Ok(Next::Oversize) => {
                remaining -= 1;
                rejected += 1;
            }
            Ok(Next::Line(line)) => {
                remaining -= 1;
                match StreamEvent::parse_line(&line, count - remaining) {
                    Ok(None) => {} // blank/comment payload line: counted, no event
                    Err(e) => {
                        rejected += 1;
                        let _ = e;
                    }
                    Ok(Some(event)) => match &session {
                        None => rejected += 1,
                        Some(session) => match session.ingest(event) {
                            Ok(_) => accepted += 1,
                            Err(_) => rejected += 1,
                        },
                    },
                }
            }
        }
    }
    shared.counters.note_events_accepted(accepted);
    shared.counters.note_events_rejected(rejected);
    if session.is_none() {
        shared.counters.note_protocol_error();
        respond_err(
            writer,
            &format!("no such stream {stream:?} (batch payload discarded)"),
        )?;
    } else {
        respond_ok(
            writer,
            &format!("batch accepted={accepted} rejected={rejected}"),
        )?;
    }
    Ok(false)
}
