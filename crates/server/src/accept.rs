//! The accept loop and the in-process server handle.
//!
//! This module is the server crate's **only** sanctioned `thread::spawn`
//! site (enforced by xlint's `no-raw-spawn` rule): one thread per accepted
//! connection, plus the background server thread behind [`ServerHandle`].
//! Every handle is retained and joined — finished connections are reaped
//! each loop iteration, and the drain joins whatever is left, so a panic
//! in a connection thread can never be silently detached.
//!
//! The listener runs non-blocking and the loop sleeps in short ticks so it
//! can observe both the [`CancellationToken`] (SIGINT) and the
//! `SHUTDOWN`-request flag within milliseconds without a wakeup channel.

use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use interval_core::CancellationToken;

use crate::{conn, DrainReport, Server, ServerConfig, Shared};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Runs the accept loop to completion; see [`Server::run`].
pub(crate) fn run_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    token: CancellationToken,
) -> std::io::Result<DrainReport> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !token.is_cancelled() && !shared.shutdown_requested.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((sock, _peer)) => {
                shared.counters.note_connection();
                let shared = Arc::clone(&shared);
                conns.push(thread::spawn(move || conn::serve(sock, shared)));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                ) =>
            {
                thread::sleep(ACCEPT_TICK);
            }
            // Transient accept failures (e.g. the peer resetting before the
            // handshake finished) should not take the server down.
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
        // Reap connections that already finished so the handle list stays
        // proportional to *live* connections, not lifetime connections.
        let (done, live): (Vec<_>, Vec<_>) = conns.into_iter().partition(|h| h.is_finished());
        conns = live;
        for handle in done {
            let _ = handle.join();
        }
    }
    // Drain: stop serving, join every connection, then close every stream.
    shared.draining.store(true, Ordering::Relaxed);
    drop(listener);
    for handle in conns {
        let _ = handle.join();
    }
    let streams = shared.registry.drain_all();
    Ok(DrainReport {
        streams,
        counters: shared.counters.snapshot(),
    })
}

/// A server running on a background thread, for tests and benchmarks that
/// need an in-process endpoint with a clean shutdown path.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    token: CancellationToken,
    thread: JoinHandle<std::io::Result<DrainReport>>,
}

impl ServerHandle {
    /// Binds `addr` (use `127.0.0.1:0` for a free port) and runs the
    /// server on a background thread.
    pub fn launch(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(addr, config)?;
        let addr = server.local_addr()?;
        let token = CancellationToken::new();
        let run_token = token.clone();
        let thread = thread::spawn(move || server.run(run_token));
        Ok(ServerHandle {
            addr,
            token,
            thread,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests a drain (as SIGINT would) and waits for the report.
    pub fn shutdown(self) -> std::io::Result<DrainReport> {
        self.token.cancel();
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}
